//! Probe-storage device simulator — the µSPAM substrate of the SERO stack.
//!
//! The FAST 2008 paper builds its tamper-evident proposal on the Twente
//! Micro Scanning Probe Array Memory (µSPAM): a patterned magnetic medium
//! on a moving sled beneath an array of MFM probes. This crate models that
//! device faithfully enough to run the paper's protocols and reproduce its
//! timing relations:
//!
//! * [`timing`] — the simulated-clock cost model (erb = 5 bit ops ⇒ the
//!   paper's "at least 5 times slower"; heat pulses ≫ magnetic writes).
//! * [`actuator`] — the µWalker electrostatic stepper moving the sled.
//! * [`sector`] — 512-byte sectors with the ~15 % header/CRC/Reed–Solomon
//!   overhead of Pozidis et al., plus the electrical (Manchester) area.
//! * [`device`] — [`device::ProbeDevice`]: the four bit operations
//!   (`mrb`/`mwb`/`ewb`/`erb` with the five-step protocol) and the four
//!   sector operations (`mrs`/`mws`/`ers`/`ews`).
//! * [`extent`] — batched multi-block `read_blocks`/`write_blocks`: one
//!   seek per extent, settle-free streaming between adjacent tracks.
//! * [`escan`] — the electrical counterpart: bulk `ers_blocks`/`ews_blocks`
//!   sweeping gaps between scattered ascending targets without settling,
//!   batched `ers_cells_blocks` prefix probes, and the
//!   `ers_sieve_blocks_with` prefix sieve registry scans run on — one
//!   sweep per gap, candidates escalated to a full scan in place.
//! * [`faults`] — deterministic, seeded fault injection at the sector
//!   choke points: transient/persistent read and write faults, sled
//!   stalls, and bit rot, armed via `ProbeDevice::arm_faults`.
//!
//! # Examples
//!
//! ```
//! use sero_probe::device::ProbeDevice;
//!
//! let mut dev = ProbeDevice::builder().blocks(8).seed(1).build();
//! // Store data magnetically, burn a hash electrically.
//! dev.mws(0, &[7u8; 512])?;
//! dev.ews(1, &[true, false, true])?;
//! let scan = dev.ers(1)?;
//! assert!(scan.tampered_cells().is_empty());
//! # Ok::<(), sero_probe::sector::SectorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuator;
pub mod device;
pub mod escan;
pub mod extent;
pub mod faults;
pub mod sector;
pub mod timing;

pub use device::{DotProbe, EwsReport, ProbeDevice, ProbeDeviceBuilder, WriteReport};
pub use faults::{FaultPlan, FaultStats};
pub use sector::{DecodedSector, SectorError, SECTOR_DATA_BYTES};

#[cfg(test)]
mod proptests {
    use crate::device::ProbeDevice;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any payload written to any block reads back identically.
        #[test]
        fn sector_round_trip(seed in any::<u64>(), pba in 0u64..8, data in proptest::collection::vec(any::<u8>(), 512)) {
            let mut dev = ProbeDevice::builder().blocks(8).seed(seed).build();
            let buf: [u8; 512] = data.try_into().unwrap();
            dev.mws(pba, &buf).unwrap();
            prop_assert_eq!(dev.mrs(pba).unwrap().data, buf);
        }

        /// Overwrites win: the last write is what reads back.
        #[test]
        fn last_write_wins(pba in 0u64..4, a in any::<u8>(), b in any::<u8>()) {
            let mut dev = ProbeDevice::builder().blocks(4).build();
            dev.mws(pba, &[a; 512]).unwrap();
            dev.mws(pba, &[b; 512]).unwrap();
            prop_assert_eq!(dev.mrs(pba).unwrap().data, [b; 512]);
        }

        /// ews/ers round-trips arbitrary bit patterns and reports no
        /// tampering for single writes.
        #[test]
        fn electrical_round_trip(bits in proptest::collection::vec(any::<bool>(), 1..512)) {
            let mut dev = ProbeDevice::builder().blocks(2).build();
            dev.ews(1, &bits).unwrap();
            let scan = dev.ers(1).unwrap();
            prop_assert!(scan.tampered_cells().is_empty());
            let decoded: Vec<bool> = scan.cells()[..bits.len()]
                .iter()
                .map(|c| c.value().unwrap())
                .collect();
            prop_assert_eq!(decoded, bits);
        }
    }
}
