//! Simulated-time cost model for the probe device.
//!
//! The paper gives *relative* costs, not absolute ones: `erb` is "at least
//! 5 times slower than `mrb`" (it is literally three magnetic reads plus two
//! magnetic writes), and `ewb` "is also slower than `mwb` because of the
//! local heating process"; the heat operation is therefore to be used
//! sparingly. Absolute per-tip rates are taken from the probe-storage
//! literature the paper builds on (Pozidis et al.: channel rates of order
//! 10⁵–10⁶ bit/s per tip).
//!
//! All times are tracked on a simulated clock in nanoseconds, so benchmark
//! results report the *device's* time, independent of host speed.
//!
//! # Examples
//!
//! ```
//! use sero_probe::timing::CostModel;
//!
//! let cost = CostModel::default();
//! // The paper's 5x claim falls straight out of the protocol.
//! assert!(cost.erb_ns() >= 5 * cost.mrb_ns);
//! assert!(cost.t_ewb_ns > 10 * cost.t_mwb_ns);
//! ```

use core::fmt;

/// Per-operation costs in simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One magnetic bit read (per-tip dwell), ns.
    pub mrb_ns: u64,
    /// One magnetic bit write, ns.
    pub t_mwb_ns: u64,
    /// One electrical bit write — the heating pulse, ns.
    pub t_ewb_ns: u64,
    /// One actuator step of one dot pitch, ns.
    pub t_step_ns: u64,
    /// Actuator settle time after a seek, ns.
    pub t_settle_ns: u64,
}

impl Default for CostModel {
    /// 1 Mbit/s per-tip channel (1 µs per bit), 100 µs heat pulses, 10 µs
    /// actuator steps with 50 µs settle.
    fn default() -> CostModel {
        CostModel {
            mrb_ns: 1_000,
            t_mwb_ns: 1_000,
            t_ewb_ns: 100_000,
            t_step_ns: 10_000,
            t_settle_ns: 50_000,
        }
    }
}

impl CostModel {
    /// Cost of one `erb` — the paper's five-step protocol: 3 reads + 2
    /// writes.
    pub fn erb_ns(&self) -> u64 {
        3 * self.mrb_ns + 2 * self.t_mwb_ns
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimClock {
    now_ns: u128,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns as u128;
    }

    /// Elapsed simulated time in nanoseconds.
    pub fn elapsed_ns(&self) -> u128 {
        self.now_ns
    }

    /// Elapsed simulated time in milliseconds (fractional).
    pub fn elapsed_ms(&self) -> f64 {
        self.now_ns as f64 / 1e6
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.elapsed_ms())
    }
}

/// Counters for every primitive the device executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Magnetic bit reads.
    pub mrb: u64,
    /// Magnetic bit writes.
    pub mwb: u64,
    /// Electrical bit writes (heat pulses).
    pub ewb: u64,
    /// Electrical bit reads (five-step protocol invocations).
    pub erb: u64,
    /// Seek operations.
    pub seeks: u64,
    /// Total actuator steps travelled.
    pub steps: u64,
    /// Magnetic sector reads.
    pub mrs: u64,
    /// Magnetic sector writes.
    pub mws: u64,
    /// Electrical sector reads.
    pub ers: u64,
    /// Electrical sector writes.
    pub ews: u64,
}

impl OpCounters {
    /// Sum of all bit-level operations.
    pub fn bit_ops(&self) -> u64 {
        self.mrb + self.mwb + self.ewb + self.erb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_relative_costs() {
        let c = CostModel::default();
        assert_eq!(c.erb_ns(), 5_000);
        assert!(c.erb_ns() >= 5 * c.mrb_ns, "erb at least 5x mrb (paper §3)");
        assert_eq!(
            c.t_ewb_ns / c.t_mwb_ns,
            100,
            "heating is 100x a magnetic write"
        );
    }

    #[test]
    fn clock_advances() {
        let mut clock = SimClock::new();
        assert_eq!(clock.elapsed_ns(), 0);
        clock.advance(1_500_000);
        clock.advance(500_000);
        assert_eq!(clock.elapsed_ns(), 2_000_000);
        assert!((clock.elapsed_ms() - 2.0).abs() < 1e-12);
        assert_eq!(clock.to_string(), "2.000 ms");
    }

    #[test]
    fn counters_accumulate() {
        let mut ops = OpCounters::default();
        ops.mrb += 3;
        ops.mwb += 2;
        ops.erb += 1;
        assert_eq!(ops.bit_ops(), 6);
    }
}
