//! The on-medium sector format: 512 data bytes plus ~15 % overhead.
//!
//! Following Pozidis et al. (adopted by the paper's §3), a sector carries
//! 512 bytes of payload and "about 15 % sector overhead for the sector
//! header, error correction, and cyclic redundancy check":
//!
//! ```text
//! | header 16 B | data 512 B | CRC-32 4 B | RS parity 56 B |  = 588 B
//! ```
//!
//! 588 / 512 = 1.148 — the paper's 15 %. The 532 protected bytes (header ‖
//! data ‖ CRC) are striped over four interleaved Reed–Solomon codewords of
//! 133 data + 14 parity symbols each, so a burst of damaged dots (e.g. the
//! collateral of a sloppy heat pulse) spreads across codewords, and each
//! codeword corrects 7 unknown errors or 14 erasures.
//!
//! The 512-byte data area doubles as the **electrical area**: when a block
//! is used for a heated hash (Figure 3), its 4096 data-area dots hold 2048
//! Manchester cells instead of magnetic bytes. Electrical data is protected
//! by the Manchester code and physical verification, not by RS — parity
//! would be unwritable once the dots are destroyed.
//!
//! # Examples
//!
//! ```
//! use sero_probe::sector::{SectorCodec, SECTOR_DATA_BYTES};
//!
//! let codec = SectorCodec::new();
//! let data = [0xabu8; SECTOR_DATA_BYTES];
//! let encoded = codec.encode(42, &data);
//! assert_eq!(encoded.len(), sero_probe::sector::SECTOR_TOTAL_BYTES);
//! let decoded = codec.decode(42, &encoded, &[]).unwrap();
//! assert_eq!(decoded.data, data);
//! ```

use core::fmt;
use sero_codec::crc32;
use sero_codec::rs::{ReedSolomon, RsError};

/// Payload bytes per sector.
pub const SECTOR_DATA_BYTES: usize = 512;

/// Header bytes: magic (2) ‖ flags (2) ‖ PBA (8) ‖ reserved (4).
pub const SECTOR_HEADER_BYTES: usize = 16;

/// CRC-32 bytes.
pub const SECTOR_CRC_BYTES: usize = 4;

/// Number of interleaved Reed–Solomon codewords.
pub const INTERLEAVE: usize = 4;

/// Parity symbols per codeword.
pub const RS_PARITY: usize = 14;

/// Protected bytes (header ‖ data ‖ CRC).
pub const SECTOR_PROTECTED_BYTES: usize =
    SECTOR_HEADER_BYTES + SECTOR_DATA_BYTES + SECTOR_CRC_BYTES;

/// Total encoded bytes per sector.
pub const SECTOR_TOTAL_BYTES: usize = SECTOR_PROTECTED_BYTES + INTERLEAVE * RS_PARITY;

/// Total dots per sector (8 dots per byte).
pub const SECTOR_DOTS: usize = SECTOR_TOTAL_BYTES * 8;

/// Dot offset of the first data byte within the sector footprint.
pub const DATA_AREA_FIRST_DOT: usize = SECTOR_HEADER_BYTES * 8;

/// Number of dots in the data (= electrical) area.
pub const DATA_AREA_DOTS: usize = SECTOR_DATA_BYTES * 8;

/// Manchester cells available in the electrical area of one block.
pub const ELECTRICAL_CELLS: usize = DATA_AREA_DOTS / 2;

/// Sector magic number ("SE" as it appears in a hex dump).
pub const SECTOR_MAGIC: u16 = 0x5E20;

/// Errors surfaced by sector encode/decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectorError {
    /// A Reed–Solomon codeword could not be corrected.
    Uncorrectable {
        /// Which interleave lane failed.
        codeword: usize,
        /// The underlying decoder error.
        source: RsError,
    },
    /// The CRC over header ‖ data failed after ECC claimed success.
    CrcMismatch {
        /// CRC stored on the medium.
        stored: u32,
        /// CRC computed from the decoded bytes.
        computed: u32,
    },
    /// The decoded header does not carry the expected physical address —
    /// the §5.1 splitting/coalescing defence relies on this check.
    AddressMismatch {
        /// PBA the caller asked for.
        expected: u64,
        /// PBA found in the header.
        found: u64,
    },
    /// The header magic is wrong: the block was never formatted (or the
    /// header area was destroyed).
    BadMagic {
        /// The magic found.
        found: u16,
    },
    /// The physical block address is outside the device.
    OutOfRange {
        /// The rejected address.
        pba: u64,
        /// Number of blocks on the device.
        blocks: u64,
    },
    /// A magnetic write could not be completed because too many dots in
    /// the sector footprint are heated.
    WriteBlocked {
        /// The block whose write was refused.
        pba: u64,
        /// Number of unwritable (heated) dots.
        heated_dots: usize,
    },
}

impl fmt::Display for SectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectorError::Uncorrectable { codeword, source } => {
                write!(f, "codeword {codeword} uncorrectable: {source}")
            }
            SectorError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            SectorError::AddressMismatch { expected, found } => {
                write!(
                    f,
                    "header address {found} does not match physical address {expected}"
                )
            }
            SectorError::BadMagic { found } => write!(f, "bad sector magic {found:#06x}"),
            SectorError::OutOfRange { pba, blocks } => {
                write!(f, "block {pba} outside device of {blocks} blocks")
            }
            SectorError::WriteBlocked { pba, heated_dots } => {
                write!(
                    f,
                    "write to block {pba} blocked by {heated_dots} heated dots in sector footprint"
                )
            }
        }
    }
}

impl std::error::Error for SectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SectorError::Uncorrectable { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A decoded sector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSector {
    /// The 512 payload bytes.
    pub data: [u8; SECTOR_DATA_BYTES],
    /// Sector flags from the header.
    pub flags: u16,
    /// Symbols repaired by the ECC across all codewords.
    pub corrected_symbols: usize,
    /// Byte positions that arrived as erasures (any weak dot in the byte).
    pub erased_bytes: usize,
}

/// Encoder/decoder for the 588-byte sector format.
#[derive(Debug, Clone)]
pub struct SectorCodec {
    rs: ReedSolomon,
}

impl Default for SectorCodec {
    fn default() -> SectorCodec {
        SectorCodec::new()
    }
}

impl SectorCodec {
    /// Creates the standard codec (RS with 14 parity symbols, 4-way
    /// interleave).
    pub fn new() -> SectorCodec {
        SectorCodec {
            rs: ReedSolomon::new(RS_PARITY).expect("RS_PARITY is valid"),
        }
    }

    /// Encodes `data` for physical block `pba` with `flags = 0`.
    pub fn encode(&self, pba: u64, data: &[u8; SECTOR_DATA_BYTES]) -> Vec<u8> {
        self.encode_with_flags(pba, 0, data)
    }

    /// Encodes `data` for physical block `pba` carrying `flags`.
    pub fn encode_with_flags(
        &self,
        pba: u64,
        flags: u16,
        data: &[u8; SECTOR_DATA_BYTES],
    ) -> Vec<u8> {
        let mut protected = Vec::with_capacity(SECTOR_PROTECTED_BYTES);
        protected.extend_from_slice(&SECTOR_MAGIC.to_le_bytes());
        protected.extend_from_slice(&flags.to_le_bytes());
        protected.extend_from_slice(&pba.to_le_bytes());
        protected.extend_from_slice(&[0u8; 4]); // reserved
        protected.extend_from_slice(data);
        let crc = crc32::crc32(&protected);
        protected.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(protected.len(), SECTOR_PROTECTED_BYTES);

        // Stripe into INTERLEAVE codewords: byte i -> lane i % INTERLEAVE.
        let lane_len = SECTOR_PROTECTED_BYTES / INTERLEAVE;
        let mut out = protected.clone();
        out.resize(SECTOR_TOTAL_BYTES, 0);
        for lane in 0..INTERLEAVE {
            let lane_bytes: Vec<u8> = (0..lane_len)
                .map(|i| protected[i * INTERLEAVE + lane])
                .collect();
            let codeword = self.rs.encode(&lane_bytes);
            let parity = &codeword[lane_len..];
            let base = SECTOR_PROTECTED_BYTES + lane * RS_PARITY;
            out[base..base + RS_PARITY].copy_from_slice(parity);
        }
        out
    }

    /// Decodes a sector read back from the medium.
    ///
    /// `erased_bytes` lists byte offsets (0-based within the 588-byte
    /// footprint) whose dots produced weak read-back signals; these become
    /// Reed–Solomon erasures.
    ///
    /// # Errors
    ///
    /// See [`SectorError`]. The address check makes a sector readable only
    /// at the physical address it was written for.
    pub fn decode(
        &self,
        expected_pba: u64,
        raw: &[u8],
        erased_bytes: &[usize],
    ) -> Result<DecodedSector, SectorError> {
        assert_eq!(raw.len(), SECTOR_TOTAL_BYTES, "raw sector has fixed size");
        let lane_len = SECTOR_PROTECTED_BYTES / INTERLEAVE;

        let mut protected = vec![0u8; SECTOR_PROTECTED_BYTES];
        let mut corrected = 0usize;
        for lane in 0..INTERLEAVE {
            let mut codeword: Vec<u8> = (0..lane_len).map(|i| raw[i * INTERLEAVE + lane]).collect();
            let base = SECTOR_PROTECTED_BYTES + lane * RS_PARITY;
            codeword.extend_from_slice(&raw[base..base + RS_PARITY]);

            // Map global byte erasures into this lane's codeword indices.
            let mut lane_erasures = Vec::new();
            for &e in erased_bytes {
                if e < SECTOR_PROTECTED_BYTES {
                    if e % INTERLEAVE == lane {
                        lane_erasures.push(e / INTERLEAVE);
                    }
                } else {
                    let p = e - SECTOR_PROTECTED_BYTES;
                    if p / RS_PARITY == lane {
                        lane_erasures.push(lane_len + (p % RS_PARITY));
                    }
                }
            }

            let report = self
                .rs
                .decode(&mut codeword, &lane_erasures)
                .map_err(|source| SectorError::Uncorrectable {
                    codeword: lane,
                    source,
                })?;
            corrected += report.total();
            for (i, &b) in codeword[..lane_len].iter().enumerate() {
                protected[i * INTERLEAVE + lane] = b;
            }
        }

        let magic = u16::from_le_bytes([protected[0], protected[1]]);
        if magic != SECTOR_MAGIC {
            return Err(SectorError::BadMagic { found: magic });
        }
        let flags = u16::from_le_bytes([protected[2], protected[3]]);
        let pba = u64::from_le_bytes(protected[4..12].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(
            protected[SECTOR_PROTECTED_BYTES - 4..]
                .try_into()
                .expect("4 bytes"),
        );
        let computed_crc = crc32::crc32(&protected[..SECTOR_PROTECTED_BYTES - 4]);
        if stored_crc != computed_crc {
            return Err(SectorError::CrcMismatch {
                stored: stored_crc,
                computed: computed_crc,
            });
        }
        if pba != expected_pba {
            return Err(SectorError::AddressMismatch {
                expected: expected_pba,
                found: pba,
            });
        }

        let mut data = [0u8; SECTOR_DATA_BYTES];
        data.copy_from_slice(
            &protected[SECTOR_HEADER_BYTES..SECTOR_HEADER_BYTES + SECTOR_DATA_BYTES],
        );
        Ok(DecodedSector {
            data,
            flags,
            corrected_symbols: corrected,
            erased_bytes: erased_bytes.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seed: u8) -> [u8; SECTOR_DATA_BYTES] {
        let mut d = [0u8; SECTOR_DATA_BYTES];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(7).wrapping_add(seed);
        }
        d
    }

    #[test]
    fn overhead_is_the_papers_15_percent() {
        let overhead = SECTOR_TOTAL_BYTES as f64 / SECTOR_DATA_BYTES as f64;
        assert!(
            (overhead - 1.148).abs() < 0.002,
            "sector overhead {overhead} should be ~15 %"
        );
        assert_eq!(SECTOR_TOTAL_BYTES, 588);
        assert_eq!(SECTOR_DOTS, 4704);
        assert_eq!(ELECTRICAL_CELLS, 2048);
    }

    #[test]
    fn round_trip_clean() {
        let codec = SectorCodec::new();
        let data = payload(1);
        let raw = codec.encode(7, &data);
        let decoded = codec.decode(7, &raw, &[]).unwrap();
        assert_eq!(decoded.data, data);
        assert_eq!(decoded.corrected_symbols, 0);
        assert_eq!(decoded.flags, 0);
    }

    #[test]
    fn flags_carried() {
        let codec = SectorCodec::new();
        let raw = codec.encode_with_flags(7, 0xbeef, &payload(2));
        assert_eq!(codec.decode(7, &raw, &[]).unwrap().flags, 0xbeef);
    }

    #[test]
    fn corrects_scattered_errors() {
        let codec = SectorCodec::new();
        let data = payload(3);
        let mut raw = codec.encode(9, &data);
        // 7 errors per lane is the limit; spread 20 errors over the sector.
        let len = raw.len();
        for i in 0..20 {
            raw[i * 29 % len] ^= 0x40 | i as u8;
        }
        let decoded = codec.decode(9, &raw, &[]).unwrap();
        assert_eq!(decoded.data, data);
        assert!(
            decoded.corrected_symbols >= 18,
            "{}",
            decoded.corrected_symbols
        );
    }

    #[test]
    fn corrects_burst_via_interleave() {
        let codec = SectorCodec::new();
        let data = payload(4);
        let mut raw = codec.encode(11, &data);
        // A 24-byte contiguous burst = 6 symbols per lane, within t = 7.
        for b in raw.iter_mut().skip(100).take(24) {
            *b = !*b;
        }
        assert_eq!(codec.decode(11, &raw, &[]).unwrap().data, data);
    }

    #[test]
    fn erasures_double_the_budget() {
        let codec = SectorCodec::new();
        let data = payload(5);
        let mut raw = codec.encode(13, &data);
        // 48 erased bytes = 12 per lane, within the 14-erasure budget but
        // far beyond the 7-error budget.
        let erased: Vec<usize> = (0..48).map(|i| i + 64).collect();
        for &e in &erased {
            raw[e] = 0xee;
        }
        assert!(
            codec.decode(13, &raw, &[]).is_err(),
            "without flags: too many"
        );
        let decoded = codec.decode(13, &raw, &erased).unwrap();
        assert_eq!(decoded.data, data);
        assert_eq!(decoded.erased_bytes, 48);
    }

    #[test]
    fn parity_region_erasures_mapped_to_lanes() {
        let codec = SectorCodec::new();
        let data = payload(6);
        let mut raw = codec.encode(15, &data);
        // Kill parity bytes of lane 2 (positions 560..574).
        let erased: Vec<usize> = (0..10)
            .map(|i| SECTOR_PROTECTED_BYTES + 2 * RS_PARITY + i)
            .collect();
        for &e in &erased {
            raw[e] ^= 0xff;
        }
        assert_eq!(codec.decode(15, &raw, &erased).unwrap().data, data);
    }

    #[test]
    fn wrong_address_detected() {
        // §5.1: hashes (and sectors) must live at known physical addresses;
        // a sector copied elsewhere must not read as genuine.
        let codec = SectorCodec::new();
        let raw = codec.encode(21, &payload(7));
        match codec.decode(22, &raw, &[]) {
            Err(SectorError::AddressMismatch {
                expected: 22,
                found: 21,
            }) => {}
            other => panic!("expected address mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unformatted_sector_rejected() {
        let codec = SectorCodec::new();
        // All-zero dots: lanes decode (zero codeword is valid), but the
        // magic is absent.
        let raw = vec![0u8; SECTOR_TOTAL_BYTES];
        match codec.decode(0, &raw, &[]) {
            Err(SectorError::BadMagic { found: 0 }) => {}
            other => panic!("expected bad magic, got {other:?}"),
        }
    }

    #[test]
    fn too_much_damage_is_an_error_not_garbage() {
        let codec = SectorCodec::new();
        let mut raw = codec.encode(3, &payload(8));
        for b in raw.iter_mut().take(200) {
            *b = 0xaa;
        }
        assert!(codec.decode(3, &raw, &[]).is_err());
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            SectorError::CrcMismatch {
                stored: 1,
                computed: 2,
            },
            SectorError::AddressMismatch {
                expected: 1,
                found: 2,
            },
            SectorError::BadMagic { found: 7 },
            SectorError::OutOfRange { pba: 9, blocks: 4 },
            SectorError::WriteBlocked {
                pba: 6,
                heated_dots: 3,
            },
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
        }
    }
}
