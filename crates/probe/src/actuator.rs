//! The electrostatic stepper actuator that moves the medium sled.
//!
//! §6 of the paper: "An electrostatic stepper actuator, such as the µWalker
//! or Harmonica drive is used to move the medium" beneath the fixed probe
//! array. We model a two-axis stepper whose axes move simultaneously, so a
//! seek costs the Chebyshev distance in steps (one step = one dot pitch)
//! plus a settle time. Scanning a track costs one step per dot column.
//!
//! # Examples
//!
//! ```
//! use sero_probe::actuator::Actuator;
//! use sero_probe::timing::CostModel;
//!
//! let mut walker = Actuator::new(CostModel::default());
//! let t = walker.seek(10, 4);
//! assert_eq!(walker.position(), (10, 4));
//! assert!(t > 0);
//! ```

use crate::timing::CostModel;

/// A two-axis stepper actuator with a current position in dot coordinates.
#[derive(Debug, Clone)]
pub struct Actuator {
    row: u32,
    col: u32,
    cost: CostModel,
    total_steps: u64,
    total_seeks: u64,
}

impl Actuator {
    /// A parked actuator at the origin.
    pub fn new(cost: CostModel) -> Actuator {
        Actuator {
            row: 0,
            col: 0,
            cost,
            total_steps: 0,
            total_seeks: 0,
        }
    }

    /// Current sled position as (row, col).
    pub fn position(&self) -> (u32, u32) {
        (self.row, self.col)
    }

    /// Total steps travelled over the actuator's lifetime.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Total seeks performed.
    pub fn total_seeks(&self) -> u64 {
        self.total_seeks
    }

    /// Moves to (`row`, `col`), returning the simulated cost in ns.
    ///
    /// Both axes step simultaneously, so the step count is the Chebyshev
    /// distance; a non-zero move also pays the settle time.
    pub fn seek(&mut self, row: u32, col: u32) -> u64 {
        let dr = self.row.abs_diff(row) as u64;
        let dc = self.col.abs_diff(col) as u64;
        let steps = dr.max(dc);
        self.row = row;
        self.col = col;
        self.total_seeks += 1;
        self.total_steps += steps;
        if steps == 0 {
            0
        } else {
            steps * self.cost.t_step_ns + self.cost.t_settle_ns
        }
    }

    /// Advances one column while scanning a track, returning the cost in ns.
    pub fn scan_step(&mut self) -> u64 {
        self.col = self.col.saturating_add(1);
        self.total_steps += 1;
        self.cost.t_step_ns
    }

    /// Advances one track row while streaming sequential blocks, returning
    /// the cost in ns. Unlike [`Actuator::seek`], the sled never comes to
    /// rest between adjacent tracks, so no settle time is paid — this is
    /// what makes extent I/O cheaper than a per-block seek loop.
    pub fn step_row(&mut self) -> u64 {
        self.stream_rows(1)
    }

    /// Advances `rows` track rows in one continuous sweep, returning the
    /// cost in ns. The sled keeps moving the whole way, so no settle time
    /// is paid — this is how a scattered-but-ascending scan (e.g. the hash
    /// blocks of several heated lines) streams over the gaps between its
    /// targets instead of seeking each one.
    pub fn stream_rows(&mut self, rows: u64) -> u64 {
        self.row = self
            .row
            .saturating_add(u32::try_from(rows).unwrap_or(u32::MAX));
        self.total_steps += rows;
        rows * self.cost.t_step_ns
    }

    /// Teleports the sled to (`row`, `col`) free of charge. This is not a
    /// physical seek: it models a controller whose resting position is
    /// already inside its assigned region — e.g. a scrub worker parked at
    /// its shard's first track before the pass starts — so no time passes
    /// and no seek is counted.
    pub fn park_at(&mut self, row: u32, col: u32) {
        self.row = row;
        self.col = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_seek_cost() {
        let cost = CostModel::default();
        let mut a = Actuator::new(cost);
        let t = a.seek(3, 7);
        assert_eq!(t, 7 * cost.t_step_ns + cost.t_settle_ns);
        assert_eq!(a.position(), (3, 7));
        assert_eq!(a.total_steps(), 7);
    }

    #[test]
    fn zero_seek_is_free() {
        let mut a = Actuator::new(CostModel::default());
        a.seek(2, 2);
        let t = a.seek(2, 2);
        assert_eq!(t, 0, "no movement, no settle");
        assert_eq!(a.total_seeks(), 2);
    }

    #[test]
    fn nearby_seeks_cheaper_than_far() {
        let mut a = Actuator::new(CostModel::default());
        a.seek(0, 0);
        let near = a.seek(1, 0);
        a.seek(0, 0);
        let far = a.seek(1000, 0);
        assert!(far > near * 100);
    }

    #[test]
    fn row_stepping_skips_settle() {
        let cost = CostModel::default();
        let mut a = Actuator::new(cost);
        a.seek(4, 0);
        let streamed = a.step_row();
        assert_eq!(streamed, cost.t_step_ns, "no settle while streaming");
        assert_eq!(a.position(), (5, 0));
        let mut b = Actuator::new(cost);
        b.seek(4, 0);
        let sought = b.seek(5, 0);
        assert!(sought > streamed, "a full seek pays settle time");
    }

    #[test]
    fn stream_rows_skips_settle_and_park_is_free() {
        let cost = CostModel::default();
        let mut a = Actuator::new(cost);
        a.seek(2, 0);
        let streamed = a.stream_rows(6);
        assert_eq!(streamed, 6 * cost.t_step_ns, "no settle while sweeping");
        assert_eq!(a.position(), (8, 0));
        let steps_before = a.total_steps();
        a.park_at(100, 0);
        assert_eq!(a.position(), (100, 0));
        assert_eq!(a.total_steps(), steps_before, "parking travels no steps");
    }

    #[test]
    fn scan_steps_accumulate() {
        let cost = CostModel::default();
        let mut a = Actuator::new(cost);
        let mut total = 0;
        for _ in 0..10 {
            total += a.scan_step();
        }
        assert_eq!(total, 10 * cost.t_step_ns);
        assert_eq!(a.position(), (0, 10));
    }
}
