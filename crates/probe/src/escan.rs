//! Batched electrical extent scans — bulk `ers`/`ews` fast paths.
//!
//! PR 2 gave the *magnetic* side extent transfers ([`crate::extent`]); the
//! registry scan and the heat burn still paid one full seek (steps **plus
//! settle**) per [`ProbeDevice::ers`] / [`ProbeDevice::ews`] call. That is
//! exactly the access pattern of the paper's §5.2 recovery story — "a fsck
//! style scan of the medium would definitely recover, albeit slowly, all
//! the heated files" — so at device scale the electrical crawl dominates
//! mount and scrub time. Bit-patterned-media practice streams whole track
//! groups under the head instead; these operations model that:
//!
//! * one head-of-range seek, then settle-free [`Actuator`] row streaming
//!   between blocks — including across *gaps* between scattered ascending
//!   targets (the sled sweeps over uninteresting tracks without stopping);
//! * per-block [`Scan`] / [`EwsReport`] results, so a damaged or tampered
//!   block is reported in its scan without aborting the rest of the run
//!   (tamper findings are data, never errors);
//! * a batched prefix probe ([`ProbeDevice::ers_cells_blocks`]) so registry
//!   scans stop paying a full seek for every 16-cell pre-probe.
//!
//! On the default cost model a streamed electrical scan saves the 50 µs
//! settle per block; `BENCH_registry.json` tracks the end-to-end ratio for
//! a whole-device registry rebuild (≥3× is the acceptance bar).
//!
//! [`Actuator`]: crate::actuator::Actuator
//!
//! # Examples
//!
//! ```
//! use sero_probe::device::ProbeDevice;
//!
//! let mut dev = ProbeDevice::builder().blocks(16).build();
//! dev.ews_blocks(&[(3u64, vec![true, false]), (9, vec![false, true])])?;
//! let scans = dev.ers_blocks_at(&[3, 9])?;
//! assert!(scans.iter().all(|s| s.tampered_cells().is_empty()));
//! # Ok::<(), sero_probe::sector::SectorError>(())
//! ```

use crate::device::{EwsReport, ProbeDevice};
use crate::sector::SectorError;
use sero_codec::manchester::Scan;

impl ProbeDevice {
    fn check_escan_extent(&self, start: u64, count: u64) -> Result<(), SectorError> {
        let end = start.checked_add(count).ok_or(SectorError::OutOfRange {
            pba: u64::MAX,
            blocks: self.block_count(),
        })?;
        if end > self.block_count() {
            return Err(SectorError::OutOfRange {
                pba: end - 1,
                blocks: self.block_count(),
            });
        }
        Ok(())
    }

    /// Streams electrical prefix probes of the first `cells` Manchester
    /// cells over the extent `[start, start + count)`, handing each
    /// block's [`Scan`] to `sink`. One seek at the head of the range, then
    /// settle-free row streaming — the registry pre-probe's fast path.
    ///
    /// `sink` returns `false` to stop the scan early; the remaining blocks
    /// are neither probed nor charged to the clock.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    /// Tamper findings are data in each [`Scan`], never errors.
    ///
    /// # Panics
    ///
    /// Panics when `cells` exceeds
    /// [`ELECTRICAL_CELLS`](crate::sector::ELECTRICAL_CELLS) — a caller
    /// bug, not a device condition.
    pub fn ers_cells_blocks_with<F>(
        &mut self,
        start: u64,
        count: u64,
        cells: usize,
        mut sink: F,
    ) -> Result<(), SectorError>
    where
        F: FnMut(u64, Scan) -> bool,
    {
        self.check_escan_extent(start, count)?;
        if count == 0 {
            return Ok(());
        }
        self.seek_block(start);
        for pba in start..start + count {
            if pba > start {
                self.stream_to_block(pba);
            }
            let scan = self.ers_cells_here(pba, cells);
            if !sink(pba, scan) {
                break;
            }
        }
        Ok(())
    }

    /// Probes the first `cells` Manchester cells of every block in
    /// `[start, start + count)`, returning one [`Scan`] per block. See
    /// [`ProbeDevice::ers_cells_blocks_with`] for the streaming model.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    pub fn ers_cells_blocks(
        &mut self,
        start: u64,
        count: u64,
        cells: usize,
    ) -> Result<Vec<Scan>, SectorError> {
        let mut out = Vec::with_capacity(count as usize);
        self.ers_cells_blocks_with(start, count, cells, |_, scan| {
            out.push(scan);
            true
        })?;
        Ok(out)
    }

    /// Streams prefix probes of `prefix_cells` Manchester cells over the
    /// extent `[start, start + count)`, escalating interesting blocks to a
    /// full electrical scan *on the spot* — the sled is already on their
    /// track, so the escalation pays no movement at all (the crawl it
    /// replaces re-seeks for the full read). `is_candidate` inspects each
    /// prefix [`Scan`]; when it returns `true` the remaining cells are
    /// probed and the full scan is handed to `full_sink`. This is the
    /// registry scan's primitive: sieve the device in one sweep, decode
    /// only the blocks that can be line heads or evidence.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    ///
    /// # Panics
    ///
    /// Panics when `prefix_cells` exceeds
    /// [`ELECTRICAL_CELLS`](crate::sector::ELECTRICAL_CELLS).
    pub fn ers_sieve_blocks_with<P, F>(
        &mut self,
        start: u64,
        count: u64,
        prefix_cells: usize,
        mut is_candidate: P,
        mut full_sink: F,
    ) -> Result<(), SectorError>
    where
        P: FnMut(u64, &Scan) -> bool,
        F: FnMut(u64, Scan),
    {
        self.check_escan_extent(start, count)?;
        if count == 0 {
            return Ok(());
        }
        self.seek_block(start);
        for pba in start..start + count {
            if pba > start {
                self.stream_to_block(pba);
            }
            let prefix = self.ers_cells_here(pba, prefix_cells);
            if is_candidate(pba, &prefix) {
                let full = self.ers_cells_here(pba, crate::sector::ELECTRICAL_CELLS);
                full_sink(pba, full);
            }
        }
        Ok(())
    }

    /// Streams full electrical sector reads over the extent
    /// `[start, start + count)`, handing each block's [`Scan`] to `sink`
    /// (which returns `false` to stop early). One seek for the whole
    /// extent; a tampered or shredded block shows up in its own scan
    /// without aborting the run.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    pub fn ers_blocks_with<F>(&mut self, start: u64, count: u64, sink: F) -> Result<(), SectorError>
    where
        F: FnMut(u64, Scan) -> bool,
    {
        self.ers_cells_blocks_with(start, count, crate::sector::ELECTRICAL_CELLS, sink)
    }

    /// Reads the electrical area of every block in `[start, start +
    /// count)`, returning one [`Scan`] per block.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    pub fn ers_blocks(&mut self, start: u64, count: u64) -> Result<Vec<Scan>, SectorError> {
        self.ers_cells_blocks(start, count, crate::sector::ELECTRICAL_CELLS)
    }

    /// Reads the electrical area of each block in `pbas` (in order),
    /// returning one [`Scan`] per address. Ascending runs pay one seek at
    /// the first target and then *sweep* the sled over the gaps without
    /// settling; a target behind the current position falls back to a full
    /// seek. This is how registry scans full-read their scattered
    /// candidate blocks and how batched heats read their hash blocks back.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when any address exceeds the device
    /// (checked up front, before any I/O).
    pub fn ers_blocks_at(&mut self, pbas: &[u64]) -> Result<Vec<Scan>, SectorError> {
        for &pba in pbas {
            self.check_pba(pba)?;
        }
        let mut out = Vec::with_capacity(pbas.len());
        for (i, &pba) in pbas.iter().enumerate() {
            if i == 0 {
                self.seek_block(pba);
            } else {
                self.stream_to_block(pba);
            }
            out.push(self.ers_cells_here(pba, crate::sector::ELECTRICAL_CELLS));
        }
        Ok(out)
    }

    /// Burns each `(pba, bits)` entry electrically, in order, returning one
    /// [`EwsReport`] per entry. Ascending targets pay one seek at the first
    /// entry and sweep settle-free over the gaps between hash blocks — the
    /// bulk fast path for heating a batch of lines.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when any address exceeds the device
    /// (checked up front, before any dot is heated).
    ///
    /// # Panics
    ///
    /// Panics when any entry's bits exceed the electrical area — a caller
    /// bug, not a device condition.
    pub fn ews_blocks<B: AsRef<[bool]>>(
        &mut self,
        writes: &[(u64, B)],
    ) -> Result<Vec<EwsReport>, SectorError> {
        for (pba, _) in writes {
            self.check_pba(*pba)?;
        }
        let mut out = Vec::with_capacity(writes.len());
        for (i, (pba, bits)) in writes.iter().enumerate() {
            if i == 0 {
                self.seek_block(*pba);
            } else {
                self.stream_to_block(*pba);
            }
            out.push(self.ews_here(*pba, bits.as_ref()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::device::ProbeDevice;
    use crate::sector::ELECTRICAL_CELLS;

    fn device(blocks: u64) -> ProbeDevice {
        ProbeDevice::builder().blocks(blocks).build()
    }

    fn bits(seed: usize, len: usize) -> Vec<bool> {
        (0..len).map(|i| (i * 7 + seed) % 3 == 0).collect()
    }

    #[test]
    fn ews_blocks_matches_ews_loop() {
        let mut batch = device(32);
        let mut serial = device(32);
        let writes: Vec<(u64, Vec<bool>)> = [2u64, 3, 9, 20]
            .into_iter()
            .enumerate()
            .map(|(i, pba)| (pba, bits(i, 64)))
            .collect();

        let reports = batch.ews_blocks(&writes).unwrap();
        for (pba, b) in &writes {
            let report = serial.ews(*pba, b).unwrap();
            let batched = &reports[writes.iter().position(|(p, _)| p == pba).unwrap()];
            assert_eq!(batched, &report, "block {pba}");
        }
        // The media agree cell for cell.
        for (pba, b) in &writes {
            let a = batch.ers(*pba).unwrap();
            let s = serial.ers(*pba).unwrap();
            assert_eq!(a, s, "block {pba}");
            let decoded: Vec<bool> = a.cells()[..b.len()]
                .iter()
                .map(|c| c.value().unwrap())
                .collect();
            assert_eq!(&decoded, b);
        }
    }

    #[test]
    fn ers_blocks_matches_ers_loop() {
        let mut dev = device(16);
        for pba in 0..4u64 {
            dev.ews(pba * 4, &bits(pba as usize, 100)).unwrap();
        }
        let mut batch = dev.clone();
        let scans = batch.ers_blocks(0, 16).unwrap();
        assert_eq!(scans.len(), 16);
        for (pba, scan) in scans.iter().enumerate() {
            assert_eq!(scan, &dev.ers(pba as u64).unwrap(), "block {pba}");
        }
    }

    #[test]
    fn streamed_scan_is_cheaper_than_seek_loop() {
        let mut batch = device(64);
        let mut serial = device(64);

        let t0 = batch.clock().elapsed_ns();
        batch.ers_cells_blocks(0, 64, 16).unwrap();
        let batch_ns = batch.clock().elapsed_ns() - t0;

        let t0 = serial.clock().elapsed_ns();
        for pba in 0..64 {
            serial.ers_cells(pba, 16).unwrap();
        }
        let serial_ns = serial.clock().elapsed_ns() - t0;

        assert!(
            batch_ns * 3 < serial_ns,
            "streamed {batch_ns} ns should beat the seek loop {serial_ns} ns by >3x"
        );
        assert_eq!(batch.counters().seeks, 1, "one seek for the whole extent");
        assert_eq!(serial.counters().seeks, 64);
    }

    #[test]
    fn scattered_ascending_targets_sweep_without_settle() {
        // Hash blocks 16 tracks apart: the sweep pays 16 steps per gap,
        // the seek loop pays 16 steps + settle per gap.
        let targets = [0u64, 16, 32, 48];
        let mut sweep = device(64);
        let mut seeks = device(64);
        for &pba in &targets {
            sweep.ews(pba, &bits(1, 32)).unwrap();
            seeks.ews(pba, &bits(1, 32)).unwrap();
        }

        let t0 = sweep.clock().elapsed_ns();
        let swept = sweep.ers_blocks_at(&targets).unwrap();
        let sweep_ns = sweep.clock().elapsed_ns() - t0;

        let t0 = seeks.clock().elapsed_ns();
        let mut serial = Vec::new();
        for &pba in &targets {
            serial.push(seeks.ers(pba).unwrap());
        }
        let serial_ns = seeks.clock().elapsed_ns() - t0;

        assert_eq!(swept, serial, "sweeping changes timing, never data");
        assert!(
            sweep_ns < serial_ns,
            "sweep {sweep_ns} vs seeks {serial_ns}"
        );
    }

    #[test]
    fn descending_target_falls_back_to_a_seek() {
        let mut dev = device(16);
        dev.ews(2, &bits(0, 16)).unwrap();
        dev.ews(10, &bits(1, 16)).unwrap();
        let scans = dev.ers_blocks_at(&[10, 2]).unwrap();
        assert_eq!(scans.len(), 2);
        assert_eq!(dev.counters().seeks, 2 + 2, "backwards hop re-seeks");
    }

    #[test]
    fn damaged_block_reported_in_scan_not_as_error() {
        let mut dev = device(8);
        dev.ews(1, &bits(0, 32)).unwrap();
        dev.shred(2).unwrap();
        let scans = dev.ers_blocks(0, 4).unwrap();
        assert!(scans[0].cells().iter().all(|c| c.value().is_none()));
        assert!(scans[1].tampered_cells().is_empty(), "clean payload");
        assert!(
            !scans[2].tampered_cells().is_empty(),
            "shredded block scans as HH evidence"
        );
        assert!(scans[3].tampered_cells().is_empty());
    }

    #[test]
    fn sieve_escalates_in_place_without_extra_movement() {
        let mut dev = device(32);
        dev.ews(5, &bits(0, 64)).unwrap();
        dev.ews(20, &bits(1, 64)).unwrap();

        let mut full_scans = Vec::new();
        let steps_before = dev.counters().seeks;
        dev.ers_sieve_blocks_with(
            0,
            32,
            16,
            |_, prefix| prefix.blank_cells().len() != 16,
            |pba, scan| full_scans.push((pba, scan)),
        )
        .unwrap();
        assert_eq!(dev.counters().seeks - steps_before, 1, "one sweep");
        assert_eq!(full_scans.len(), 2);
        assert_eq!(full_scans[0].0, 5);
        assert_eq!(full_scans[1].0, 20);
        // The escalated scans decode exactly like standalone full reads.
        let mut reference = device(32);
        reference.ews(5, &bits(0, 64)).unwrap();
        reference.ews(20, &bits(1, 64)).unwrap();
        assert_eq!(full_scans[0].1, reference.ers(5).unwrap());
        assert_eq!(full_scans[1].1, reference.ers(20).unwrap());
    }

    #[test]
    fn early_stop_skips_remaining_probe_cost() {
        let mut dev = device(16);
        let before = dev.counters().ers;
        let mut seen = 0;
        dev.ers_cells_blocks_with(0, 16, 8, |_, _| {
            seen += 1;
            seen < 5
        })
        .unwrap();
        assert_eq!(seen, 5);
        assert_eq!(dev.counters().ers - before, 5, "untouched blocks unprobed");
    }

    #[test]
    fn out_of_range_extents_rejected_up_front() {
        let mut dev = device(8);
        assert!(dev.ers_blocks(4, 5).is_err());
        assert!(dev.ers_cells_blocks(0, 9, 4).is_err());
        assert!(dev.ers_blocks_at(&[0, 8]).is_err());
        let before = dev.counters().ers;
        assert!(dev
            .ews_blocks(&[(7u64, bits(0, 4)), (9, bits(0, 4))])
            .is_err());
        assert_eq!(dev.counters().ers, before, "no I/O before the refusal");
        assert_eq!(dev.counters().ewb, 0);
        // Boundary-exact and empty extents are fine.
        assert!(dev.ers_blocks(0, 8).is_ok());
        assert!(dev.ers_blocks(8, 0).is_ok());
        assert!(dev.ers_blocks_at(&[]).is_ok());
    }

    #[test]
    fn full_scan_helpers_agree_with_ers_cells_bound() {
        let mut dev = device(4);
        dev.ews(1, &bits(2, ELECTRICAL_CELLS)).unwrap();
        let batch = dev.clone().ers_blocks(1, 1).unwrap();
        let single = dev.ers(1).unwrap();
        assert_eq!(batch[0], single);
    }
}
