//! The probe-storage device: bit and sector operations with timing.
//!
//! This is the µSPAM of §6 as a device model. It owns the patterned
//! [`Medium`], an MFM [`ReadChannel`], a [`ThermalModel`] for heat pulses,
//! a stepper [`Actuator`], and a [`SectorCodec`], and exposes exactly the
//! operation families §3 of the paper defines:
//!
//! * **Magnetic bit ops** `mrb` / `mwb` — read/sense and set dot
//!   magnetisation.
//! * **Electrical bit ops** `ewb` / `erb` — destroy a dot by tip-current
//!   heating, and detect destruction through the paper's five-step
//!   read–invert–verify protocol (erb is "at least 5 times slower").
//! * **Sector ops** `mrs` / `mws` / `ers` / `ews` — 512-byte sectors with
//!   the ~15 % header/CRC/ECC overhead, and the electrical (Manchester)
//!   variants used for heated hash blocks.
//!
//! The medium is laid out one block per track row: block `pba` occupies
//! dots `[pba · SECTOR_DOTS, (pba+1) · SECTOR_DOTS)`, so heat leakage from
//! an `ews` can disturb the same dot column of *adjacent blocks* — the
//! cross-track risk §7 warns about.
//!
//! # Examples
//!
//! ```
//! use sero_probe::device::ProbeDevice;
//!
//! let mut dev = ProbeDevice::builder().blocks(16).build();
//! let data = [0x5au8; 512];
//! dev.mws(3, &data)?;
//! assert_eq!(dev.mrs(3)?.data, data);
//! # Ok::<(), sero_probe::sector::SectorError>(())
//! ```

use crate::actuator::Actuator;
use crate::faults::{FaultPlan, FaultState, FaultStats};
use crate::sector::{
    DecodedSector, SectorCodec, SectorError, DATA_AREA_DOTS, DATA_AREA_FIRST_DOT, ELECTRICAL_CELLS,
    SECTOR_DATA_BYTES, SECTOR_DOTS, SECTOR_TOTAL_BYTES,
};
use crate::timing::{CostModel, OpCounters, SimClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sero_codec::manchester::{self, Scan};
use sero_media::geometry::Geometry;
use sero_media::medium::{DotShape, Medium};
use sero_media::mfm::{Detection, ReadChannel};
use sero_media::thermal::ThermalModel;

/// Result of probing a single dot with the five-step `erb` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DotProbe {
    /// The dot inverted and restored cleanly: its multilayer is intact.
    Unheated {
        /// The magnetic bit the dot held (and holds again).
        bit: bool,
    },
    /// A verification step failed or the signal was weak: the dot has lost
    /// its out-of-plane property.
    Heated,
}

impl DotProbe {
    /// True for [`DotProbe::Heated`].
    pub fn is_heated(self) -> bool {
        matches!(self, DotProbe::Heated)
    }
}

/// Outcome of a magnetic sector write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteReport {
    /// Dots in the footprint that refused the write because they are
    /// heated. A nonzero count on a supposedly fresh block is suspicious.
    pub unwritable_dots: usize,
}

/// Outcome of an electrical sector write (heating).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EwsReport {
    /// Dots newly heated on purpose.
    pub heated_dots: usize,
    /// Dots destroyed by lateral heat leakage (collateral damage).
    pub collateral_destroyed: Vec<u64>,
    /// Dots whose magnetic state was randomised by heat leakage.
    pub disturbed: Vec<u64>,
}

/// Builder for [`ProbeDevice`].
#[derive(Debug, Clone)]
pub struct ProbeDeviceBuilder {
    blocks: u64,
    pitch_nm: f64,
    probes: u32,
    cost: CostModel,
    channel: ReadChannel,
    thermal: Option<ThermalModel>,
    seed: u64,
    shape: DotShape,
}

impl Default for ProbeDeviceBuilder {
    fn default() -> ProbeDeviceBuilder {
        ProbeDeviceBuilder {
            blocks: 64,
            pitch_nm: 100.0,
            probes: 64,
            cost: CostModel::default(),
            channel: ReadChannel::default(),
            thermal: None,
            seed: 0x5e20_0001,
            shape: DotShape::Circular,
        }
    }
}

impl ProbeDeviceBuilder {
    /// Number of 512-byte blocks on the device.
    pub fn blocks(mut self, blocks: u64) -> ProbeDeviceBuilder {
        self.blocks = blocks;
        self
    }

    /// Dot pitch in nanometres (default 100 nm, the paper's target).
    pub fn pitch_nm(mut self, pitch_nm: f64) -> ProbeDeviceBuilder {
        self.pitch_nm = pitch_nm;
        self
    }

    /// Number of probes operating in parallel (default 64).
    pub fn probes(mut self, probes: u32) -> ProbeDeviceBuilder {
        self.probes = probes;
        self
    }

    /// Timing model override.
    pub fn cost(mut self, cost: CostModel) -> ProbeDeviceBuilder {
        self.cost = cost;
        self
    }

    /// Read-channel override (e.g. a noisier tip).
    pub fn channel(mut self, channel: ReadChannel) -> ProbeDeviceBuilder {
        self.channel = channel;
        self
    }

    /// Thermal model override (default: well designed for the pitch).
    pub fn thermal(mut self, thermal: ThermalModel) -> ProbeDeviceBuilder {
        self.thermal = Some(thermal);
        self
    }

    /// RNG seed for channel noise and heated-dot reads.
    pub fn seed(mut self, seed: u64) -> ProbeDeviceBuilder {
        self.seed = seed;
        self
    }

    /// Uses elliptic dots (long axis along the track), enabling the
    /// direct in-plane heat read `erb_direct` at the cost of density —
    /// the §3/§7 design alternative. The paper suggests ≥150 nm pitches
    /// for the low-anisotropy elliptic medium.
    pub fn elliptic_dots(mut self) -> ProbeDeviceBuilder {
        self.shape = DotShape::Elliptic;
        self
    }

    /// Builds the device.
    ///
    /// # Panics
    ///
    /// Panics on zero blocks or zero probes.
    pub fn build(self) -> ProbeDevice {
        assert!(self.blocks > 0, "device needs at least one block");
        assert!(self.probes > 0, "device needs at least one probe");
        assert!(
            self.blocks <= u32::MAX as u64,
            "one block per track row: at most 2^32 - 1 blocks"
        );
        let geometry = Geometry::new(self.blocks as u32, SECTOR_DOTS as u32, self.pitch_nm);
        let thermal = self
            .thermal
            .unwrap_or_else(|| ThermalModel::well_designed(self.pitch_nm));
        ProbeDevice {
            medium: Medium::with_shape(
                geometry,
                sero_media::film::CoPtFilm::as_grown(),
                self.shape,
            ),
            channel: self.channel,
            thermal,
            cost: self.cost,
            clock: SimClock::new(),
            counters: OpCounters::default(),
            actuator: Actuator::new(self.cost),
            codec: SectorCodec::new(),
            probes: self.probes,
            blocks: self.blocks,
            rng: StdRng::seed_from_u64(self.seed),
            faults: None,
        }
    }
}

/// A simulated micro scanning probe array memory.
///
/// Fields are `pub(crate)` so the extent fast path in [`crate::extent`]
/// can drive the same primitives without re-paying per-call setup.
#[derive(Debug, Clone)]
pub struct ProbeDevice {
    pub(crate) medium: Medium,
    pub(crate) channel: ReadChannel,
    pub(crate) thermal: ThermalModel,
    pub(crate) cost: CostModel,
    pub(crate) clock: SimClock,
    pub(crate) counters: OpCounters,
    pub(crate) actuator: Actuator,
    pub(crate) codec: SectorCodec,
    pub(crate) probes: u32,
    pub(crate) blocks: u64,
    pub(crate) rng: StdRng,
    /// Armed fault-injection state, if any. Owns its own RNG, so arming
    /// a plan never perturbs the channel-noise stream above.
    pub(crate) faults: Option<FaultState>,
}

impl ProbeDevice {
    /// Starts building a device.
    pub fn builder() -> ProbeDeviceBuilder {
        ProbeDeviceBuilder::default()
    }

    /// Number of 512-byte blocks.
    pub fn block_count(&self) -> u64 {
        self.blocks
    }

    /// Elapsed simulated time.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Advances the simulated clock by externally accounted time — used by
    /// controllers that fan work out over device clones (e.g. the parallel
    /// scrub) and merge the concurrent elapsed time back into the original.
    pub fn advance_clock(&mut self, ns: u64) {
        self.clock.advance(ns);
    }

    /// Operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Read access to the physical medium (forensic inspection).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Raw mutable access to the physical medium.
    ///
    /// This is the attack surface: §5's powerful insider can "disconnect
    /// the storage device temporarily from the system, then connect it to a
    /// laptop with the appropriate interface". The security analysis crate
    /// uses this to bypass every protocol check.
    pub fn medium_mut(&mut self) -> &mut Medium {
        &mut self.medium
    }

    // --- fault injection --------------------------------------------------

    /// Arms a seeded [`FaultPlan`]: bit-rot flips are applied to the
    /// medium immediately, and every later sector read/write and seek
    /// consults the plan at the same choke points real hardware faults
    /// would surface through. Replaces any previously armed plan.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        let mut rotted = 0u64;
        for &(pba, offset) in &plan.bit_rot {
            if pba >= self.blocks {
                continue;
            }
            let dot = self.block_first_dot(pba)
                + DATA_AREA_FIRST_DOT as u64
                + (offset as u64 % DATA_AREA_DOTS as u64);
            // Heated dots cannot rot by magnetic decay — write_mag on
            // them is refused, which is exactly the physical model.
            if let Some(bit) = self.medium.state(dot).magnetic_bit() {
                self.medium.write_mag(dot, !bit);
                rotted += 1;
            }
        }
        let mut state = FaultState::new(plan);
        state.note_rotted(rotted);
        self.faults = Some(state);
    }

    /// Disarms fault injection. Already-applied bit rot stays on the
    /// medium (flips are physical, not scheduled).
    pub fn disarm_faults(&mut self) {
        self.faults = None;
    }

    /// The armed plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(FaultState::plan)
    }

    /// Counters of injected faults since the current plan was armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultState::stats)
    }

    /// First dot index of block `pba`.
    pub fn block_first_dot(&self, pba: u64) -> u64 {
        pba * SECTOR_DOTS as u64
    }

    /// Dot index of the `cell`-th Manchester cell in block `pba`'s
    /// electrical area (each cell is two dots).
    pub fn electrical_cell_dot(&self, pba: u64, cell: usize) -> u64 {
        self.block_first_dot(pba) + DATA_AREA_FIRST_DOT as u64 + (cell * 2) as u64
    }

    pub(crate) fn check_pba(&self, pba: u64) -> Result<(), SectorError> {
        if pba >= self.blocks {
            Err(SectorError::OutOfRange {
                pba,
                blocks: self.blocks,
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn seek_block(&mut self, pba: u64) {
        let ns = self.actuator.seek(pba as u32, 0);
        self.clock.advance(ns);
        self.counters.seeks += 1;
        let stall = self.faults.as_mut().map_or(0, FaultState::on_seek);
        if stall > 0 {
            self.clock.advance(stall);
        }
    }

    /// Streams the sled forward from its current row to block `pba`'s track
    /// without settling (the sled keeps moving), advancing the clock by the
    /// swept distance. Falls back to a full seek when `pba` is behind the
    /// current position. Extent scans over scattered-but-ascending targets
    /// use this between blocks.
    pub(crate) fn stream_to_block(&mut self, pba: u64) {
        let (row, _) = self.actuator.position();
        let target = pba as u32;
        if target >= row {
            let ns = self.actuator.stream_rows((target - row) as u64);
            self.clock.advance(ns);
        } else {
            self.seek_block(pba);
        }
    }

    /// The block whose track the sled currently rests on. Schedulers use
    /// this to order pending work by seek distance (e.g. the background
    /// scrub picks the registered line nearest the sled, so its slices
    /// neither pay a cross-device seek nor strand the foreground far from
    /// its working set).
    pub fn position_block(&self) -> u64 {
        self.actuator.position().0 as u64
    }

    /// Parks the sled at block `pba`'s track free of charge — not a seek,
    /// but the model of a controller whose resting position is already
    /// inside its assigned region (a scrub worker starts each pass parked
    /// at its shard's first track).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range addresses — parking is controller setup, not
    /// device I/O, so a bad address is a caller bug.
    pub fn park_at(&mut self, pba: u64) {
        assert!(
            pba < self.blocks,
            "park_at({pba}) beyond the {} block device",
            self.blocks
        );
        self.actuator.park_at(pba as u32, 0);
    }

    /// Batch cost of `ops` identical bit operations spread over the probe
    /// array.
    fn parallel_cost(&self, ops: u64, per_op_ns: u64) -> u64 {
        ops.div_ceil(self.probes as u64) * per_op_ns
    }

    // --- raw (unclocked) primitives -------------------------------------

    fn detect_raw(&mut self, dot: u64) -> Detection {
        self.channel.detect(&self.medium, dot, &mut self.rng)
    }

    /// Hard-decision read: weak signals force a coin flip, reproducing
    /// Figure 2's "more or less random result" for heated dots.
    fn read_bit_raw(&mut self, dot: u64) -> (bool, bool) {
        match self.detect_raw(dot) {
            Detection::One => (true, false),
            Detection::Zero => (false, false),
            Detection::Weak => (self.rng.random(), true),
        }
    }

    fn erb_raw(&mut self, dot: u64) -> DotProbe {
        // §3's atomic five-step sequence. Any weak signal or failed
        // verification marks the dot heated; the double inversion restores
        // the original data on intact dots.
        let (d1, weak1) = self.read_bit_raw(dot);
        if weak1 {
            return DotProbe::Heated;
        }
        self.medium.write_mag(dot, !d1);
        let (d2, weak2) = self.read_bit_raw(dot);
        if weak2 || d2 == d1 {
            self.medium.write_mag(dot, d1);
            return DotProbe::Heated;
        }
        self.medium.write_mag(dot, d1);
        let (d3, weak3) = self.read_bit_raw(dot);
        if weak3 || d3 != d1 {
            return DotProbe::Heated;
        }
        DotProbe::Unheated { bit: d1 }
    }

    // --- public bit operations ------------------------------------------

    /// Magnetic read bit (`mrb`).
    pub fn mrb(&mut self, dot: u64) -> bool {
        self.clock.advance(self.cost.mrb_ns);
        self.counters.mrb += 1;
        self.read_bit_raw(dot).0
    }

    /// Magnetic write bit (`mwb`). Returns whether the write took (heated
    /// dots silently refuse, per Figure 2).
    pub fn mwb(&mut self, dot: u64, bit: bool) -> bool {
        self.clock.advance(self.cost.t_mwb_ns);
        self.counters.mwb += 1;
        self.medium.write_mag(dot, bit)
    }

    /// Electrical write bit (`ewb`): heat the dot irreversibly, with
    /// thermal side effects on neighbours.
    pub fn ewb(&mut self, dot: u64) -> sero_media::thermal::HeatOutcome {
        self.clock.advance(self.cost.t_ewb_ns);
        self.counters.ewb += 1;
        self.thermal.heat_dot(&mut self.medium, dot, &mut self.rng)
    }

    /// Electrical read bit (`erb`): the five-step protocol. Costs five
    /// magnetic bit times.
    pub fn erb(&mut self, dot: u64) -> DotProbe {
        self.clock.advance(self.cost.erb_ns());
        self.counters.erb += 1;
        self.counters.mrb += 3;
        self.counters.mwb += 2;
        self.erb_raw(dot)
    }

    /// Direct in-plane heat read — one bit time instead of five, but only
    /// on elliptic-dot media (§3's "read the in-plane magnetic signal
    /// directly"). Returns `None` on circular media.
    pub fn erb_direct(&mut self, dot: u64) -> Option<bool> {
        let heated = self
            .channel
            .sense_heat_in_plane(&self.medium, dot, &mut self.rng)?;
        self.clock.advance(self.cost.mrb_ns);
        self.counters.erb += 1;
        self.counters.mrb += 1;
        Some(heated)
    }

    /// Electrical sector read via direct in-plane sensing — the fast-path
    /// `ers` for elliptic media, ~5× cheaper than the protocol variant.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] for bad addresses;
    /// [`SectorError::WriteBlocked`] is never returned here. On circular
    /// media this falls back to the five-step [`ProbeDevice::ers`].
    pub fn ers_direct(&mut self, pba: u64) -> Result<Scan, SectorError> {
        if self.medium.shape() != DotShape::Elliptic {
            return self.ers(pba);
        }
        self.check_pba(pba)?;
        self.seek_block(pba);
        let base = self.block_first_dot(pba) + DATA_AREA_FIRST_DOT as u64;
        let mut heat_flags = Vec::with_capacity(DATA_AREA_DOTS);
        for offset in 0..DATA_AREA_DOTS {
            let heated = self
                .channel
                .sense_heat_in_plane(&self.medium, base + offset as u64, &mut self.rng)
                .expect("shape checked above");
            heat_flags.push(heated);
        }
        let ns = self.parallel_cost(DATA_AREA_DOTS as u64, self.cost.mrb_ns);
        self.clock.advance(ns);
        self.counters.mrb += DATA_AREA_DOTS as u64;
        self.counters.erb += DATA_AREA_DOTS as u64;
        self.counters.ers += 1;
        Ok(manchester::decode(&heat_flags))
    }

    // --- sector operations ------------------------------------------------

    /// Magnetic read sector (`mrs`).
    ///
    /// # Errors
    ///
    /// Propagates [`SectorError`] for out-of-range addresses, uncorrectable
    /// ECC damage, CRC mismatches, and header/address mismatches.
    pub fn mrs(&mut self, pba: u64) -> Result<DecodedSector, SectorError> {
        self.check_pba(pba)?;
        self.seek_block(pba);
        self.read_sector_here(pba)
    }

    /// Reads and decodes the sector under the current sled position,
    /// advancing the clock and counters but paying no seek. Extent reads
    /// stream over this after a single head-of-range seek.
    pub(crate) fn read_sector_here(&mut self, pba: u64) -> Result<DecodedSector, SectorError> {
        let first = self.block_first_dot(pba);

        let mut raw = vec![0u8; SECTOR_TOTAL_BYTES];
        let mut erased = Vec::new();
        for (byte_idx, slot) in raw.iter_mut().enumerate() {
            let mut byte = 0u8;
            let mut weak = false;
            for bit in 0..8 {
                let (b, w) = self.read_bit_raw(first + (byte_idx * 8 + bit) as u64);
                if b {
                    byte |= 1 << (7 - bit);
                }
                weak |= w;
            }
            *slot = byte;
            if weak {
                erased.push(byte_idx);
            }
        }

        let ns = self.parallel_cost(SECTOR_DOTS as u64, self.cost.mrb_ns);
        self.clock.advance(ns);
        self.counters.mrb += SECTOR_DOTS as u64;
        self.counters.mrs += 1;
        // Fault injection sits after the physical read so the clock,
        // counters, and channel RNG advance exactly as on a fault-free
        // twin; only the decoded result is withheld.
        if let Some(err) = self.faults.as_mut().and_then(|f| f.on_read(pba)) {
            return Err(err);
        }
        self.codec.decode(pba, &raw, &erased)
    }

    /// Magnetic write sector (`mws`) with flags 0.
    ///
    /// # Errors
    ///
    /// Returns [`SectorError::OutOfRange`] for bad addresses. Heated dots
    /// in the footprint refuse the write; the count is reported so callers
    /// can treat damaged blocks as suspicious rather than silently relying
    /// on ECC.
    pub fn mws(
        &mut self,
        pba: u64,
        data: &[u8; SECTOR_DATA_BYTES],
    ) -> Result<WriteReport, SectorError> {
        self.mws_with_flags(pba, 0, data)
    }

    /// Magnetic write sector carrying header `flags`.
    ///
    /// # Errors
    ///
    /// Returns [`SectorError::OutOfRange`] for bad addresses.
    pub fn mws_with_flags(
        &mut self,
        pba: u64,
        flags: u16,
        data: &[u8; SECTOR_DATA_BYTES],
    ) -> Result<WriteReport, SectorError> {
        self.check_pba(pba)?;
        self.seek_block(pba);
        Ok(self.write_sector_here(pba, flags, data))
    }

    /// Encodes and writes the sector under the current sled position,
    /// advancing the clock and counters but paying no seek.
    pub(crate) fn write_sector_here(
        &mut self,
        pba: u64,
        flags: u16,
        data: &[u8; SECTOR_DATA_BYTES],
    ) -> WriteReport {
        let raw = self.codec.encode_with_flags(pba, flags, data);
        let first = self.block_first_dot(pba);

        let mut unwritable = 0usize;
        for (byte_idx, &byte) in raw.iter().enumerate() {
            for bit in 0..8 {
                let value = (byte >> (7 - bit)) & 1 == 1;
                if !self
                    .medium
                    .write_mag(first + (byte_idx * 8 + bit) as u64, value)
                {
                    unwritable += 1;
                }
            }
        }

        let ns = self.parallel_cost(SECTOR_DOTS as u64, self.cost.t_mwb_ns);
        self.clock.advance(ns);
        self.counters.mwb += SECTOR_DOTS as u64;
        self.counters.mws += 1;
        // Injected write faults are phantom unwritable dots: the data
        // landed on the medium, but the report claims heat damage — the
        // same signal real stuck-at dots produce.
        let phantom = self
            .faults
            .as_mut()
            .map_or(0, |faults| faults.on_write(pba));
        WriteReport {
            unwritable_dots: unwritable + phantom,
        }
    }

    /// Electrical write sector (`ews`): burn `bits` into the block's
    /// electrical area as Manchester cells.
    ///
    /// Heating is power-limited to one tip at a time, so the cost is one
    /// heat pulse per `1` dot — this is why the paper heats a *line* by
    /// writing only a hash, not the data.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] for bad addresses. Writing more bits
    /// than [`ELECTRICAL_CELLS`] panics — it is a caller bug, not a device
    /// condition.
    ///
    /// # Panics
    ///
    /// Panics when `bits.len() > ELECTRICAL_CELLS`.
    pub fn ews(&mut self, pba: u64, bits: &[bool]) -> Result<EwsReport, SectorError> {
        self.check_pba(pba)?;
        self.seek_block(pba);
        Ok(self.ews_here(pba, bits))
    }

    /// Burns `bits` into the electrical area of the block under the current
    /// sled position, advancing the clock and counters but paying no seek.
    /// Batched electrical writes stream over this after a single
    /// head-of-range seek.
    pub(crate) fn ews_here(&mut self, pba: u64, bits: &[bool]) -> EwsReport {
        assert!(
            bits.len() <= ELECTRICAL_CELLS,
            "{} bits exceed the electrical area of {} cells",
            bits.len(),
            ELECTRICAL_CELLS
        );
        let base = self.block_first_dot(pba) + DATA_AREA_FIRST_DOT as u64;

        let dots = manchester::encode(bits.iter().copied());
        let mut report = EwsReport::default();
        for (offset, &heat) in dots.iter().enumerate() {
            if !heat {
                continue;
            }
            let outcome =
                self.thermal
                    .heat_dot(&mut self.medium, base + offset as u64, &mut self.rng);
            self.clock.advance(self.cost.t_ewb_ns);
            self.counters.ewb += 1;
            if outcome.target_heated {
                report.heated_dots += 1;
            }
            report
                .collateral_destroyed
                .extend(outcome.destroyed_neighbours);
            report.disturbed.extend(outcome.disturbed_neighbours);
        }
        self.counters.ews += 1;
        report
    }

    /// Electrical read sector (`ers`): probe the electrical area with `erb`
    /// and decode the Manchester cells.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] for bad addresses. Tamper findings are
    /// *data* (in the returned [`Scan`]), never errors.
    pub fn ers(&mut self, pba: u64) -> Result<Scan, SectorError> {
        self.ers_cells(pba, ELECTRICAL_CELLS)
    }

    /// Physical shred (§8 "Deletion"): heat *every* dot of the block's
    /// footprint, irreversibly destroying its contents. The paper proposes
    /// this as the retention-control mechanism "similar to what has been
    /// achieved for optical storage".
    ///
    /// Shredding is deliberately the most expensive operation on the
    /// device — one power-limited heat pulse per dot — and leaves an
    /// unmistakable signature: every Manchester cell reads `HH`.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] for bad addresses.
    pub fn shred(&mut self, pba: u64) -> Result<EwsReport, SectorError> {
        self.check_pba(pba)?;
        self.seek_block(pba);
        let first = self.block_first_dot(pba);
        let mut report = EwsReport::default();
        for offset in 0..SECTOR_DOTS as u64 {
            let outcome = self
                .thermal
                .heat_dot(&mut self.medium, first + offset, &mut self.rng);
            self.clock.advance(self.cost.t_ewb_ns);
            self.counters.ewb += 1;
            if outcome.target_heated {
                report.heated_dots += 1;
            }
            report
                .collateral_destroyed
                .extend(outcome.destroyed_neighbours);
            report.disturbed.extend(outcome.disturbed_neighbours);
        }
        Ok(report)
    }

    /// Electrical read of only the first `cells` Manchester cells of the
    /// block — the cheap probe used by registry scans: hash payloads are
    /// prefix-contiguous, so a blank prefix means a blank block at a
    /// fraction of the full `ers` cost.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] for bad addresses.
    ///
    /// # Panics
    ///
    /// Panics when `cells` exceeds [`ELECTRICAL_CELLS`].
    pub fn ers_cells(&mut self, pba: u64, cells: usize) -> Result<Scan, SectorError> {
        self.check_pba(pba)?;
        self.seek_block(pba);
        Ok(self.ers_cells_here(pba, cells))
    }

    /// Probes the first `cells` Manchester cells of the block under the
    /// current sled position, advancing the clock and counters but paying
    /// no seek. Batched electrical scans stream over this after a single
    /// head-of-range seek.
    pub(crate) fn ers_cells_here(&mut self, pba: u64, cells: usize) -> Scan {
        assert!(
            cells <= ELECTRICAL_CELLS,
            "at most {ELECTRICAL_CELLS} cells per block"
        );
        let base = self.block_first_dot(pba) + DATA_AREA_FIRST_DOT as u64;
        let dots = cells * 2;

        let mut heat_flags = Vec::with_capacity(dots);
        for offset in 0..dots {
            let probe = self.erb_raw(base + offset as u64);
            heat_flags.push(probe.is_heated());
        }

        let ns = self.parallel_cost(dots as u64, self.cost.erb_ns());
        self.clock.advance(ns);
        self.counters.erb += dots as u64;
        self.counters.mrb += 3 * dots as u64;
        self.counters.mwb += 2 * dots as u64;
        self.counters.ers += 1;
        manchester::decode(&heat_flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_codec::manchester::Cell;

    fn device(blocks: u64) -> ProbeDevice {
        ProbeDevice::builder().blocks(blocks).build()
    }

    fn payload(seed: u8) -> [u8; SECTOR_DATA_BYTES] {
        let mut d = [0u8; SECTOR_DATA_BYTES];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(13).wrapping_add(seed);
        }
        d
    }

    #[test]
    fn sector_write_read_round_trip() {
        let mut dev = device(8);
        for pba in 0..8 {
            let data = payload(pba as u8);
            let report = dev.mws(pba, &data).unwrap();
            assert_eq!(report.unwritable_dots, 0);
            assert_eq!(dev.mrs(pba).unwrap().data, data);
        }
    }

    #[test]
    fn unformatted_block_errors() {
        let mut dev = device(4);
        assert!(dev.mrs(2).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = device(4);
        assert!(matches!(
            dev.mrs(4),
            Err(SectorError::OutOfRange { pba: 4, blocks: 4 })
        ));
        assert!(dev.mws(9, &payload(0)).is_err());
        assert!(dev.ews(9, &[true]).is_err());
        assert!(dev.ers(9).is_err());
    }

    #[test]
    fn erb_classifies_unheated_and_restores() {
        let mut dev = device(2);
        let dot = dev.block_first_dot(1) + 5;
        dev.mwb(dot, true);
        match dev.erb(dot) {
            DotProbe::Unheated { bit } => assert!(bit),
            DotProbe::Heated => panic!("intact dot misclassified"),
        }
        // The double inversion restored the original value.
        assert!(dev.mrb(dot));
    }

    #[test]
    fn erb_detects_heated_dots() {
        let mut dev = device(2);
        let dot = dev.block_first_dot(1) + 7;
        dev.ewb(dot);
        let detected = (0..100).filter(|_| dev.erb(dot).is_heated()).count();
        assert!(detected >= 99, "erb detected {detected}/100");
    }

    #[test]
    fn erb_is_five_times_mrb() {
        let mut dev = device(2);
        dev.mwb(0, false);
        let before = dev.clock().elapsed_ns();
        dev.erb(0);
        let erb_time = dev.clock().elapsed_ns() - before;
        let before = dev.clock().elapsed_ns();
        dev.mrb(0);
        let mrb_time = dev.clock().elapsed_ns() - before;
        assert_eq!(erb_time, 5 * mrb_time, "paper: erb at least 5x mrb");
    }

    #[test]
    fn ews_then_ers_round_trips_manchester() {
        let mut dev = device(4);
        let bits: Vec<bool> = (0..256).map(|i| i % 3 == 0).collect();
        let report = dev.ews(2, &bits).unwrap();
        assert_eq!(report.heated_dots, 256, "one heated dot per cell");
        let scan = dev.ers(2).unwrap();
        assert_eq!(scan.cells().len(), ELECTRICAL_CELLS);
        let decoded: Vec<bool> = scan.cells()[..256]
            .iter()
            .map(|c| c.value().expect("written cells are clean"))
            .collect();
        assert_eq!(decoded, bits);
        // Cells past the written prefix are blank.
        assert!(scan.cells()[256..].iter().all(|c| *c == Cell::Blank));
    }

    #[test]
    fn ews_is_idempotent_for_same_bits() {
        // §3: re-heating a line with invariant block-0 data is harmless.
        let mut dev = device(4);
        let bits = vec![true, false, true, true];
        dev.ews(1, &bits).unwrap();
        let second = dev.ews(1, &bits).unwrap();
        assert_eq!(second.heated_dots, 0, "no dot newly heated");
        let scan = dev.ers(1).unwrap();
        assert!(scan.tampered_cells().is_empty());
    }

    #[test]
    fn conflicting_ews_produces_hh_evidence() {
        // §3/§5.1: heating different data into a written cell turns it HH.
        let mut dev = device(4);
        dev.ews(1, &[true, false]).unwrap();
        dev.ews(1, &[false, true]).unwrap();
        let scan = dev.ers(1).unwrap();
        assert_eq!(scan.tampered_cells(), vec![0, 1]);
    }

    #[test]
    fn magnetic_write_over_heated_hash_reports_unwritable() {
        let mut dev = device(4);
        dev.ews(1, &[true; 64]).unwrap();
        let report = dev.mws(1, &payload(1)).unwrap();
        assert_eq!(report.unwritable_dots, 64, "one H per written cell refuses");
    }

    #[test]
    fn few_heated_dots_corrected_as_erasures_on_read() {
        // §5.1: "an electrically written bit in the data ... appears as a
        // read error" — and the sector ECC absorbs a handful of them.
        let mut dev = device(4);
        let data = payload(2);
        dev.mws(1, &data).unwrap();
        // Vandalise 6 dots in distinct bytes of the data area.
        for k in 0..6 {
            let dot = dev.block_first_dot(1) + DATA_AREA_FIRST_DOT as u64 + (k * 64) as u64;
            dev.ewb(dot);
        }
        let sector = dev.mrs(1).unwrap();
        assert_eq!(sector.data, data, "ECC must repair isolated heat damage");
        assert!(sector.erased_bytes >= 6);
    }

    #[test]
    fn sequential_access_is_cheaper_than_random() {
        let mut a = device(256);
        let data = payload(3);
        for pba in 0..64 {
            a.mws(pba, &data).unwrap();
        }
        let seq_time = {
            let start = a.clock().elapsed_ns();
            for pba in 0..64 {
                a.mrs(pba).unwrap();
            }
            a.clock().elapsed_ns() - start
        };
        let random_time = {
            let start = a.clock().elapsed_ns();
            for k in 0..64u64 {
                let pba = (k * 37) % 64;
                a.mrs(pba).unwrap();
            }
            a.clock().elapsed_ns() - start
        };
        assert!(
            random_time > seq_time,
            "random {random_time} vs seq {seq_time}"
        );
    }

    #[test]
    fn counters_track_sector_ops() {
        let mut dev = device(4);
        dev.mws(0, &payload(4)).unwrap();
        dev.mrs(0).unwrap();
        dev.ews(1, &[true]).unwrap();
        dev.ers(1).unwrap();
        let c = dev.counters();
        assert_eq!((c.mws, c.mrs, c.ews, c.ers), (1, 1, 1, 1));
        assert!(c.mwb >= SECTOR_DOTS as u64);
        assert!(c.mrb >= SECTOR_DOTS as u64);
        assert_eq!(c.ewb, 1);
        assert!(c.erb >= DATA_AREA_DOTS as u64);
    }

    #[test]
    fn ews_slow_ers_5x_mrs() {
        // The headline timing relations of §3, measured on the clock.
        let mut dev = device(4);
        let data = payload(5);

        let t0 = dev.clock().elapsed_ns();
        dev.mws(0, &data).unwrap();
        let t_mws = dev.clock().elapsed_ns() - t0;

        let t0 = dev.clock().elapsed_ns();
        dev.mrs(0).unwrap();
        let t_mrs = dev.clock().elapsed_ns() - t0;

        let t0 = dev.clock().elapsed_ns();
        dev.ews(1, &[true; 256]).unwrap(); // a 256-bit hash
        let t_ews = dev.clock().elapsed_ns() - t0;

        let t0 = dev.clock().elapsed_ns();
        dev.ers(1).unwrap();
        let t_ers = dev.clock().elapsed_ns() - t0;

        assert!(
            t_ews > 10 * t_mws,
            "heating is much slower: {t_ews} vs {t_mws}"
        );
        assert!(
            t_ers >= 4 * t_mrs,
            "electrical sector read ≈ 5x magnetic (minus header area): {t_ers} vs {t_mrs}"
        );
    }

    #[test]
    fn elliptic_direct_read_matches_protocol_and_is_5x_faster() {
        let mut dev = ProbeDevice::builder()
            .blocks(4)
            .pitch_nm(150.0) // elliptic dots need the coarser pitch
            .elliptic_dots()
            .build();
        let bits: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        dev.ews(1, &bits).unwrap();

        let t0 = dev.clock().elapsed_ns();
        let protocol = dev.ers(1).unwrap();
        let t_protocol = dev.clock().elapsed_ns() - t0;

        let t0 = dev.clock().elapsed_ns();
        let direct = dev.ers_direct(1).unwrap();
        let t_direct = dev.clock().elapsed_ns() - t0;

        assert_eq!(protocol, direct, "both reads agree");
        assert!(
            t_protocol >= 5 * t_direct,
            "direct {t_direct} vs protocol {t_protocol}"
        );
    }

    #[test]
    fn circular_medium_has_no_direct_read() {
        let mut dev = device(2);
        assert_eq!(dev.erb_direct(0), None);
        // ers_direct falls back to the protocol path and still works.
        dev.ews(1, &[true, false]).unwrap();
        let scan = dev.ers_direct(1).unwrap();
        assert!(scan.tampered_cells().is_empty());
    }

    #[test]
    fn medium_access_for_forensics() {
        let mut dev = device(2);
        dev.ews(0, &[true]).unwrap();
        let first_heated = dev.medium().heated_in(0..dev.block_first_dot(1)).len();
        assert_eq!(first_heated, 1);
    }

    #[test]
    #[should_panic(expected = "exceed the electrical area")]
    fn oversized_ews_panics() {
        let mut dev = device(2);
        let bits = vec![true; ELECTRICAL_CELLS + 1];
        let _ = dev.ews(0, &bits);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        ProbeDevice::builder().blocks(0).build();
    }
}
