//! Batched multi-block extent I/O — the bulk fast path of the device.
//!
//! Bit-patterned-media practice reads and decodes whole tracks in bulk;
//! per-block APIs waste most of that bandwidth on actuation. A call to
//! [`ProbeDevice::mrs`] pays a full seek (steps **plus settle time**) for
//! every block, even when the next block sits on the adjacent track row.
//! The extent operations here amortize that per-call setup:
//!
//! * one head-of-range seek, then a settle-free [`Actuator::step_row`]
//!   between consecutive blocks — the sled never comes to rest;
//! * one shared raw buffer and cost-model evaluation per call instead of
//!   per block (host-side amortization);
//! * per-block `Result`s, so a damaged block in the middle of an extent is
//!   reported without aborting the rest of the transfer.
//!
//! On the default cost model a sequential extent read is ~1.6× faster in
//! device time than the equivalent `mrs` loop (60 µs seek+settle vs 10 µs
//! streaming step per block); `BENCH_bulk_io.json` tracks the exact ratio.
//!
//! [`Actuator::step_row`]: crate::actuator::Actuator::step_row
//!
//! # Examples
//!
//! ```
//! use sero_probe::device::ProbeDevice;
//!
//! let mut dev = ProbeDevice::builder().blocks(16).build();
//! let blocks = [[0x5au8; 512]; 4];
//! dev.write_blocks(8, &blocks)?;
//! let read = dev.read_blocks(8, 4)?;
//! for sector in read {
//!     assert_eq!(sector?.data, [0x5au8; 512]);
//! }
//! # Ok::<(), sero_probe::sector::SectorError>(())
//! ```

use crate::device::{ProbeDevice, WriteReport};
use crate::sector::{DecodedSector, SectorError, SECTOR_DATA_BYTES};

impl ProbeDevice {
    fn check_extent(&self, start: u64, count: u64) -> Result<(), SectorError> {
        let end = start.checked_add(count).ok_or(SectorError::OutOfRange {
            pba: u64::MAX,
            blocks: self.block_count(),
        })?;
        if end > self.block_count() {
            return Err(SectorError::OutOfRange {
                pba: end - 1,
                blocks: self.block_count(),
            });
        }
        Ok(())
    }

    /// Streams `count` sectors starting at `start` into `sink`, one decoded
    /// sector at a time — no intermediate collection, so callers that fold
    /// the data (digest computation, checksum scans) never copy a block.
    ///
    /// `sink` receives `(pba, Result<DecodedSector, _>)` per block and
    /// returns `false` to stop the transfer early (the remaining blocks are
    /// neither read nor charged to the clock).
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device;
    /// per-block decode failures are delivered through `sink`, not returned.
    pub fn read_blocks_with<F>(
        &mut self,
        start: u64,
        count: u64,
        mut sink: F,
    ) -> Result<(), SectorError>
    where
        F: FnMut(u64, Result<DecodedSector, SectorError>) -> bool,
    {
        self.check_extent(start, count)?;
        if count == 0 {
            return Ok(());
        }
        self.seek_block(start);
        for pba in start..start + count {
            if pba > start {
                let ns = self.actuator.step_row();
                self.clock.advance(ns);
            }
            let sector = self.read_sector_here(pba);
            if !sink(pba, sector) {
                break;
            }
        }
        Ok(())
    }

    /// Reads the extent `[start, start + count)`, returning one `Result`
    /// per block. See the module docs for the amortization model.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    pub fn read_blocks(
        &mut self,
        start: u64,
        count: u64,
    ) -> Result<Vec<Result<DecodedSector, SectorError>>, SectorError> {
        let mut out = Vec::with_capacity(count as usize);
        self.read_blocks_with(start, count, |_, sector| {
            out.push(sector);
            true
        })?;
        Ok(out)
    }

    /// Streams `blocks` contiguously onto the medium starting at `start`
    /// (flags 0), handing each block's [`WriteReport`] to `sink` as it
    /// lands. `sink` returns `false` to stop the transfer — the remaining
    /// blocks are left untouched and uncharged, which is how callers
    /// reproduce the per-block loop's stop-at-first-failure semantics.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    pub fn write_blocks_with<F>(
        &mut self,
        start: u64,
        blocks: &[[u8; SECTOR_DATA_BYTES]],
        mut sink: F,
    ) -> Result<(), SectorError>
    where
        F: FnMut(u64, WriteReport) -> bool,
    {
        self.check_extent(start, blocks.len() as u64)?;
        if blocks.is_empty() {
            return Ok(());
        }
        self.seek_block(start);
        for (i, data) in blocks.iter().enumerate() {
            let pba = start + i as u64;
            if i > 0 {
                let ns = self.actuator.step_row();
                self.clock.advance(ns);
            }
            let report = self.write_sector_here(pba, 0, data);
            if !sink(pba, report) {
                break;
            }
        }
        Ok(())
    }

    /// Writes `blocks` contiguously starting at `start` (flags 0), paying
    /// one seek for the whole extent. Returns one [`WriteReport`] per
    /// block, in order.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when the extent exceeds the device.
    pub fn write_blocks(
        &mut self,
        start: u64,
        blocks: &[[u8; SECTOR_DATA_BYTES]],
    ) -> Result<Vec<WriteReport>, SectorError> {
        let mut reports = Vec::with_capacity(blocks.len());
        self.write_blocks_with(start, blocks, |_, report| {
            reports.push(report);
            true
        })?;
        Ok(reports)
    }

    // --- queue-aware staging ------------------------------------------------
    //
    // The admission scheduler (sero-core) merges queued foreground requests
    // into one elevator sweep per batch. The per-extent APIs above still pay
    // a full seek (steps + settle) at the head of *every* run; when a batch
    // spans several scattered-but-ascending runs, the sled can instead keep
    // moving over the gaps — the same settle-free streaming trick
    // `ers_blocks_at` uses for hash blocks, applied to magnetic extents.

    /// Streams several ascending extent runs in one sweep: a single
    /// head-of-batch seek, then settle-free [`Actuator::stream_rows`] over
    /// the gaps between runs (a run behind the sled falls back to a seek).
    /// `runs` are `(start, count)` pairs; `sink` receives every block like
    /// [`ProbeDevice::read_blocks_with`] and returns `false` to stop the
    /// whole sweep — remaining blocks are neither read nor charged.
    ///
    /// [`Actuator::stream_rows`]: crate::actuator::Actuator::stream_rows
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when any run exceeds the device,
    /// checked up front before any I/O.
    pub fn read_block_runs_with<F>(
        &mut self,
        runs: &[(u64, u64)],
        mut sink: F,
    ) -> Result<(), SectorError>
    where
        F: FnMut(u64, Result<DecodedSector, SectorError>) -> bool,
    {
        for &(start, count) in runs {
            self.check_extent(start, count)?;
        }
        let mut first = true;
        for &(start, count) in runs {
            if count == 0 {
                continue;
            }
            if first {
                self.seek_block(start);
                first = false;
            } else {
                self.stream_to_block(start);
            }
            for pba in start..start + count {
                if pba > start {
                    let ns = self.actuator.step_row();
                    self.clock.advance(ns);
                }
                let sector = self.read_sector_here(pba);
                if !sink(pba, sector) {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Streams several ascending extent runs of writes in one sweep — the
    /// write-side twin of [`ProbeDevice::read_block_runs_with`]. `blocks`
    /// carries the concatenated payloads of every run, in run order; `sink`
    /// receives each block's [`WriteReport`] and returns `false` to stop
    /// the sweep with the remaining blocks untouched and uncharged.
    ///
    /// # Errors
    ///
    /// [`SectorError::OutOfRange`] when any run exceeds the device (checked
    /// up front).
    ///
    /// # Panics
    ///
    /// Panics when `blocks` does not carry exactly one payload per run
    /// block — a caller bug, not a device condition.
    pub fn write_block_runs_with<F>(
        &mut self,
        runs: &[(u64, u64)],
        blocks: &[[u8; SECTOR_DATA_BYTES]],
        mut sink: F,
    ) -> Result<(), SectorError>
    where
        F: FnMut(u64, WriteReport) -> bool,
    {
        let total: u64 = runs.iter().map(|&(_, c)| c).sum();
        assert_eq!(
            total as usize,
            blocks.len(),
            "write_block_runs_with needs one payload per block"
        );
        for &(start, count) in runs {
            self.check_extent(start, count)?;
        }
        let mut offset = 0usize;
        let mut first = true;
        for &(start, count) in runs {
            if count == 0 {
                continue;
            }
            if first {
                self.seek_block(start);
                first = false;
            } else {
                self.stream_to_block(start);
            }
            for (i, data) in blocks[offset..offset + count as usize].iter().enumerate() {
                let pba = start + i as u64;
                if i > 0 {
                    let ns = self.actuator.step_row();
                    self.clock.advance(ns);
                }
                let report = self.write_sector_here(pba, 0, data);
                if !sink(pba, report) {
                    return Ok(());
                }
            }
            offset += count as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(blocks: u64) -> ProbeDevice {
        ProbeDevice::builder().blocks(blocks).build()
    }

    fn payload(seed: u8) -> [u8; SECTOR_DATA_BYTES] {
        let mut d = [0u8; SECTOR_DATA_BYTES];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(seed);
        }
        d
    }

    #[test]
    fn extent_round_trip_matches_loop() {
        let mut batch = device(32);
        let mut serial = device(32);
        let blocks: Vec<[u8; SECTOR_DATA_BYTES]> = (0..8).map(|i| payload(i as u8)).collect();

        let reports = batch.write_blocks(4, &blocks).unwrap();
        assert!(reports.iter().all(|r| r.unwritable_dots == 0));
        for (i, data) in blocks.iter().enumerate() {
            serial.mws(4 + i as u64, data).unwrap();
        }

        let via_extent = batch.read_blocks(4, 8).unwrap();
        for (i, sector) in via_extent.into_iter().enumerate() {
            let want = serial.mrs(4 + i as u64).unwrap();
            assert_eq!(sector.unwrap().data, want.data);
        }
    }

    #[test]
    fn extent_reads_are_cheaper_than_seek_loop() {
        let mut batch = device(64);
        let mut serial = device(64);
        let blocks: Vec<[u8; SECTOR_DATA_BYTES]> = (0..32).map(|i| payload(i as u8)).collect();
        batch.write_blocks(0, &blocks).unwrap();
        for (i, data) in blocks.iter().enumerate() {
            serial.mws(i as u64, data).unwrap();
        }

        let t0 = batch.clock().elapsed_ns();
        batch.read_blocks(0, 32).unwrap();
        let extent_ns = batch.clock().elapsed_ns() - t0;

        let t0 = serial.clock().elapsed_ns();
        for pba in 0..32 {
            serial.mrs(pba).unwrap();
        }
        let loop_ns = serial.clock().elapsed_ns() - t0;

        assert!(
            extent_ns * 3 < loop_ns * 2,
            "extent {extent_ns} ns should beat the loop {loop_ns} ns by >1.5x"
        );
    }

    #[test]
    fn bad_block_reported_without_aborting_extent() {
        let mut dev = device(8);
        let blocks: Vec<[u8; SECTOR_DATA_BYTES]> = (0..4).map(payload).collect();
        dev.write_blocks(0, &blocks).unwrap();
        dev.shred(2).unwrap();
        let read = dev.read_blocks(0, 4).unwrap();
        assert!(read[0].is_ok() && read[1].is_ok() && read[3].is_ok());
        assert!(read[2].is_err(), "shredded block must surface its error");
    }

    #[test]
    fn early_stop_skips_remaining_cost() {
        let mut dev = device(8);
        let blocks: Vec<[u8; SECTOR_DATA_BYTES]> = (0..8).map(payload).collect();
        dev.write_blocks(0, &blocks).unwrap();
        let mut seen = 0u64;
        let before = dev.counters().mrs;
        dev.read_blocks_with(0, 8, |_, _| {
            seen += 1;
            seen < 3
        })
        .unwrap();
        assert_eq!(seen, 3);
        assert_eq!(dev.counters().mrs - before, 3, "untouched blocks not read");
    }

    #[test]
    fn out_of_range_extent_rejected() {
        let mut dev = device(8);
        assert!(dev.read_blocks(4, 5).is_err());
        assert!(dev.read_blocks(0, 9).is_err());
        assert!(dev.write_blocks(7, &[payload(0); 2]).is_err());
        // Boundary-exact extents are fine.
        assert!(dev.write_blocks(6, &[payload(0); 2]).is_ok());
        assert!(dev.read_blocks(0, 8).is_ok());
        // Empty extents are trivially fine.
        assert!(dev.read_blocks(8, 0).is_ok());
    }

    #[test]
    fn run_sweep_matches_per_extent_reads() {
        let mut swept = device(64);
        let mut serial = device(64);
        for dev in [&mut swept, &mut serial] {
            for run in [4u64, 20, 40] {
                let blocks: Vec<[u8; SECTOR_DATA_BYTES]> =
                    (0..4).map(|i| payload((run + i) as u8)).collect();
                dev.write_blocks(run, &blocks).unwrap();
            }
        }

        let runs = [(4u64, 4u64), (20, 4), (40, 4)];
        let mut via_sweep = Vec::new();
        swept
            .read_block_runs_with(&runs, |pba, sector| {
                via_sweep.push((pba, sector.unwrap().data));
                true
            })
            .unwrap();
        let mut via_extents = Vec::new();
        for &(start, count) in &runs {
            serial
                .read_blocks_with(start, count, |pba, sector| {
                    via_extents.push((pba, sector.unwrap().data));
                    true
                })
                .unwrap();
        }
        assert_eq!(via_sweep, via_extents);
    }

    #[test]
    fn run_sweep_is_cheaper_than_per_run_seeks() {
        let mut swept = device(256);
        let mut serial = device(256);
        let runs: Vec<(u64, u64)> = (0..8).map(|i| (i * 30, 4)).collect();
        for dev in [&mut swept, &mut serial] {
            for &(start, count) in &runs {
                let blocks: Vec<[u8; SECTOR_DATA_BYTES]> =
                    (0..count).map(|i| payload((start + i) as u8)).collect();
                dev.write_blocks(start, &blocks).unwrap();
            }
        }

        let t0 = swept.clock().elapsed_ns();
        let seeks0 = swept.counters().seeks;
        swept.read_block_runs_with(&runs, |_, _| true).unwrap();
        let sweep_ns = swept.clock().elapsed_ns() - t0;
        assert_eq!(
            swept.counters().seeks - seeks0,
            1,
            "one seek for the whole ascending batch"
        );

        let t0 = serial.clock().elapsed_ns();
        for &(start, count) in &runs {
            serial.read_blocks_with(start, count, |_, _| true).unwrap();
        }
        let per_run_ns = serial.clock().elapsed_ns() - t0;
        assert!(
            sweep_ns < per_run_ns,
            "sweep {sweep_ns} ns should beat per-run seeks {per_run_ns} ns"
        );
    }

    #[test]
    fn run_sweep_write_round_trips_and_stops_early() {
        let mut dev = device(64);
        let runs = [(2u64, 2u64), (10, 3)];
        let blocks: Vec<[u8; SECTOR_DATA_BYTES]> = (0..5).map(payload).collect();
        dev.write_block_runs_with(&runs, &blocks, |_, _| true)
            .unwrap();
        assert_eq!(dev.mrs(2).unwrap().data, payload(0));
        assert_eq!(dev.mrs(11).unwrap().data, payload(3));

        // Early stop leaves trailing blocks untouched and uncharged.
        let before = dev.counters().mws;
        let mut seen = 0;
        dev.write_block_runs_with(&runs, &blocks, |_, _| {
            seen += 1;
            seen < 2
        })
        .unwrap();
        assert_eq!(dev.counters().mws - before, 2);
    }

    #[test]
    fn run_sweep_rejects_out_of_range_up_front() {
        let mut dev = device(8);
        let before = dev.counters().mrs;
        assert!(dev
            .read_block_runs_with(&[(0, 2), (6, 4)], |_, _| true)
            .is_err());
        assert_eq!(dev.counters().mrs, before, "no I/O before validation");
    }

    #[test]
    fn counters_match_loop_semantics() {
        let mut dev = device(8);
        let blocks: Vec<[u8; SECTOR_DATA_BYTES]> = (0..4).map(payload).collect();
        dev.write_blocks(0, &blocks).unwrap();
        let c = dev.counters();
        assert_eq!(c.mws, 4);
        assert_eq!(c.seeks, 1, "one seek for the whole extent");
        dev.read_blocks(0, 4).unwrap();
        assert_eq!(dev.counters().mrs, 4);
        assert_eq!(dev.counters().seeks, 2);
    }
}
