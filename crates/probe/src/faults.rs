//! Deterministic, seeded fault injection at the probe-device choke
//! points.
//!
//! Every sector transfer on a [`crate::device::ProbeDevice`] — single ops
//! and the extent/escan batch sweeps alike — funnels through three
//! `pub(crate)` primitives: `read_sector_here`, `write_sector_here`, and
//! `seek_block`. A [`FaultPlan`] armed on the device
//! ([`crate::device::ProbeDevice::arm_faults`]) injects faults at exactly
//! those choke points, so the device, file-system, and server layers
//! above are exercised *untouched by construction*: they see the same
//! typed [`SectorError`]s and degraded [`crate::device::WriteReport`]s real hardware
//! would produce, never a special test path.
//!
//! The plan owns its **own** [`StdRng`], seeded independently of the
//! device's channel-noise stream. Two devices built with the same seed —
//! one with a plan armed, one without — therefore stay comparable: the
//! fault draws never perturb what the fault-free twin reads, and an
//! identical plan replays the identical fault schedule.
//!
//! Fault classes (the §5-adjacent hardware misbehaviour the paper's
//! "tamper evidence, never silence" guarantee must survive):
//!
//! * **Transient read faults** — a sector read fails with a typed
//!   [`SectorError`] for [`FaultPlan::transient_depth`] consecutive
//!   attempts, then recovers: the model of channel noise and marginal
//!   dots. Rate-driven via [`FaultPlan::read_fault_ppm`]. The *real* read
//!   still happens first (clock, counters, and channel RNG advance
//!   exactly as on the twin); only its result is discarded.
//! * **Transient write faults** — a write completes but reports phantom
//!   unwritable dots ([`FaultPlan::write_fault_ppm`]), the shape heat
//!   damage takes in [`WriteReport`](crate::device::WriteReport).
//! * **Torn sweeps** — emerge for free: a per-sector fault inside an
//!   extent sweep aborts the batch mid-run exactly where a real bad
//!   block would.
//! * **Sled stalls** — [`FaultPlan::stall_ppm`] of seeks cost an extra
//!   [`FaultPlan::stall_ns`] of device time (a sticking µWalker step).
//! * **Dead blocks** — [`FaultPlan::dead_reads`] fail every read until
//!   disarmed: the persistent failure that must end in quarantine, not a
//!   wedge.
//! * **Flaky blocks** — [`FaultPlan::flaky_reads`] fail a fixed number
//!   of read attempts, then recover: the deterministic transient used to
//!   pin retry-budget behaviour exactly.
//! * **Stuck-at dots** — [`FaultPlan::stuck_writes`] report a fixed
//!   phantom unwritable-dot count on every write of a block.
//! * **Bit rot** — [`FaultPlan::bit_rot`] flips the magnetisation of
//!   chosen data-area dots once, at arm time: silent medium decay that
//!   only the paper's verify protocol can catch.

use crate::sector::SectorError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// One part per million — rates in a [`FaultPlan`] are expressed in ppm
/// so integer plans stay hashable, comparable, and exactly serializable.
pub const PPM: u32 = 1_000_000;

/// A seeded, schedulable description of hardware misbehaviour. See the
/// [module docs](self) for the fault classes.
///
/// The default plan injects nothing; builder-style setters opt into each
/// class. Arm it with [`crate::device::ProbeDevice::arm_faults`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the plan's private RNG (independent of the device seed).
    pub seed: u64,
    /// Probability (ppm) that a sector read triggers a transient fault.
    pub read_fault_ppm: u32,
    /// Probability (ppm) that a sector write reports phantom unwritable
    /// dots.
    pub write_fault_ppm: u32,
    /// Phantom unwritable dots reported per transient write fault.
    pub write_fault_dots: usize,
    /// Consecutive failures a triggered transient read fault injects
    /// before the block recovers (1 = a single re-read succeeds).
    pub transient_depth: u32,
    /// Probability (ppm) that a seek stalls the sled.
    pub stall_ppm: u32,
    /// Extra device time per stalled seek.
    pub stall_ns: u64,
    /// Blocks whose every read fails until the plan is disarmed.
    pub dead_reads: BTreeSet<u64>,
    /// Blocks whose next N read attempts fail, then recover — the
    /// deterministic transient fault (rate-driven faults re-draw on
    /// every attempt; these count down and stop).
    pub flaky_reads: BTreeMap<u64, u32>,
    /// Blocks reporting a fixed phantom unwritable-dot count per write.
    pub stuck_writes: BTreeMap<u64, usize>,
    /// `(pba, data-area dot offset)` pairs whose magnetisation is
    /// flipped once when the plan is armed.
    pub bit_rot: Vec<(u64, u32)>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0xFA17_0001,
            read_fault_ppm: 0,
            write_fault_ppm: 0,
            write_fault_dots: 48,
            transient_depth: 1,
            stall_ppm: 0,
            stall_ns: 0,
            dead_reads: BTreeSet::new(),
            flaky_reads: BTreeMap::new(),
            stuck_writes: BTreeMap::new(),
            bit_rot: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan injecting nothing (the explicit fault-free twin).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Seeds the plan's private RNG.
    pub fn seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Transient read faults at `ppm`, each lasting `depth` consecutive
    /// attempts.
    pub fn transient_reads(mut self, ppm: u32, depth: u32) -> FaultPlan {
        self.read_fault_ppm = ppm;
        self.transient_depth = depth.max(1);
        self
    }

    /// Transient write faults at `ppm`, each reporting `dots` phantom
    /// unwritable dots.
    pub fn transient_writes(mut self, ppm: u32, dots: usize) -> FaultPlan {
        self.write_fault_ppm = ppm;
        self.write_fault_dots = dots.max(1);
        self
    }

    /// Sled stalls at `ppm`, each costing `ns` extra device time.
    pub fn stalls(mut self, ppm: u32, ns: u64) -> FaultPlan {
        self.stall_ppm = ppm;
        self.stall_ns = ns;
        self
    }

    /// Marks `pba` dead for reads (persistent until disarm).
    pub fn dead_read(mut self, pba: u64) -> FaultPlan {
        self.dead_reads.insert(pba);
        self
    }

    /// Fails the next `attempts` reads of `pba`, after which it recovers
    /// for good — a transient fault with a deterministic lifetime.
    pub fn flaky_read(mut self, pba: u64, attempts: u32) -> FaultPlan {
        self.flaky_reads.insert(pba, attempts.max(1));
        self
    }

    /// Marks `pba` stuck for writes: every write reports `dots` phantom
    /// unwritable dots (persistent until disarm).
    pub fn stuck_write(mut self, pba: u64, dots: usize) -> FaultPlan {
        self.stuck_writes.insert(pba, dots.max(1));
        self
    }

    /// Flips the magnetisation of `pba`'s data-area dot `offset` once at
    /// arm time.
    pub fn rot_dot(mut self, pba: u64, offset: u32) -> FaultPlan {
        self.bit_rot.push((pba, offset));
        self
    }

    /// True when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.read_fault_ppm == 0
            && self.write_fault_ppm == 0
            && self.stall_ppm == 0
            && self.dead_reads.is_empty()
            && self.flaky_reads.is_empty()
            && self.stuck_writes.is_empty()
            && self.bit_rot.is_empty()
    }
}

/// Counters of what an armed plan actually injected — read back through
/// [`crate::device::ProbeDevice::fault_stats`] by tests and benchmarks
/// calibrating fault rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Sector reads that returned an injected error.
    pub read_faults: u64,
    /// Sector writes that reported injected phantom unwritable dots.
    pub write_faults: u64,
    /// Seeks that stalled.
    pub stalls: u64,
    /// Dots flipped by bit rot at arm time.
    pub rotted_dots: u64,
}

/// Live injection state: the plan, its private RNG, and the per-block
/// countdown of in-flight transient faults.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    /// Remaining consecutive read failures per block with a transient
    /// fault in flight.
    pending_reads: BTreeMap<u64, u32>,
    stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let rng = StdRng::seed_from_u64(plan.seed);
        // Flaky blocks are pre-seeded countdowns: they share the pending
        // machinery rate-triggered transients use, minus the re-draw.
        let pending_reads = plan.flaky_reads.clone();
        FaultState {
            plan,
            rng,
            pending_reads,
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    pub(crate) fn note_rotted(&mut self, dots: u64) {
        self.stats.rotted_dots += dots;
    }

    fn draw(&mut self, ppm: u32) -> bool {
        // One RNG draw per decision keeps the schedule a pure function
        // of (plan, operation sequence) — reproducible across runs.
        ppm > 0 && self.rng.random_range(0..PPM) < ppm
    }

    /// Fault decision for a sector read of `pba`. The injected error is
    /// typed exactly like the real failure it models.
    pub(crate) fn on_read(&mut self, pba: u64) -> Option<SectorError> {
        if self.plan.dead_reads.contains(&pba) {
            self.stats.read_faults += 1;
            return Some(SectorError::Uncorrectable {
                codeword: 0,
                source: sero_codec::rs::RsError::TooManyErrors,
            });
        }
        if let Some(left) = self.pending_reads.get_mut(&pba) {
            *left -= 1;
            if *left == 0 {
                self.pending_reads.remove(&pba);
            }
            self.stats.read_faults += 1;
            return Some(injected_read_error(pba));
        }
        if self.draw(self.plan.read_fault_ppm) {
            if self.plan.transient_depth > 1 {
                self.pending_reads
                    .insert(pba, self.plan.transient_depth - 1);
            }
            self.stats.read_faults += 1;
            return Some(injected_read_error(pba));
        }
        None
    }

    /// Phantom unwritable dots to add to a write of `pba` (0 = no fault).
    pub(crate) fn on_write(&mut self, pba: u64) -> usize {
        if let Some(&dots) = self.plan.stuck_writes.get(&pba) {
            self.stats.write_faults += 1;
            return dots;
        }
        if self.draw(self.plan.write_fault_ppm) {
            self.stats.write_faults += 1;
            return self.plan.write_fault_dots;
        }
        0
    }

    /// Extra device time this seek costs (0 = no stall).
    pub(crate) fn on_seek(&mut self) -> u64 {
        if self.plan.stall_ns > 0 && self.draw(self.plan.stall_ppm) {
            self.stats.stalls += 1;
            return self.plan.stall_ns;
        }
        0
    }
}

/// The typed shape of an injected transient read fault: a CRC check
/// tripped by channel noise. Distinctive constants make injected errors
/// recognisable in logs without a side channel.
fn injected_read_error(pba: u64) -> SectorError {
    SectorError::CrcMismatch {
        stored: 0xFA17_FA17,
        computed: pba as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        let mut state = FaultState::new(plan);
        for pba in 0..1000 {
            assert_eq!(state.on_read(pba), None);
            assert_eq!(state.on_write(pba), 0);
            assert_eq!(state.on_seek(), 0);
        }
        assert_eq!(state.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let plan = FaultPlan::none()
            .seed(7)
            .transient_reads(200_000, 2)
            .transient_writes(100_000, 5)
            .stalls(300_000, 1_000);
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for pba in 0..500 {
            assert_eq!(a.on_read(pba % 16), b.on_read(pba % 16));
            assert_eq!(a.on_write(pba % 16), b.on_write(pba % 16));
            assert_eq!(a.on_seek(), b.on_seek());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().read_faults > 0, "rate high enough to fire");
        assert!(a.stats().stalls > 0);
    }

    #[test]
    fn transient_depth_counts_down_then_recovers() {
        // Force a trigger on the first read with a certain rate, then
        // check the countdown applies to the same block only.
        let plan = FaultPlan::none().transient_reads(PPM, 3);
        let mut state = FaultState::new(plan);
        assert!(state.on_read(4).is_some(), "depth 1/3");
        // The countdown is per-block and fires before any new draw.
        assert!(state.on_read(4).is_some(), "depth 2/3");
        assert!(state.on_read(4).is_some(), "depth 3/3");
        // At ppm == PPM every fresh draw also fires, so use a separate
        // state to show recovery with a 0 rate after the trigger.
        let mut once = FaultState::new(FaultPlan::none().transient_reads(PPM, 2));
        assert!(once.on_read(9).is_some());
        once.plan.read_fault_ppm = 0;
        assert!(once.on_read(9).is_some(), "countdown survives rate change");
        assert_eq!(once.on_read(9), None, "block recovered");
    }

    #[test]
    fn flaky_blocks_fail_exactly_n_attempts_then_recover() {
        let mut state = FaultState::new(FaultPlan::none().flaky_read(6, 2));
        assert!(state.on_read(6).is_some(), "attempt 1 fails");
        assert_eq!(state.on_read(5), None, "other blocks untouched");
        assert!(state.on_read(6).is_some(), "attempt 2 fails");
        assert_eq!(state.on_read(6), None, "recovered for good");
        assert_eq!(state.on_read(6), None);
        assert_eq!(state.stats().read_faults, 2);
    }

    #[test]
    fn dead_and_stuck_blocks_fail_every_time() {
        let plan = FaultPlan::none().dead_read(3).stuck_write(5, 7);
        let mut state = FaultState::new(plan);
        for _ in 0..10 {
            assert!(state.on_read(3).is_some());
            assert_eq!(state.on_write(5), 7);
        }
        assert_eq!(state.on_read(4), None);
        assert_eq!(state.on_write(4), 0);
        assert_eq!(state.stats().read_faults, 10);
        assert_eq!(state.stats().write_faults, 10);
    }
}
