//! Offline shim for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the real `proptest`. It keeps the property-test surface the seed
//! code uses — the [`proptest!`] macro, `any::<T>()`, range and tuple
//! strategies, [`collection::vec`], [`sample::Index`], [`prop_oneof!`],
//! `prop_map`, and the `prop_assert*` / [`prop_assume!`] macros — backed by
//! plain random sampling.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the inputs that failed,
//!   unminimised.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so runs are reproducible and CI is not flaky.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The case runner: RNG, config, and error plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies while generating one case.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Derives a generator from a test's fully qualified name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a, so the seed is stable across runs and platforms.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(hash))
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            use rand::Rng;
            self.0.random_range(0..bound)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(message: impl Into<String>) -> Self {
            Self::Fail(message.into())
        }

        /// Builds the rejection variant.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::Reject(message.into())
        }
    }

    /// Result type the body of a [`crate::proptest!`] case expands into.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only the knobs the workspace touches exist.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
        /// Give up after this many total `prop_assume!` rejections in one
        /// test.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies with a common value type;
    /// the expansion of [`crate::prop_oneof!`].
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options`, which must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len());
            self.options[pick].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::RngCore;
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::Rng;
            rng.0.random()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.max - self.min <= 1 {
                self.min
            } else {
                self.min + rng.below(self.max - self.min)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range for collection::vec");
        VecStrategy { element, min, max }
    }
}

pub mod sample {
    //! Sampling helpers.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is not known at generation
    /// time; resolve it with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects this index into `[0, len)`. Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            Self(rng.0.next_u64() as usize)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::sample::Index;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn` runs its body against `cases`
/// sampled inputs (see [`test_runner::Config`]); failures report the
/// generated inputs via `Debug`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(reason)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest: too many prop_assume! rejections ({reason})",
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                accepted + 1,
                                config.cases,
                                message,
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Rejects the current case (it is regenerated, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Coin {
        Heads,
        Tails,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(any::<u8>(), 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn oneof_and_map_cover_both_arms(coins in crate::collection::vec(
            prop_oneof![
                any::<bool>().prop_map(|b| if b { Coin::Heads } else { Coin::Tails }),
                Just(Coin::Heads),
            ],
            1..32,
        )) {
            prop_assert!(!coins.is_empty());
        }

        #[test]
        fn index_projects_into_len(idx in any::<Index>(), len in 1usize..100) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..=255) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_sample_elementwise((a, b) in (0u8..4, 10u64..20)) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
