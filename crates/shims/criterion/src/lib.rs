//! Offline shim for the subset of the `criterion` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the real `criterion`. It keeps the bench-authoring surface the
//! seed code uses — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — and reports a simple mean ns/iter per benchmark instead of
//! criterion's full statistical analysis.
//!
//! Set `SERO_BENCH_FAST=1` (or pass `--quick`) to cap measurement at a few
//! milliseconds per benchmark; CI's bench smoke job uses this to prove the
//! harness runs without paying full measurement time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped; the shim runs one input per iteration
/// regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units-of-work declaration used to print a derived throughput line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `"<function>/<parameter>"`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// Renders the id as the printed benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    measurement_time: Duration,
    sample_size: usize,
}

impl Settings {
    fn effective(self) -> Self {
        if fast_mode() {
            Self {
                measurement_time: Duration::from_millis(5),
                sample_size: 2,
            }
        } else {
            self
        }
    }
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("SERO_BENCH_FAST").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick")
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_id(), self.settings, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings and a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (the shim folds this into iteration
    /// count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Caps wall-clock time spent measuring each benchmark in the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets warm-up time. The shim's calibration pass plays this role, so
    /// the value is accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration units of work for derived throughput output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&name, self.settings, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&name, self.settings, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group. (The shim keeps no deferred state; this exists for
    /// API compatibility.)
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let settings = settings.effective();

    // Calibration pass: one iteration, to size the measured run.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));

    let budget = settings.measurement_time;
    let mut iters = (budget.as_nanos() / per_iter.as_nanos()).max(1) as u64;
    iters = iters.min(settings.sample_size as u64 * 1000).max(1);

    let mut bench = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);

    let total = bench.elapsed.max(Duration::from_nanos(1));
    let ns_per_iter = total.as_nanos() as f64 / bench.iters as f64;
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (ns_per_iter / 1e9) / (1024.0 * 1024.0);
            println!(
                "{name:<48} {ns_per_iter:>14.1} ns/iter ({mib_s:>10.1} MiB/s, {} iters)",
                bench.iters
            );
        }
        Some(Throughput::Elements(elems)) => {
            let elem_s = elems as f64 / (ns_per_iter / 1e9);
            println!(
                "{name:<48} {ns_per_iter:>14.1} ns/iter ({elem_s:>10.0} elem/s, {} iters)",
                bench.iters
            );
        }
        None => {
            println!(
                "{name:<48} {ns_per_iter:>14.1} ns/iter ({} iters)",
                bench.iters
            );
        }
    }
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main()` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        std::env::set_var("SERO_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_chains() {
        std::env::set_var("SERO_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(2));
        group.throughput(Throughput::Bytes(512));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
