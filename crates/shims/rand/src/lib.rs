//! Offline shim for the subset of the `rand` 0.9 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the real `rand`. It provides [`rngs::StdRng`] (a seedable
//! xoshiro256++ generator), the [`Rng`] extension trait with `random`,
//! `random_bool`, `random_range`, and `fill`, and [`SeedableRng`] with
//! `seed_from_u64`. Streams are deterministic for a given seed, which is
//! all the simulator and its tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with words of the stream.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] stream (the shim's stand-in
/// for sampling from rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly, as accepted by
/// [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire rejection).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let word = rng.next_u64();
        let (hi, lo) = {
            let wide = (word as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Fills the byte slice with uniformly distributed bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic for a given seed; not cryptographically secure (the
    /// real `StdRng` is ChaCha12, which matters for none of the simulator's
    /// uses).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u8..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_bias() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((1500..2500).contains(&hits), "p=0.2 gave {hits}/10000");
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
