//! BENCH-SCRUB — host-time cost of the scrub and extent fast paths.
//!
//! The `exp_scrub` / `exp_bulk_io` binaries report *simulated device*
//! time; this Criterion bench tracks the *host* cost of the same code
//! paths (hashing, decoding, channel simulation, worker fan-out), so
//! regressions in the implementation itself — as opposed to the device
//! model — show up here.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sero_core::device::SeroDevice;
use sero_core::line::Line;
use sero_core::scrub::{scrub_device, ScrubConfig};
use sero_probe::device::ProbeDevice;
use std::hint::black_box;
use std::time::Duration;

const LINES: u64 = 16;
const ORDER: u32 = 3;

fn heated_device() -> SeroDevice {
    let len = 1u64 << ORDER;
    let mut dev = SeroDevice::with_blocks(LINES * len);
    for i in 0..LINES {
        let line = Line::new(i * len, ORDER).expect("aligned");
        for pba in line.data_blocks() {
            dev.write_block(pba, &[pba as u8; 512]).expect("write");
        }
        dev.heat_line(line, vec![], 0).expect("heat");
    }
    dev
}

fn bench_scrub(c: &mut Criterion) {
    let mut group = c.benchmark_group("scrub");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    let prototype = heated_device();
    for workers in [1usize, 4] {
        group.bench_function(format!("workers/{workers}"), |b| {
            b.iter_batched(
                || prototype.clone(),
                |mut dev| {
                    black_box(scrub_device(&mut dev, &ScrubConfig::with_workers(workers)).unwrap());
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_bulk_io(c: &mut Criterion) {
    const EXTENT: u64 = 64;
    let mut group = c.benchmark_group("bulk_io");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .throughput(Throughput::Bytes(EXTENT * 512));

    let mut filled = ProbeDevice::builder().blocks(EXTENT).build();
    let sectors: Vec<[u8; 512]> = (0..EXTENT).map(|i| [i as u8; 512]).collect();
    filled.write_blocks(0, &sectors).expect("fill");

    group.bench_function("read_loop", |b| {
        b.iter(|| {
            for pba in 0..EXTENT {
                black_box(filled.mrs(pba).unwrap());
            }
        });
    });
    group.bench_function("read_blocks", |b| {
        b.iter(|| black_box(filled.read_blocks(0, EXTENT).unwrap()));
    });
    group.bench_function("write_blocks", |b| {
        b.iter(|| black_box(filled.write_blocks(0, &sectors).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_scrub, bench_bulk_io);
criterion_main!(benches);
