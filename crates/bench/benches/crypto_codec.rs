//! Substrate microbenchmarks: SHA-256, Manchester cells, CRC-32 and the
//! sector Reed–Solomon code. These set the constant factors behind every
//! higher-level number in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sero_codec::crc32::crc32;
use sero_codec::manchester;
use sero_codec::rs::ReedSolomon;
use sero_crypto::sha256;
use std::hint::black_box;
use std::time::Duration;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for size in [64usize, 512, 4096, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| black_box(sha256(data)));
        });
    }
    group.finish();
}

fn bench_manchester(c: &mut Criterion) {
    let mut group = c.benchmark_group("manchester");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let payload = vec![0x5au8; 256]; // a full hash block payload
    group.bench_function("encode_256B", |b| {
        b.iter(|| black_box(manchester::encode_bytes(black_box(&payload))));
    });
    let dots = manchester::encode_bytes(&payload);
    group.bench_function("decode_256B", |b| {
        b.iter(|| black_box(manchester::decode(black_box(&dots))));
    });
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let sector = vec![0x42u8; 532];
    group.throughput(Throughput::Bytes(532));
    group.bench_function("sector_532B", |b| {
        b.iter(|| black_box(crc32(black_box(&sector))));
    });
    group.finish();
}

fn bench_rs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reed_solomon");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let rs = ReedSolomon::new(14).unwrap();
    let data = vec![0x77u8; 133]; // one sector lane
    group.bench_function("encode_lane", |b| {
        b.iter(|| black_box(rs.encode(black_box(&data))));
    });

    let clean = rs.encode(&data);
    group.bench_function("decode_clean_lane", |b| {
        b.iter(|| {
            let mut cw = clean.clone();
            black_box(rs.decode(&mut cw, &[]).unwrap());
        });
    });

    group.bench_function("decode_7_errors", |b| {
        let mut corrupted = clean.clone();
        for i in 0..7 {
            corrupted[i * 19] ^= 0x80 | i as u8;
        }
        b.iter(|| {
            let mut cw = corrupted.clone();
            black_box(rs.decode(&mut cw, &[]).unwrap());
        });
    });

    group.bench_function("decode_14_erasures", |b| {
        let erasures: Vec<usize> = (0..14).map(|i| i * 10).collect();
        let mut corrupted = clean.clone();
        for &e in &erasures {
            corrupted[e] ^= 0xff;
        }
        b.iter(|| {
            let mut cw = corrupted.clone();
            black_box(rs.decode(&mut cw, &erasures).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sha256, bench_manchester, bench_crc, bench_rs);
criterion_main!(benches);
