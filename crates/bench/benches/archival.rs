//! EXP-ARCH (wall-clock side): Venti store/load/seal and fossil-index
//! insert/lookup costs on the simulated device.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sero_core::device::SeroDevice;
use sero_crypto::sha256;
use sero_fossil::FossilIndex;
use sero_venti::Venti;
use std::hint::black_box;
use std::time::Duration;

fn bench_venti(c: &mut Criterion) {
    let mut group = c.benchmark_group("venti");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    let object_data: Vec<u8> = (0..20 * 512).map(|i| (i % 241) as u8).collect();

    group.bench_function("store_object_10k", |b| {
        b.iter_batched(
            || Venti::new(SeroDevice::with_blocks(512)),
            |mut v| {
                black_box(v.store_object(&object_data).unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("store_object_dedup_hit", |b| {
        let mut v = Venti::new(SeroDevice::with_blocks(512));
        v.store_object(&object_data).unwrap();
        b.iter(|| black_box(v.store_object(&object_data).unwrap()));
    });

    group.bench_function("load_object_10k", |b| {
        let mut v = Venti::new(SeroDevice::with_blocks(512));
        let obj = v.store_object(&object_data).unwrap();
        b.iter(|| black_box(v.load_object(&obj).unwrap()));
    });

    group.bench_function("seal_and_verify", |b| {
        b.iter_batched(
            || {
                let mut v = Venti::new(SeroDevice::with_blocks(512));
                let obj = v.store_object(&object_data).unwrap();
                (v, obj)
            },
            |(mut v, obj)| {
                let line = v.seal(&obj, vec![], 0).unwrap();
                black_box(v.verify_seal(line).unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn bench_fossil(c: &mut Criterion) {
    let mut group = c.benchmark_group("fossil");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    group.bench_function("insert_64", |b| {
        b.iter_batched(
            || FossilIndex::new(SeroDevice::with_blocks(1024)),
            |mut idx| {
                for i in 0..64u64 {
                    idx.insert(sha256(&i.to_le_bytes()), i).unwrap();
                }
                black_box(idx)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("lookup_hit", |b| {
        let mut idx = FossilIndex::new(SeroDevice::with_blocks(1024));
        for i in 0..64u64 {
            idx.insert(sha256(&i.to_le_bytes()), i).unwrap();
        }
        let key = sha256(&33u64.to_le_bytes());
        b.iter(|| black_box(idx.lookup(&key).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_venti, bench_fossil);
criterion_main!(benches);
