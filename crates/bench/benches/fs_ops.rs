//! EXP-FS (wall-clock side): file-system operation cost, with and without
//! heated lines present, plus the cleaner under churn.
//!
//! §4.1's requirement: the presence of RO lines must "not degrade the
//! performance of WMRM operations". Comparing `read_cold` / `write_cold`
//! against their `_among_heat` variants makes that measurable.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sero_core::device::SeroDevice;
use sero_fs::alloc::WriteClass;
use sero_fs::fs::{FsConfig, SeroFs};
use std::hint::black_box;
use std::time::Duration;

fn fresh_fs(blocks: u64) -> SeroFs {
    SeroFs::format(SeroDevice::with_blocks(blocks), FsConfig::default()).expect("format")
}

/// A file system that has aged: a third of its files heated.
fn aged_fs(blocks: u64) -> SeroFs {
    let mut fs = fresh_fs(blocks);
    for i in 0..12 {
        let name = format!("aged-{i}");
        fs.create(&name, &[i as u8; 2048], WriteClass::Archival)
            .expect("create");
        if i % 3 == 0 {
            fs.heat(&name, vec![], i).expect("heat");
        }
    }
    fs
}

fn bench_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_ops");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    group.bench_function("create_2k", |b| {
        b.iter_batched(
            || (fresh_fs(1024), 0u32),
            |(mut fs, _)| {
                fs.create("f", &[7u8; 2048], WriteClass::Normal).unwrap();
                black_box(fs)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("read_cold", |b| {
        let mut fs = fresh_fs(1024);
        fs.create("r", &[7u8; 2048], WriteClass::Normal).unwrap();
        b.iter(|| black_box(fs.read("r").unwrap()));
    });

    group.bench_function("read_among_heat", |b| {
        let mut fs = aged_fs(1024);
        fs.create("r", &[7u8; 2048], WriteClass::Normal).unwrap();
        b.iter(|| black_box(fs.read("r").unwrap()));
    });

    group.bench_function("overwrite_cold", |b| {
        let mut fs = fresh_fs(2048);
        fs.create("w", &[7u8; 2048], WriteClass::Normal).unwrap();
        b.iter(|| fs.write("w", &[8u8; 2048], WriteClass::Normal).unwrap());
    });

    group.bench_function("overwrite_among_heat", |b| {
        let mut fs = aged_fs(2048);
        fs.create("w", &[7u8; 2048], WriteClass::Normal).unwrap();
        b.iter(|| fs.write("w", &[8u8; 2048], WriteClass::Normal).unwrap());
    });

    group.bench_function("heat_4_block_file", |b| {
        b.iter_batched(
            || {
                let mut fs = fresh_fs(1024);
                fs.create("h", &[1u8; 2048], WriteClass::Archival).unwrap();
                fs
            },
            |mut fs| {
                black_box(fs.heat("h", vec![], 0).unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("verify_4_block_file", |b| {
        let mut fs = fresh_fs(1024);
        fs.create("v", &[1u8; 2048], WriteClass::Archival).unwrap();
        fs.heat("v", vec![], 0).unwrap();
        b.iter(|| black_box(fs.verify("v").unwrap()));
    });

    group.bench_function("cleaner_after_churn", |b| {
        b.iter_batched(
            || {
                let mut fs = fresh_fs(1024);
                for i in 0..8 {
                    fs.create(&format!("c{i}"), &[i as u8; 4096], WriteClass::Normal)
                        .unwrap();
                }
                for i in 0..8 {
                    fs.remove(&format!("c{i}")).unwrap();
                }
                fs
            },
            |mut fs| {
                black_box(fs.run_cleaner(usize::MAX).unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_fs);
criterion_main!(benches);
