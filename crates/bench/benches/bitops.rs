//! TAB-ERB (wall-clock side): throughput of the four §3 bit operations
//! on the simulated device. Simulated-time ratios live in `tab_timing`;
//! this bench tracks the simulator's own cost so regressions in the
//! substrate are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sero_probe::device::ProbeDevice;
use std::hint::black_box;
use std::time::Duration;

fn bench_bitops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitops");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    group.bench_function("mrb", |b| {
        let mut dev = ProbeDevice::builder().blocks(4).build();
        dev.mwb(0, true);
        b.iter(|| black_box(dev.mrb(black_box(0))));
    });

    group.bench_function("mwb", |b| {
        let mut dev = ProbeDevice::builder().blocks(4).build();
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            black_box(dev.mwb(black_box(1), bit))
        });
    });

    group.bench_function("erb_unheated", |b| {
        let mut dev = ProbeDevice::builder().blocks(4).build();
        dev.mwb(2, true);
        b.iter(|| black_box(dev.erb(black_box(2))));
    });

    group.bench_function("erb_heated", |b| {
        let mut dev = ProbeDevice::builder().blocks(4).build();
        dev.ewb(3);
        b.iter(|| black_box(dev.erb(black_box(3))));
    });

    group.bench_function("ewb", |b| {
        // Each heat is irreversible: fresh device per batch.
        b.iter_batched(
            || ProbeDevice::builder().blocks(4).build(),
            |mut dev| black_box(dev.ewb(black_box(100))),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn bench_sector_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sector_ops");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let data = [0x5Au8; 512];

    group.bench_function("mws", |b| {
        let mut dev = ProbeDevice::builder().blocks(8).build();
        b.iter(|| dev.mws(black_box(1), black_box(&data)).unwrap());
    });

    group.bench_function("mrs", |b| {
        let mut dev = ProbeDevice::builder().blocks(8).build();
        dev.mws(2, &data).unwrap();
        b.iter(|| black_box(dev.mrs(black_box(2)).unwrap()));
    });

    group.bench_function("ers", |b| {
        let mut dev = ProbeDevice::builder().blocks(8).build();
        dev.ews(3, &vec![true; 256]).unwrap();
        b.iter(|| black_box(dev.ers(black_box(3)).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_bitops, bench_sector_ops);
criterion_main!(benches);
