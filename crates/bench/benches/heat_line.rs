//! EXP-HEAT — Cost of the heat and verify operations vs line order.
//!
//! The heat operation reads 2^N − 1 blocks, hashes them, burns ~500
//! Manchester cells and verifies the read-back; verify re-reads the data
//! and the electrical area. Cost should scale linearly in line length
//! with a constant electrical floor — the reason §4.1 wants large,
//! well-chosen lines.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sero_core::device::SeroDevice;
use sero_core::line::Line;
use std::hint::black_box;
use std::time::Duration;

fn prepared_device(order: u32) -> (SeroDevice, Line) {
    let blocks = (2u64 << order).max(32);
    let mut dev = SeroDevice::with_blocks(blocks);
    let line = Line::new(0, order).expect("aligned");
    for pba in line.data_blocks() {
        dev.write_block(pba, &[pba as u8; 512]).expect("write");
    }
    (dev, line)
}

fn bench_heat(c: &mut Criterion) {
    let mut group = c.benchmark_group("heat_line");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for order in [1u32, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, &order| {
            b.iter_batched(
                || prepared_device(order),
                |(mut dev, line)| {
                    black_box(dev.heat_line(line, vec![], 0).unwrap());
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_line");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for order in [1u32, 3] {
        let (mut dev, line) = prepared_device(order);
        dev.heat_line(line, vec![], 0).expect("heat");
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| black_box(dev.verify_line(line).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heat, bench_verify);
criterion_main!(benches);
