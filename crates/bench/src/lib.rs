//! Shared helpers for the SERO experiment regenerators.
//!
//! Every figure and table of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md` for the index); Criterion benches in
//! `benches/` measure the implementation itself. This library holds the
//! bits they share: fixed-width table printing, ASCII sparklines for scan
//! data, the workload driver that replays [`sero_workload::Op`] streams
//! against a file system, and the [`json`] machinery behind the
//! machine-readable `BENCH_*.json` baselines.
//!
//! # The `BENCH_*.json` schema (`sero-bench/v1`)
//!
//! The perf-baseline binaries (`exp_scrub`, `exp_bulk_io`, `exp_registry`,
//! `exp_sched`, `exp_fleet`, `exp_server`, `exp_concurrency`,
//! `exp_faults`, `exp_reactor`, `exp_metadata`) each emit
//! one JSON document, written to the current
//! directory (override with `SERO_BENCH_OUT_DIR`). Committed baselines
//! live in `benchmarks/` at the repo root; CI regenerates the files with
//! `SERO_BENCH_FAST=1` and runs `bench_compare` against the committed
//! copies. The shape:
//!
//! ```json
//! {
//!   "schema": "sero-bench/v1",
//!   "bench": "scrub",                // or "bulk_io"
//!   "fast_mode": true,               // SERO_BENCH_FAST was set
//!   "device": { ... },               // workload geometry: blocks, bytes,
//!                                    // heated_lines / extent_blocks, workers
//!   "metrics": { ... },              // DETERMINISTIC simulated-device
//!                                    // numbers: *_device_ms, speedup,
//!                                    // ops/sec, mib_per_s — the compared set
//!   "host": { ... }                  // host wall-clock milliseconds;
//!                                    // informational only, never compared
//! }
//! ```
//!
//! ## Compare policy: what blocks CI, and at what threshold
//!
//! Only numeric leaves under `"metrics"` participate in the
//! [`bench_compare`](../bench_compare/index.html) ±threshold check (a
//! metric present in only one file is an explicit `MISSING` failure, and
//! two documents disagreeing on `"schema"` or `"bench"` abort the compare
//! with exit code 2). Everything in `"metrics"` derives from the simulated
//! device clock ([`sero_probe::timing::SimClock`]) and deterministic
//! seeds, so a regeneration on any host reproduces the committed numbers
//! exactly; `"host"` captures real wall time for humans and is expected
//! to vary.
//!
//! That split is also the CI gating policy. The **metric allowlist** —
//! everything the blocking compare sees — is exactly the numeric leaves
//! of `"metrics"`; the **threshold** is ±20% (`--threshold 0.20`),
//! generous against incidental drift (an extra seek here, a rounding
//! change there) while still catching a regressed fast path or a broken
//! scheduler. Because the allowlisted numbers are deterministic, the
//! `bench-baselines` CI job runs `bench_compare` as a **blocking** step:
//! drift or a missing metric fails the build, and the fix is either to
//! repair the regression or to regenerate and commit the baseline with
//! the change that justifies it. Wall-clock numbers stay non-blocking by
//! construction — they live under `"host"`, which the compare never
//! reads, and the Criterion `bench-smoke` job that does measure host time
//! keeps its `continue-on-error`. Non-JSON artifacts (the `exp_sched`
//! scheduler trace `sched_trace.json`, the `exp_fleet` fleet trace
//! `fleet_trace.json`) are uploaded for humans and never compared.
//!
//! Per-bench metric keys:
//!
//! * `bench = "scrub"` — `serial_device_ms` (one-line-at-a-time
//!   [`sero_core::device::SeroDevice::verify_line`] loop),
//!   `parallel_device_ms` (sharded [`sero_core::scrub::scrub_device`] with
//!   seek-aware shard parking), `speedup` (their ratio; the ≥ 3×
//!   acceptance bar), `lines`, `lines_per_s`, `mib_per_s` (protected data
//!   re-hashed per simulated second, parallel path), `intact`, `tampered`,
//!   plus the epoch-based incremental pass over a small delta of freshly
//!   heated lines (one of them tampered): `incremental_device_ms`,
//!   `incremental_verified` / `incremental_skipped` /
//!   `incremental_tampered`, and `incremental_reduction` (full-pass lines
//!   over incremental lines; the ≥ 10× acceptance bar).
//! * `bench = "bulk_io"` — `read_loop_device_ms` / `read_extent_device_ms`
//!   / `read_speedup`, the `write_*` triple of the same shape,
//!   `read_mib_per_s` / `write_mib_per_s` (extent path), `blocks_per_op`.
//! * `bench = "registry"` — `crawl_device_ms` (per-block
//!   [`sero_core::device::SeroDevice::rebuild_registry_crawl`], one seek
//!   per block), `batched_device_ms` (the streamed sieve of
//!   [`sero_core::device::SeroDevice::rebuild_registry`]), `speedup`
//!   (their ratio; the ≥ 3× acceptance bar), `refresh_device_ms`
//!   (incremental [`sero_core::device::SeroDevice::refresh_registry`] on
//!   the populated registry), `lines_found`, `suspicious_blocks` (planted
//!   forged + shredded evidence), `crawl_seeks` / `batched_seeks`.
//! * `bench = "fleet"` — foreground and detection latency under
//!   fleet-coordinated scrub ([`sero_core::fleet::FleetScheduler`] over 4
//!   devices via [`sero_fs::fs::SeroFs::fleet_scrub`], staggered passes +
//!   adaptive budgets from each device's
//!   [`sero_core::device::LoadProbe`]): `p50_off_us` / `p99_off_us`
//!   (no-scrub baseline, latencies pooled across the fleet),
//!   `p50_fleet_us` / `p99_fleet_us`, `p99_fleet_over_off` (the ≤ 1.15×
//!   acceptance bar), `max_off_us` / `max_fleet_us` (worst stalls),
//!   `victim_pass_ms` (device time until the tampered+flagged member's
//!   pass completed — the fleet's detection latency) and `last_pass_ms`
//!   (until the final pass completed), `victim_finished_first` (1 iff the
//!   flagged device's pass completed before every clean peer's — the
//!   suspicion-first guarantee, asserted), `peak_active` (must stay ≤ the
//!   configured stagger ceiling, asserted), `lines_verified` (fleet-wide),
//!   `tampered` (the planted evidence, byte-identical to exclusive
//!   per-device passes, asserted).
//! * `bench = "sched"` — foreground latency under background scrub
//!   ([`sero_core::sched::ScrubScheduler`] driven through
//!   [`sero_fs::fs::SeroFs::scrub_background`] by mixed open-loop
//!   traffic): `p50_off_us` / `p99_off_us` (no scrub baseline),
//!   `p99_greedy_us` (stop-the-world pass), `p50_budgeted_us` /
//!   `p99_budgeted_us` (budgeted slices), `p99_budgeted_over_off` (the
//!   ≤ 2× acceptance bar) and `p99_greedy_over_off`, `max_greedy_us` /
//!   `max_budgeted_us` (worst-case stalls), `scrub_completion_greedy_ms`
//!   / `scrub_completion_budgeted_ms` (pass completion under load),
//!   `budgeted_slices` / `budgeted_throttled_ticks`, `lines_verified`,
//!   `tampered` (the planted evidence both phases must find).
//! * `bench = "server"` — the command path and the wire codec
//!   (`exp_server`). A fixed command script — creates, a read/write mix,
//!   heating, verification, and a budgeted scrub ticked to completion —
//!   travels [`sero_proto`]'s full encode → decode → `SeroFs::handle`
//!   round trip: `commands`, `wire_bytes` / `request_bytes` /
//!   `response_bytes`, `bytes_per_command`, `framing_overhead_ppm` (the
//!   14-byte frame header+CRC each way), `replay_device_ms` and
//!   `commands_per_device_s` (simulated device clock), `scrub_ticks` /
//!   `scrub_throttled`, `lines_verified`, `errors` (0 by construction,
//!   asserted). The real-socket client swarm against a live
//!   `sero-server` reports under `"host"` only (`swarm_<n>` latency
//!   tails) — wall clock never gates CI.
//! * `bench = "reactor"` — the PR 9 readiness-driven wire server
//!   (`exp_reactor`): the `exp_concurrency` read script replayed at
//!   ready-set sizes 1/2/4/8/16, each window encoded to wire frames, fed
//!   through [`sero_proto::frame::FrameAssembler`] in deterministically
//!   varied chunk sizes, and dispatched as a single
//!   [`sero_fs::concurrent::ConcurrentFs::handle_batch`] combining
//!   window: `ready_{1,2,4,8,16}_device_ms`, `throughput_x{2,4,8,16}`
//!   (`throughput_x8` carries the ≥ 2.5× acceptance bar, asserted),
//!   `sim_depth8_ops_per_device_s` (the simulated admission curve the
//!   host swarm must track), `frames_reassembled` / `reassembly_chunks`
//!   (chunked-delivery work proof), `wire_script_commands` and
//!   `responses_identical` (1 iff an identical command script —
//!   including a raw-write tamper and the verify that detects it —
//!   answers byte-for-byte the same over real sockets against a
//!   pool-mode daemon and a reactor daemon, asserted), `tampered` (the
//!   framed tamper drill's evidence, asserted). Real reactor swarms at
//!   1/2/4/8/16 clients plus an idle-connection axis (0/128/256 silent
//!   sockets held open alongside 8 active clients) report under
//!   `"host"` only — but the binary itself **asserts**
//!   `host.tracking.ratio ≥ 0.8` (the 8-client swarm's ops per
//!   *device*-second against `sim_depth8_ops_per_device_s`), so a
//!   reactor that stops forming deep combining windows fails the
//!   regeneration run even though the compare step never reads
//!   `"host"`. The `reactor_trace.json` latency tails are uploaded for
//!   humans and never compared.
//! * `bench = "concurrency"` — the PR 7 concurrent foreground core
//!   (`exp_concurrency`): one shuffled read script replayed against
//!   identical file systems at queue depths 1/2/4/8 through
//!   [`sero_fs::concurrent::ConcurrentFs::handle_batch`], where depth 1
//!   *is* the old global-mutex schedule and deeper queues let
//!   [`sero_core::admission`] coalesce reads into elevator sweeps:
//!   `depth_{1,2,4,8}_device_ms`, `throughput_x2` / `throughput_x4` /
//!   `throughput_x8` (depth-1 device time over depth-N; `throughput_x8`
//!   carries the ≥ 2.5× acceptance bar, asserted), `reads_merged_at_8` /
//!   `blocks_deduped_at_8` (admission-scheduler work proof), plus the
//!   scrub-interleaving phase — a budgeted pass ticking between read
//!   batches with one line tampered mid-workload, replayed serialized:
//!   `scrub_depth8_device_ms` / `scrub_serial_device_ms`,
//!   `scrub_ticks_depth8` / `scrub_ticks_serial`, `lines_verified`,
//!   `tampered` (exactly the planted line, asserted) and
//!   `evidence_identical` (1 iff responses, verdicts, and the sorted
//!   line registry are byte-identical across schedules, asserted). The
//!   8-thread swarm against a real `ConcurrentFs` vs a
//!   `Mutex<SeroFs>` reports under `"host"` only.
//! * `bench = "faults"` — bounded degradation under a calibrated
//!   transient-fault rate (`exp_faults`): two clones of one populated
//!   file system replay identical mixed traffic, one with a seeded
//!   [`sero_probe::faults::FaultPlan`] armed (transient read faults
//!   absorbed by the device retry budget, correctable write dots, sled
//!   stalls), then each runs a full scrub pass:
//!   `p50_clean_us` / `p99_clean_us` / `p50_faulted_us` /
//!   `p99_faulted_us`, `p99_faulted_over_clean` and
//!   `scrub_faulted_over_clean` (both carry the ≤ 2× acceptance bar,
//!   asserted), `scrub_clean_ms` / `scrub_faulted_ms`, the fired fault
//!   counts `read_faults` / `write_faults` / `stalls` (nonzero,
//!   asserted — the calibration proof), `quarantined` (0, asserted:
//!   transient faults never reach quarantine), `lines_verified`,
//!   `tampered` (0; namespaces, bytes, and line registries are
//!   asserted identical to the fault-free twin).
//! * `bench = "metadata"` — namespace scale on the PR 10 LSM index
//!   (`exp_metadata`): a [`sero_index::MetaIndex`] bulk-load sweep at
//!   4k/16k/64k entries (1M too outside fast mode) over a counted
//!   [`sero_index::VecStore`], a tamper byte-identity workload replayed
//!   on pre-index and indexed [`sero_fs::fs::FsConfig`] layouts with
//!   identical data geometry, and a 10k-name listing paged through
//!   `handle` + [`sero_proto::frame::encode_response`]:
//!   `open_reads_{4k,16k,64k}` (page reads to reopen the index — equal
//!   at every scale, the constant-mount-cost bar, asserted),
//!   `lookup_avg_reads_{4k,16k,64k}` and `lookup_growth` (average point
//!   -lookup page reads and their top-over-base ratio; the sublinearity
//!   bar — ≤ 4× across a 16×/256× namespace growth — asserted),
//!   `bloom_skips_{4k,16k,64k}` (segment probes pruned by the bloom
//!   filters), `tamper_identical` (1 iff every verify verdict, digest,
//!   timestamp, and protected line byte matches across the two
//!   layouts, asserted) and `tampered_found` (exactly the planted §5
//!   rewrite, asserted), `list_frames` (≥ 2, asserted: a 10k-name
//!   listing must paginate), `max_frame_bytes` (every frame under the
//!   1 MiB cap, asserted), `names_listed`, and `fs10k_mount_reads`
//!   (sector reads to remount the 10k-file system — bounded by the
//!   metadata regions, never per-inode probing, asserted). The full
//!   (non-fast) run adds the `_1m` keys; the committed baseline is the
//!   fast set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use sero_fs::alloc::WriteClass;
use sero_fs::fs::SeroFs;
use sero_workload::Op;

/// True when `SERO_BENCH_FAST` asks for reduced-size bench runs (the CI
/// smoke/baseline mode). Mirrors the criterion shim's switch.
pub fn fast_mode() -> bool {
    std::env::var_os("SERO_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Where a `BENCH_<name>.json` document should be written: the directory
/// named by `SERO_BENCH_OUT_DIR`, defaulting to the current directory.
pub fn bench_out_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::var_os("SERO_BENCH_OUT_DIR").unwrap_or_else(|| ".".into());
    std::path::PathBuf::from(dir).join(format!("BENCH_{name}.json"))
}

/// Where a non-compared artifact (e.g. the `exp_sched` scheduler trace)
/// should be written: same directory rules as [`bench_out_path`], but the
/// file name is taken verbatim so the `BENCH_*.json` namespace stays
/// reserved for comparable baselines.
pub fn trace_out_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::var_os("SERO_BENCH_OUT_DIR").unwrap_or_else(|| ".".into());
    std::path::PathBuf::from(dir).join(name)
}

/// The current device-clock time of a file system, ns.
pub fn device_clock_ns(fs: &SeroFs) -> u128 {
    fs.device().probe().clock().elapsed_ns()
}

/// Idles `fs`'s device forward to `target_ns` on its own clock (no-op
/// when the clock is already past it) — the open-loop experiment
/// drivers' "wait for the next arrival".
pub fn idle_device_until(fs: &mut SeroFs, target_ns: u128) {
    let now = device_clock_ns(fs);
    if target_ns > now {
        fs.device_mut()
            .probe_mut()
            .advance_clock((target_ns - now) as u64);
    }
}

/// The `p`-th percentile (`0 < p ≤ 1`) of a latency sample, by the
/// ceil-index convention the committed `BENCH_sched.json` /
/// `BENCH_fleet.json` percentiles were generated with — shared so the
/// two baselines can never silently disagree about what "p99" means.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn percentile_ns(latencies: &[u128], p: f64) -> u128 {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Nanoseconds to microseconds, for the `*_us` metric keys.
pub fn ns_to_us(ns: u128) -> f64 {
    ns as f64 / 1e3
}

/// Prints a row of fixed-width cells.
pub fn row(cells: &[&str], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:<width$} "));
    }
    out.trim_end().to_string()
}

/// Renders `values` as a one-line unicode sparkline.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Downsamples `values` to at most `n` points by block averaging.
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.len() <= n {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(n);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Replay statistics from [`apply_ops`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Operations applied successfully.
    pub applied: u64,
    /// Operations refused by the file system (e.g. writes to heated
    /// files) — the workload generator avoids these, so normally 0.
    pub refused: u64,
}

/// Replays a workload stream against `fs`.
///
/// # Panics
///
/// Panics on unexpected file-system errors (the experiment devices are
/// sized so the workloads fit).
pub fn apply_ops(fs: &mut SeroFs, ops: &[Op], timestamp: u64) -> ReplayStats {
    let mut stats = ReplayStats::default();
    for op in ops {
        let outcome = match op {
            Op::Create {
                name,
                data,
                archival,
            } => {
                let class = if *archival {
                    WriteClass::Archival
                } else {
                    WriteClass::Normal
                };
                fs.create(name, data, class).map(|_| ())
            }
            Op::Overwrite { name, data } => fs.write(name, data, WriteClass::Normal),
            Op::Delete { name } => fs.remove(name),
            Op::Read { name } => fs.read(name).map(|_| ()),
            Op::Heat { name, metadata } => fs.heat(name, metadata.clone(), timestamp).map(|_| ()),
        };
        match outcome {
            Ok(()) => stats.applied += 1,
            Err(sero_fs::error::FsError::ReadOnlyFile { .. }) => stats.refused += 1,
            Err(e) => panic!("workload op failed: {e} ({op:?})"),
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_core::device::SeroDevice;
    use sero_fs::fs::FsConfig;
    use sero_workload::{AuditLogWorkload, Workload};

    #[test]
    fn sparkline_shapes() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn downsample_preserves_level() {
        let data: Vec<f64> = (0..100).map(|_| 5.0).collect();
        let ds = downsample(&data, 10);
        assert!(ds.len() <= 10);
        assert!(ds.iter().all(|&v| (v - 5.0).abs() < 1e-9));
    }

    #[test]
    fn replay_runs_clean() {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::default()).unwrap();
        let ops = AuditLogWorkload::small().ops(5);
        let stats = apply_ops(&mut fs, &ops, 0);
        assert_eq!(stats.refused, 0);
        assert_eq!(stats.applied as usize, ops.len());
    }

    #[test]
    fn row_formats() {
        assert_eq!(row(&["a", "bb"], &[3, 3]), "a   bb");
    }

    #[test]
    fn percentile_uses_the_ceil_index_convention() {
        let sample: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile_ns(&sample, 0.50), 50);
        assert_eq!(percentile_ns(&sample, 0.99), 99);
        assert_eq!(percentile_ns(&sample, 1.0), 100);
        assert_eq!(percentile_ns(&[42], 0.99), 42);
        // Order-insensitive: the helper sorts its own copy.
        assert_eq!(percentile_ns(&[9, 1, 5], 0.5), 5);
    }
}
