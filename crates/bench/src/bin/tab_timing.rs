//! TAB-ERB — Operation timing relations, measured on the simulated clock.
//!
//! Paper §3: "The erb operation is at least 5 times slower than mrb, and
//! ewb is also slower than mwb because of the local heating process.
//! Therefore … the idea is to use the erb and ewb operations sparingly."

use sero_core::prelude::*;
use sero_probe::device::ProbeDevice;

fn time_of<F: FnOnce(&mut ProbeDevice)>(dev: &mut ProbeDevice, f: F) -> u128 {
    let before = dev.clock().elapsed_ns();
    f(dev);
    dev.clock().elapsed_ns() - before
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TAB-ERB: simulated operation timings (64-probe array, 1 µs/bit channel)\n");

    let mut dev = ProbeDevice::builder().blocks(64).build();
    dev.mws(0, &[1u8; 512])?;

    // Bit operations.
    let t_mrb = time_of(&mut dev, |d| {
        d.mrb(0);
    });
    let t_mwb = time_of(&mut dev, |d| {
        d.mwb(0, true);
    });
    let t_erb = time_of(&mut dev, |d| {
        d.erb(0);
    });
    let t_ewb = time_of(&mut dev, |d| {
        d.ewb(5000);
    });

    println!("bit operations:");
    println!("{:>8} {:>12} {:>14}", "op", "time [µs]", "ratio vs mrb");
    for (name, t) in [
        ("mrb", t_mrb),
        ("mwb", t_mwb),
        ("erb", t_erb),
        ("ewb", t_ewb),
    ] {
        println!(
            "{:>8} {:>12.1} {:>14.1}",
            name,
            t as f64 / 1e3,
            t as f64 / t_mrb as f64
        );
    }

    // Sector operations.
    dev.mws(1, &[2u8; 512])?;
    let t_mrs = time_of(&mut dev, |d| {
        d.mrs(1).unwrap();
    });
    let t_mws = time_of(&mut dev, |d| {
        d.mws(2, &[3u8; 512]).unwrap();
    });
    let t_ews = time_of(&mut dev, |d| {
        d.ews(3, &vec![true; 256]).unwrap(); // a 256-bit hash
    });
    let t_ers = time_of(&mut dev, |d| {
        d.ers(3).unwrap();
    });

    println!("\nsector operations:");
    println!("{:>8} {:>12} {:>14}", "op", "time [µs]", "ratio vs mrs");
    for (name, t) in [
        ("mrs", t_mrs),
        ("mws", t_mws),
        ("ers", t_ers),
        ("ews", t_ews),
    ] {
        println!(
            "{:>8} {:>12.1} {:>14.1}",
            name,
            t as f64 / 1e3,
            t as f64 / t_mrs as f64
        );
    }

    // Ablation: the §3 alternative — elliptic dots with direct in-plane
    // reads instead of the five-step protocol.
    let mut elliptic = ProbeDevice::builder()
        .blocks(8)
        .pitch_nm(150.0)
        .elliptic_dots()
        .build();
    elliptic.ews(3, &vec![true; 256])?;
    let t_ers_protocol = time_of(&mut elliptic, |d| {
        d.ers(3).unwrap();
    });
    let t_ers_direct = time_of(&mut elliptic, |d| {
        d.ers_direct(3).unwrap();
    });
    println!("\nelliptic-dot ablation (150 nm pitch: 2.25x density cost):");
    println!("{:>16} {:>12}", "ers (5-step)", "ers (direct)");
    println!(
        "{:>13.1} µs {:>9.1} µs   ({:.1}x faster)",
        t_ers_protocol as f64 / 1e3,
        t_ers_direct as f64 / 1e3,
        t_ers_protocol as f64 / t_ers_direct as f64
    );

    // Heat-a-line at several orders.
    println!("\nheat-a-line (hash 256 bits burned electrically):");
    println!(
        "{:>8} {:>10} {:>14} {:>16}",
        "order", "blocks", "time [ms]", "per data block"
    );
    for order in 1..=5u32 {
        let mut sdev = SeroDevice::with_blocks(64);
        let line = Line::new(0, order)?;
        for pba in line.data_blocks() {
            sdev.write_block(pba, &[7u8; 512])?;
        }
        let before = sdev.probe().clock().elapsed_ns();
        sdev.heat_line(line, vec![], 0)?;
        let t = sdev.probe().clock().elapsed_ns() - before;
        println!(
            "{:>8} {:>10} {:>14.2} {:>13.2} ms",
            order,
            line.len(),
            t as f64 / 1e6,
            t as f64 / 1e6 / line.data_len() as f64
        );
    }

    println!("\npaper-vs-measured:");
    println!(
        "  'erb at least 5x slower than mrb' -> {:.1}x : {}",
        t_erb as f64 / t_mrb as f64,
        if t_erb >= 5 * t_mrb {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'ewb slower than mwb'             -> {:.0}x : {}",
        t_ewb as f64 / t_mwb as f64,
        if t_ewb > t_mwb {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'use ewb sparingly' (ews/mws)     -> {:.0}x : {}",
        t_ews as f64 / t_mws as f64,
        if t_ews > 10 * t_mws {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
