//! FIG2 — The state transitions of one bit, checked exhaustively.
//!
//! The paper's Figure 2 diagram: states 0, 1 and H; `mwb` moves freely
//! between 0 and 1; `ewb` moves one-way into H; `mwb` on H loops; `mrb`
//! on H is random. This binary enumerates *every* operation sequence up
//! to length 6 and checks the reached state against the diagram's
//! prediction, then reports the transition table.

use sero_media::dot::{DotArray, DotState};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Mwb0,
    Mwb1,
    Ewb,
}

/// Figure 2 as a pure function.
fn predict(state: DotState, op: Op) -> DotState {
    match (state, op) {
        (DotState::Heated, _) => DotState::Heated,
        (_, Op::Ewb) => DotState::Heated,
        (_, Op::Mwb0) => DotState::Down,
        (_, Op::Mwb1) => DotState::Up,
    }
}

fn main() {
    println!("FIG2: bit state machine — exhaustive check\n");
    println!("transition table (rows: state, cols: operation):");
    println!("{:>8} {:>8} {:>8} {:>8}", "", "mwb 0", "mwb 1", "ewb");
    for state in [DotState::Down, DotState::Up, DotState::Heated] {
        println!(
            "{:>8} {:>8} {:>8} {:>8}",
            state.to_string(),
            predict(state, Op::Mwb0).to_string(),
            predict(state, Op::Mwb1).to_string(),
            predict(state, Op::Ewb).to_string(),
        );
    }

    // Exhaustive sequences.
    let ops = [Op::Mwb0, Op::Mwb1, Op::Ewb];
    let mut sequences = 0u64;
    let mut mismatches = 0u64;
    let max_len = 6;
    let mut stack: Vec<Vec<Op>> = vec![vec![]];
    while let Some(seq) = stack.pop() {
        if seq.len() < max_len {
            for &op in &ops {
                let mut next = seq.clone();
                next.push(op);
                stack.push(next);
            }
        }
        if seq.is_empty() {
            continue;
        }
        sequences += 1;
        // Run on the simulated dot.
        let mut dots = DotArray::new(1);
        for &op in &seq {
            match op {
                Op::Mwb0 => {
                    dots.write_mag(0, false);
                }
                Op::Mwb1 => {
                    dots.write_mag(0, true);
                }
                Op::Ewb => {
                    dots.heat(0);
                }
            }
        }
        // Predict with the diagram.
        let mut predicted = DotState::Down;
        for &op in &seq {
            predicted = predict(predicted, op);
        }
        if dots.state(0) != predicted {
            mismatches += 1;
        }
    }
    println!("\nchecked {sequences} operation sequences up to length {max_len}");
    println!("mismatches against Figure 2: {mismatches}");
    println!(
        "\npaper-vs-measured: 'ewb is an irreversible process' -> {}",
        if mismatches == 0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    assert_eq!(mismatches, 0);
}
