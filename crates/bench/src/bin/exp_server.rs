//! EXP-SERVER — the command path and the wire, measured.
//!
//! PR 6 put one door on the stack: every deployment drives
//! [`sero_fs::fs::SeroFs::handle`] with a [`sero_proto::Request`], and
//! `sero-server` serves that door over TCP frames. This experiment
//! measures both halves:
//!
//! * **Deterministic replay** (the compared `"metrics"`): a fixed command
//!   script — creates, a read/write mix, heating, verification, and a
//!   budgeted scrub driven tick-by-tick — is encoded to wire frames,
//!   decoded back, and handled, exactly the round trip a served request
//!   takes minus the socket. Everything here derives from the simulated
//!   device clock and fixed payload sizes, so the numbers reproduce
//!   byte-for-byte on any host: wire bytes per command, frame overhead,
//!   device milliseconds, scrub slice counts.
//! * **Client swarm** (the informational `"host"`): a real `sero-server`
//!   on loopback with its shared-queue pool, hammered by 1–8 concurrent
//!   `sero-client` connections. Wall-clock per-op latency tails and
//!   throughput land under `"host"`, which `bench_compare` never reads —
//!   real sockets do not reproduce across machines.
//!
//! Emits `BENCH_server.json` (schema `sero-bench/v1`, compared
//! **blocking** in CI) and `server_trace.json` (per-swarm latency tails;
//! uploaded as a CI artifact, never compared). `SERO_BENCH_FAST=1`
//! shrinks only the swarm — the deterministic replay is identical in both
//! modes.

use sero_bench::json::Json;
use sero_bench::{
    bench_out_path, device_clock_ns, fast_mode, ns_to_us as us, percentile_ns as percentile, row,
    trace_out_path,
};
use sero_client::SeroClient;
use sero_core::device::SeroDevice;
use sero_fs::fs::{FsConfig, SeroFs};
use sero_proto::frame::{decode_frame, encode_request, encode_response};
use sero_proto::{Request, Response, WireClass, WireSchedState};
use sero_server::{SeroServer, ServerConfig};
use std::time::Instant;

/// Archival files frozen (and later verified) by the replay script.
const ARCHIVAL_FILES: usize = 24;
const ARCHIVAL_BYTES: usize = 1200;

/// Hot WMRM files rewritten by the mixed phase.
const HOT_FILES: usize = 8;
const HOT_BYTES: usize = 600;

/// Mixed read/overwrite commands between population and freezing.
const MIXED_OPS: usize = 60;

/// Budgeted scrub grant: 0.2 ms of device time per 1 ms quantum.
const SCRUB_BUDGET_NS: u64 = 200_000;
const SCRUB_QUANTUM_NS: u64 = 1_000_000;

/// Tracks one command's trip through the full wire codec.
struct Replay {
    fs: SeroFs,
    commands: u64,
    request_bytes: u64,
    response_bytes: u64,
    errors: u64,
}

impl Replay {
    /// Encodes `req` to a frame, decodes it back (the server's receive
    /// path), handles it, and frames the response (the send path).
    fn call(&mut self, req: &Request) -> Response {
        let framed = encode_request(req).expect("bench request fits a frame");
        let (_, payload, _) = decode_frame(&framed).expect("own frame decodes");
        let decoded = Request::decode(payload).expect("own payload decodes");
        let response = self.fs.handle(decoded);
        let response_frame = encode_response(&response).expect("bench response fits a frame");
        self.commands += 1;
        self.request_bytes += framed.len() as u64;
        self.response_bytes += response_frame.len() as u64;
        if matches!(response, Response::Error(_)) {
            self.errors += 1;
        }
        response
    }
}

/// The deterministic command script; returns (replay, scrub ticks,
/// throttled ticks).
fn run_replay() -> (Replay, u64, u64) {
    let fs = SeroFs::format(SeroDevice::with_blocks(4096), FsConfig::default())
        .expect("format succeeds");
    let mut replay = Replay {
        fs,
        commands: 0,
        request_bytes: 0,
        response_bytes: 0,
        errors: 0,
    };

    // Populate: archival payloads that will freeze, hot files that churn.
    for i in 0..ARCHIVAL_FILES {
        replay.call(&Request::Create {
            name: format!("archive-{i:04}"),
            data: vec![i as u8 + 1; ARCHIVAL_BYTES],
            class: WireClass::Archival,
        });
    }
    for i in 0..HOT_FILES {
        replay.call(&Request::Create {
            name: format!("hot-{i:02}"),
            data: vec![0xA0 | i as u8; HOT_BYTES],
            class: WireClass::Normal,
        });
    }

    // Mixed traffic: alternating archival reads and hot overwrites.
    for i in 0..MIXED_OPS {
        if i % 2 == 0 {
            replay.call(&Request::Read {
                name: format!("archive-{:04}", i % ARCHIVAL_FILES),
            });
        } else {
            replay.call(&Request::Write {
                name: format!("hot-{:02}", i % HOT_FILES),
                data: vec![i as u8; HOT_BYTES],
                class: WireClass::Normal,
            });
        }
    }

    // Freeze history, then audit it.
    for i in 0..ARCHIVAL_FILES {
        replay.call(&Request::Heat {
            name: format!("archive-{i:04}"),
            metadata: b"exp-server freeze".to_vec(),
            timestamp: 1_199_145_600 + i as u64,
        });
    }
    for i in 0..ARCHIVAL_FILES {
        let resp = replay.call(&Request::Verify {
            name: format!("archive-{i:04}"),
        });
        assert!(
            matches!(resp, Response::Verified(_)),
            "clean replay must verify intact: {resp:?}"
        );
    }
    replay.call(&Request::list_all());
    replay.call(&Request::FleetStatus);

    // A budgeted scrub pass driven entirely over the command path, the
    // way a remote operator ticks a daemon.
    replay.call(&Request::ScrubStart {
        budget_ns: SCRUB_BUDGET_NS,
        quantum_ns: SCRUB_QUANTUM_NS,
        incremental: true,
    });
    let mut ticks = 0u64;
    let mut throttled = 0u64;
    loop {
        ticks += 1;
        assert!(ticks < 10_000, "wire-driven scrub failed to converge");
        match replay.call(&Request::ScrubTick) {
            Response::ScrubTicked { outcome, status } => {
                if matches!(outcome, sero_proto::WireSliceOutcome::Throttled { .. }) {
                    throttled += 1;
                }
                if status.state == WireSchedState::Complete {
                    assert_eq!(status.verified as usize, ARCHIVAL_FILES);
                    assert_eq!(status.tampered, 0);
                    break;
                }
            }
            other => panic!("scrub tick refused: {other:?}"),
        }
    }
    assert_eq!(replay.errors, 0, "the script is error-free by design");
    (replay, ticks, throttled)
}

/// One client's share of the swarm: create its own file, then an
/// alternating read/ping loop, each op timed individually.
fn swarm_client(addr: std::net::SocketAddr, id: usize, ops: usize) -> Vec<u128> {
    let mut client = SeroClient::connect(addr).expect("connect");
    let name = format!("swarm-{id:02}");
    client
        .create(&name, &vec![id as u8 + 1; 700], WireClass::Normal)
        .expect("create");
    let mut latencies = Vec::with_capacity(ops);
    for i in 0..ops {
        let t = Instant::now();
        if i % 2 == 0 {
            client.read(&name).expect("read");
        } else {
            client.ping().expect("ping");
        }
        latencies.push(t.elapsed().as_nanos());
    }
    latencies
}

struct SwarmResult {
    clients: usize,
    latencies: Vec<u128>,
    wall_ms: f64,
}

/// Runs one swarm of `clients` concurrent connections against a fresh
/// daemon.
fn run_swarm(clients: usize, ops_per_client: usize) -> SwarmResult {
    let fs = SeroFs::format(SeroDevice::with_blocks(4096), FsConfig::default())
        .expect("format succeeds");
    let server = SeroServer::bind("127.0.0.1:0", fs, ServerConfig::default()).expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    let wall = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| std::thread::spawn(move || swarm_client(addr, c, ops_per_client)))
        .collect();
    let latencies: Vec<u128> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    handle.shutdown();
    SwarmResult {
        clients,
        latencies,
        wall_ms,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let swarm_sizes: &[usize] = if fast { &[2, 8] } else { &[1, 2, 4, 8] };
    let ops_per_client = if fast { 40 } else { 120 };

    println!(
        "EXP-SERVER: replay {} archival + {} hot files, swarms {:?} x {} ops{}\n",
        ARCHIVAL_FILES,
        HOT_FILES,
        swarm_sizes,
        ops_per_client,
        if fast { " (fast mode)" } else { "" },
    );

    // --- deterministic wire replay ---------------------------------------
    let host_replay = Instant::now();
    let (replay, scrub_ticks, scrub_throttled) = run_replay();
    let replay_host_ms = host_replay.elapsed().as_secs_f64() * 1e3;
    let replay_device_ns = device_clock_ns(&replay.fs);
    let replay_device_ms = replay_device_ns as f64 / 1e6;
    let wire_bytes = replay.request_bytes + replay.response_bytes;
    let bytes_per_command = wire_bytes as f64 / replay.commands as f64;
    // 14 framing bytes each way per command.
    let overhead_ppm = (replay.commands * 2 * 14) as f64 / wire_bytes as f64 * 1e6;
    let commands_per_device_s = replay.commands as f64 / (replay_device_ns as f64 / 1e9);

    println!(
        "  replay: {} commands, {:.1} KiB on the wire ({:.1} B/command, {:.0} ppm framing), \
         {replay_device_ms:.2} ms device time",
        replay.commands,
        wire_bytes as f64 / 1024.0,
        bytes_per_command,
        overhead_ppm,
    );
    println!(
        "  scrub over the wire: {scrub_ticks} ticks ({scrub_throttled} throttled), \
         {ARCHIVAL_FILES} lines verified\n"
    );

    // --- client swarms ----------------------------------------------------
    let swarms: Vec<SwarmResult> = swarm_sizes
        .iter()
        .map(|&n| run_swarm(n, ops_per_client))
        .collect();

    let widths = [10, 8, 12, 12, 12, 12];
    println!(
        "{}",
        row(&["clients", "ops", "p50", "p99", "max", "ops/s"], &widths)
    );
    for s in &swarms {
        let p50 = percentile(&s.latencies, 0.50);
        let p99 = percentile(&s.latencies, 0.99);
        let max = *s.latencies.iter().max().expect("ops");
        println!(
            "{}",
            row(
                &[
                    &format!("{}", s.clients),
                    &format!("{}", s.latencies.len()),
                    &format!("{:.0} us", us(p50)),
                    &format!("{:.0} us", us(p99)),
                    &format!("{:.0} us", us(max)),
                    &format!("{:.0}", s.latencies.len() as f64 / (s.wall_ms / 1e3)),
                ],
                &widths
            )
        );
    }

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "server")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", 4096u64)
                .set("archival_files", ARCHIVAL_FILES)
                .set("archival_bytes", ARCHIVAL_BYTES)
                .set("hot_files", HOT_FILES)
                .set("mixed_ops", MIXED_OPS)
                .set("scrub_budget_ns", SCRUB_BUDGET_NS)
                .set("scrub_quantum_ns", SCRUB_QUANTUM_NS)
                .set("ops_per_client", ops_per_client),
        )
        .set(
            "metrics",
            Json::obj()
                .set("commands", replay.commands)
                .set("wire_bytes", wire_bytes)
                .set("request_bytes", replay.request_bytes)
                .set("response_bytes", replay.response_bytes)
                .set("bytes_per_command", bytes_per_command)
                .set("framing_overhead_ppm", overhead_ppm)
                .set("replay_device_ms", replay_device_ms)
                .set("commands_per_device_s", commands_per_device_s)
                .set("scrub_ticks", scrub_ticks)
                .set("scrub_throttled", scrub_throttled)
                .set("lines_verified", ARCHIVAL_FILES)
                .set("errors", replay.errors),
        )
        .set("host", {
            let mut host = Json::obj().set("replay_ms", replay_host_ms);
            for s in &swarms {
                host = host.set(
                    &format!("swarm_{}", s.clients),
                    Json::obj()
                        .set("ops", s.latencies.len())
                        .set("p50_us", us(percentile(&s.latencies, 0.50)))
                        .set("p99_us", us(percentile(&s.latencies, 0.99)))
                        .set("wall_ms", s.wall_ms),
                );
            }
            host
        });
    let path = bench_out_path("server");
    std::fs::write(&path, doc.render())?;
    println!("\n  wrote {}", path.display());

    // Latency tails per swarm — a CI artifact for humans, never compared.
    let entries: Vec<Json> = swarms
        .iter()
        .map(|s| {
            Json::obj()
                .set("clients", s.clients)
                .set("ops", s.latencies.len())
                .set("p50_us", us(percentile(&s.latencies, 0.50)))
                .set("p90_us", us(percentile(&s.latencies, 0.90)))
                .set("p99_us", us(percentile(&s.latencies, 0.99)))
                .set("max_us", us(*s.latencies.iter().max().expect("ops")))
                .set("wall_ms", s.wall_ms)
                .set("ops_per_s", s.latencies.len() as f64 / (s.wall_ms / 1e3))
        })
        .collect();
    let trace = Json::obj()
        .set("schema", "sero-bench-trace/v1")
        .set("bench", "server")
        .set("swarms", Json::Arr(entries));
    let trace_path = trace_out_path("server_trace.json");
    std::fs::write(&trace_path, trace.render())?;
    println!("  wrote {}", trace_path.display());

    Ok(())
}
