//! EXP-FAULTS — foreground latency and scrub completion under a
//! calibrated transient-fault rate.
//!
//! PR 8's robustness claim in numbers: the bounded re-read retry that
//! absorbs transient device faults must cost *bounded* degradation, not
//! a wedge and not a cliff. Two clones of one populated file system
//! replay the identical mixed read/overwrite traffic — one fault-free,
//! one with a seeded [`sero_probe::faults::FaultPlan`] armed (transient
//! read faults, correctable write dots, sled stalls) — and then each
//! runs a full scrub pass. The fault plan is calibrated so faults
//! actually fire (asserted via `fault_stats`) while staying below the
//! quarantine threshold: every operation still answers correctly, the
//! final namespaces and registries are byte-identical, and the p99 /
//! scrub-completion inflation stays under the 2x acceptance bar.
//!
//! All compared numbers are deterministic simulated-device time: the
//! fault plan draws from its own seeded RNG stream, so the same traffic
//! meets the same faults on every host. Emits `BENCH_faults.json`
//! (schema `sero-bench/v1`, compared **blocking** in CI at ±20%).
//! `SERO_BENCH_FAST=1` shrinks the traffic stream for CI.

use sero_bench::json::Json;
use sero_bench::{
    apply_ops, bench_out_path, device_clock_ns as clock, fast_mode, ns_to_us as us,
    percentile_ns as percentile, row,
};
use sero_core::device::SeroDevice;
use sero_core::scrub::{scrub_device, ScrubConfig};
use sero_fs::fs::{FsConfig, SeroFs};
use sero_probe::faults::FaultPlan;
use sero_workload::MixedTrafficWorkload;
use std::time::Instant;

const SEED: u64 = 20080226;
const FAULT_SEED: u64 = 0xFA17_2008;

/// The calibrated transient-fault rates: high enough that a replay meets
/// hundreds of faults (the `read_faults > 0` assertion has huge margin),
/// low enough that three consecutive faults on one read — the quarantine
/// threshold under the default retry budget — is effectively impossible.
const READ_FAULT_PPM: u32 = 8_000; // 0.8% of sector reads fail once
const WRITE_FAULT_PPM: u32 = 4_000; // 0.4% of writes land 2 rotted dots
const WRITE_FAULT_DOTS: usize = 2; // well inside RS correction
const STALL_PPM: u32 = 20_000; // 2% of seeks stall the sled
const STALL_NS: u64 = 5_000_000; // 5 ms per stall

fn plan() -> FaultPlan {
    FaultPlan::none()
        .seed(FAULT_SEED)
        .transient_reads(READ_FAULT_PPM, 1)
        .transient_writes(WRITE_FAULT_PPM, WRITE_FAULT_DOTS)
        .stalls(STALL_PPM, STALL_NS)
}

/// Replays `traffic` closed-loop, returning per-op device-clock latency.
fn replay(fs: &mut SeroFs, traffic: &[sero_workload::Op]) -> Vec<u128> {
    let mut latencies = Vec::with_capacity(traffic.len());
    for op in traffic {
        let t0 = clock(fs);
        let stats = apply_ops(fs, std::slice::from_ref(op), 0);
        assert_eq!(stats.refused, 0, "steady-state traffic never refused");
        latencies.push(clock(fs) - t0);
    }
    latencies
}

/// Full scrub pass, returning (device ms, lines verified, tampered).
fn scrub(fs: &mut SeroFs) -> (f64, usize, usize) {
    let t0 = clock(fs);
    let report = scrub_device(fs.device_mut(), &ScrubConfig::default()).expect("scrub pass");
    let ms = (clock(fs) - t0) as f64 / 1e6;
    let tampered = report.tampered_lines().count();
    (ms, report.outcomes.len(), tampered)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let device_blocks: u64 = 8_192;
    let workload = MixedTrafficWorkload {
        archival_files: 96,
        archival_bytes: 5 * 1024,
        hot_files: 10,
        hot_bytes: 4 * 1024,
        operations: if fast { 160 } else { 400 },
        read_fraction: 0.7,
    };

    println!(
        "EXP-FAULTS: {} MiB device, {} heated lines, {} ops, faults {}ppm read / {}ppm write / {}ppm stall{}\n",
        device_blocks * 512 / (1024 * 1024),
        workload.archival_files,
        workload.operations,
        READ_FAULT_PPM,
        WRITE_FAULT_PPM,
        STALL_PPM,
        if fast { " (fast mode)" } else { "" },
    );

    // --- populate once, clone per phase ---------------------------------
    let host_setup = Instant::now();
    let mut base = SeroFs::format(SeroDevice::with_blocks(device_blocks), FsConfig::default())?;
    apply_ops(&mut base, &workload.setup_ops(SEED), 1_199_145_600);
    let setup_ms = host_setup.elapsed().as_secs_f64() * 1e3;
    let traffic = workload.traffic_ops(SEED);

    // --- phase 1: fault-free twin ----------------------------------------
    let mut clean = base.clone();
    let host_clean = Instant::now();
    let clean_lat = replay(&mut clean, &traffic);
    let (clean_scrub_ms, clean_lines, clean_tampered) = scrub(&mut clean);
    let clean_host_ms = host_clean.elapsed().as_secs_f64() * 1e3;

    // --- phase 2: same traffic under the armed fault plan ----------------
    let mut faulted = base.clone();
    faulted.device_mut().probe_mut().arm_faults(plan());
    let host_faulted = Instant::now();
    let faulted_lat = replay(&mut faulted, &traffic);
    let (faulted_scrub_ms, faulted_lines, faulted_tampered) = scrub(&mut faulted);
    let faulted_host_ms = host_faulted.elapsed().as_secs_f64() * 1e3;
    let stats = faulted
        .device()
        .probe()
        .fault_stats()
        .expect("plan is armed");

    // The calibration worked: faults fired, and the retry budget absorbed
    // every one of them — nothing reached quarantine, nothing degraded.
    assert!(stats.read_faults > 0, "fault plan never fired");
    assert!(stats.stalls > 0, "stall plan never fired");
    assert_eq!(faulted.device().quarantined_count(), 0);
    assert!(!faulted.is_degraded());

    // Same answers as the twin: namespace, bytes, and line registry.
    let names = clean.list();
    assert_eq!(names, faulted.list(), "namespaces diverged under faults");
    for name in &names {
        assert_eq!(
            clean.read(name).expect("clean read"),
            faulted.read(name).expect("faulted read"),
            "bytes diverged under faults: {name}"
        );
    }
    let registry = |fs: &SeroFs| -> Vec<_> {
        fs.device()
            .heated_lines()
            .map(|r| (r.line, r.flagged))
            .collect()
    };
    assert_eq!(registry(&clean), registry(&faulted));
    assert_eq!(clean_lines, faulted_lines);
    assert_eq!(clean_tampered, 0);
    assert_eq!(faulted_tampered, 0);

    let p50_clean = percentile(&clean_lat, 0.50);
    let p99_clean = percentile(&clean_lat, 0.99);
    let p50_faulted = percentile(&faulted_lat, 0.50);
    let p99_faulted = percentile(&faulted_lat, 0.99);
    let p99_ratio = p99_faulted as f64 / p99_clean as f64;
    let scrub_ratio = faulted_scrub_ms / clean_scrub_ms;

    let widths = [14, 14, 14, 16, 14];
    println!(
        "{}",
        row(
            &[
                "phase",
                "p50 latency",
                "p99 latency",
                "scrub done",
                "faults"
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "fault-free",
                &format!("{:.0} us", us(p50_clean)),
                &format!("{:.0} us", us(p99_clean)),
                &format!("{clean_scrub_ms:.1} ms"),
                "0",
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "faulted",
                &format!("{:.0} us", us(p50_faulted)),
                &format!("{:.0} us", us(p99_faulted)),
                &format!("{faulted_scrub_ms:.1} ms"),
                &format!(
                    "{}r/{}w/{}s",
                    stats.read_faults, stats.write_faults, stats.stalls
                ),
            ],
            &widths
        )
    );
    println!(
        "\n  degradation: p99 {p99_ratio:.2}x, scrub completion {scrub_ratio:.2}x (bar: <= 2x) : {}",
        if p99_ratio <= 2.0 && scrub_ratio <= 2.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "  {} lines verified both ways, 0 tampered, 0 quarantined — identical registries",
        clean_lines
    );

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "faults")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", device_blocks)
                .set("bytes", device_blocks * 512)
                .set("heated_lines", workload.archival_files)
                .set("hot_files", workload.hot_files)
                .set("operations", workload.operations)
                .set("read_fault_ppm", u64::from(READ_FAULT_PPM))
                .set("write_fault_ppm", u64::from(WRITE_FAULT_PPM))
                .set("stall_ppm", u64::from(STALL_PPM))
                .set("stall_ns", STALL_NS),
        )
        .set(
            "metrics",
            Json::obj()
                .set("p50_clean_us", us(p50_clean))
                .set("p99_clean_us", us(p99_clean))
                .set("p50_faulted_us", us(p50_faulted))
                .set("p99_faulted_us", us(p99_faulted))
                .set("p99_faulted_over_clean", p99_ratio)
                .set("scrub_clean_ms", clean_scrub_ms)
                .set("scrub_faulted_ms", faulted_scrub_ms)
                .set("scrub_faulted_over_clean", scrub_ratio)
                .set("read_faults", stats.read_faults)
                .set("write_faults", stats.write_faults)
                .set("stalls", stats.stalls)
                .set("quarantined", faulted.device().quarantined_count())
                .set("lines_verified", clean_lines)
                .set("tampered", faulted_tampered),
        )
        .set(
            "host",
            Json::obj()
                .set("setup_ms", setup_ms)
                .set("clean_ms", clean_host_ms)
                .set("faulted_ms", faulted_host_ms),
        );
    let path = bench_out_path("faults");
    std::fs::write(&path, doc.render())?;
    println!("  wrote {}", path.display());

    assert!(
        p99_ratio <= 2.0,
        "transient faults inflated foreground p99 by {p99_ratio:.2}x (> 2x bar)"
    );
    assert!(
        scrub_ratio <= 2.0,
        "transient faults inflated scrub completion by {scrub_ratio:.2}x (> 2x bar)"
    );
    Ok(())
}
