//! EXP-CONCURRENCY — queue depth against the single-mutex baseline.
//!
//! PR 7 made the command path re-entrant: `sero-server` workers share one
//! [`ConcurrentFs`], whose combiner drains staged requests through the
//! admission scheduler ([`sero_core::admission`]) instead of serializing
//! every caller on a global file-system mutex. This experiment measures
//! what that buys on the only axis a one-sled device has — **device
//! time** — and proves it costs nothing on the axis that matters most,
//! the tamper evidence.
//!
//! * **Depth sweep** (the compared `"metrics"`): the same shuffled read
//!   script replays against identical file systems at queue depths 1, 2,
//!   4 and 8 ([`ConcurrentFs::handle_batch`] models `n` clients arriving
//!   within one combining window). Depth 1 *is* the old global-mutex
//!   schedule: one op per batch, nothing to merge. Deeper queues let the
//!   admission scheduler coalesce reads into elevator sweeps; the sweep's
//!   simulated device nanoseconds are the metric. `throughput_x8` — the
//!   depth-1 over depth-8 device time — is asserted **≥ 2.5×**, the PR's
//!   acceptance bar. Every depth must produce byte-identical responses.
//! * **Scrub interleaving**: a budgeted scrub pass ticks between read
//!   batches at depth 8, with one heated line tampered mid-workload. The
//!   identical request sequence replays serialized (depth 1); both runs
//!   must find the planted evidence, answer every read and verify
//!   byte-identically, and finish with byte-identical line registries —
//!   the "evidence ≡ serialized schedule" invariant, asserted here on
//!   top of the `concurrency_props` proptests.
//! * **Thread swarm** (the informational `"host"`): 8 real threads
//!   hammering one `ConcurrentFs` versus the same workload behind a
//!   plain `Mutex<SeroFs>` — wall-clock ops/s, never compared in CI.
//!
//! Emits `BENCH_concurrency.json` (schema `sero-bench/v1`, compared
//! **blocking** in CI). `SERO_BENCH_FAST=1` shrinks only the host swarm —
//! the deterministic phases are identical in both modes.

use sero_bench::json::Json;
use sero_bench::{bench_out_path, device_clock_ns, fast_mode, row};
use sero_core::device::{LineRecord, SeroDevice};
use sero_fs::concurrent::ConcurrentFs;
use sero_fs::fs::{FsConfig, SeroFs};
use sero_proto::{ErrorCode, Request, Response, WireClass, WireSchedState};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Small hot files: one data block each, so the depth sweep is dominated
/// by head movement (the thing queue depth can actually save) rather
/// than by streaming the payloads themselves.
const HOT_FILES: usize = 384;
const HOT_BYTES: usize = 400;

/// Archival files heated (and one tampered) for the scrub phase.
const ARCHIVE_FILES: usize = 16;
const ARCHIVE_BYTES: usize = 1100;

/// Reads in the depth-sweep script.
const SWEEP_OPS: usize = 192;

/// Device-time budget per scrub slice in the interleaved phase.
const SCRUB_BUDGET_NS: u64 = 300_000;

const DEVICE_BLOCKS: u64 = 8192;

/// Deterministic shuffle source.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn hot_name(i: usize) -> String {
    format!("hot-{i:03}")
}

fn archive_name(i: usize) -> String {
    format!("arch-{i:02}")
}

/// A fresh file system with the benchmark population: hot single-block
/// files spread along the log, plus the archival set for the scrub phase.
fn build_fs() -> ConcurrentFs {
    let fs = SeroFs::format(SeroDevice::with_blocks(DEVICE_BLOCKS), FsConfig::default())
        .expect("format succeeds");
    let cfs = ConcurrentFs::new(fs);
    for i in 0..HOT_FILES {
        let resp = cfs.handle(Request::Create {
            name: hot_name(i),
            data: vec![i as u8 + 1; HOT_BYTES],
            class: WireClass::Normal,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    for i in 0..ARCHIVE_FILES {
        let resp = cfs.handle(Request::Create {
            name: archive_name(i),
            data: vec![0x40 | i as u8; ARCHIVE_BYTES],
            class: WireClass::Archival,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    cfs
}

/// The shuffled read script every depth replays identically.
fn read_script(ops: usize) -> Vec<Request> {
    let mut lcg = Lcg(0x5EC0_2008);
    (0..ops)
        .map(|_| Request::Read {
            name: hot_name((lcg.next() % HOT_FILES as u64) as usize),
        })
        .collect()
}

/// Replays `script` at the given queue depth; returns (device ns,
/// responses, merged reads, deduplicated blocks).
fn run_depth(depth: usize, script: &[Request]) -> (u128, Vec<Response>, u64, u64) {
    let cfs = build_fs();
    // Population leaves the sled at the log head, far past the hot set.
    // Park it at track 0 so every depth starts from the same resting
    // position and the metric measures the steady-state schedule, not one
    // shared warm-up seek.
    cfs.with_fs(|fs| fs.device_mut().probe_mut().park_at(0));
    let start = cfs.with_fs(|fs| device_clock_ns(fs));
    let mut responses = Vec::with_capacity(script.len());
    for window in script.chunks(depth) {
        responses.extend(cfs.handle_batch(window.to_vec()));
    }
    let elapsed = cfs.with_fs(|fs| device_clock_ns(fs)) - start;
    let stats = cfs.admission_stats();
    (elapsed, responses, stats.reads_merged, stats.blocks_deduped)
}

/// One scrub-interleaved replay at the given depth: heat the archive,
/// tamper one line raw, start a budgeted pass, then alternate read
/// windows with scrub ticks until the pass completes. Returns the
/// foreground responses, the post-scrub verify responses, the final
/// registry, the tick count, and the phase's device ns.
fn run_scrub_phase(
    depth: usize,
    script: &[Request],
) -> (Vec<Response>, Vec<Response>, Vec<LineRecord>, u64, u128) {
    let cfs = build_fs();
    let mut lines = Vec::new();
    for i in 0..ARCHIVE_FILES {
        match cfs.handle(Request::Heat {
            name: archive_name(i),
            metadata: b"exp-concurrency".to_vec(),
            timestamp: 1_199_145_600 + i as u64,
        }) {
            Response::Heated { line } => lines.push(line.to_line().expect("wire line")),
            other => panic!("heat refused: {other:?}"),
        }
    }
    // The §5 insider rewrites one protected block through the raw probe.
    cfs.with_fs(|fs| {
        fs.device_mut()
            .probe_mut()
            .mws(lines[ARCHIVE_FILES / 2].start() + 1, &[0xEE; 512])
            .expect("raw write");
    });
    cfs.with_fs(|fs| fs.device_mut().probe_mut().park_at(0));
    let start = cfs.with_fs(|fs| device_clock_ns(fs));
    match cfs.handle(Request::ScrubStart {
        budget_ns: SCRUB_BUDGET_NS,
        quantum_ns: 0,
        incremental: false,
    }) {
        Response::ScrubStarted { pending, .. } => assert_eq!(pending as usize, ARCHIVE_FILES),
        other => panic!("scrub start refused: {other:?}"),
    }

    let mut responses = Vec::new();
    let mut ticks = 0u64;
    let mut cursor = 0usize;
    loop {
        let window: Vec<Request> = (0..8)
            .map(|_| {
                let req = script[cursor % script.len()].clone();
                cursor += 1;
                req
            })
            .collect();
        for chunk in window.chunks(depth) {
            responses.extend(cfs.handle_batch(chunk.to_vec()));
        }
        ticks += 1;
        assert!(ticks < 10_000, "budgeted pass failed to converge");
        match cfs.handle(Request::ScrubTick) {
            Response::ScrubTicked { status, .. } => {
                if status.state == WireSchedState::Complete {
                    assert_eq!(status.verified as usize, ARCHIVE_FILES);
                    assert_eq!(status.tampered, 1, "the planted evidence must be found");
                    break;
                }
            }
            other => panic!("scrub tick refused: {other:?}"),
        }
    }
    let elapsed = cfs.with_fs(|fs| device_clock_ns(fs)) - start;

    let verdicts: Vec<Response> = (0..ARCHIVE_FILES)
        .map(|i| {
            cfs.handle(Request::Verify {
                name: archive_name(i),
            })
        })
        .collect();
    let mut registry: Vec<LineRecord> =
        cfs.with_fs(|fs| fs.device().heated_lines().cloned().collect());
    registry.sort_by_key(|r| r.line.start());
    (responses, verdicts, registry, ticks, elapsed)
}

/// Wall-clock ops/s for `threads` workers draining `ops_each` reads
/// through `work`.
fn swarm<F>(threads: usize, ops_each: usize, work: F) -> f64
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    let wall = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let work = Arc::clone(&work);
            std::thread::spawn(move || {
                let mut lcg = Lcg(0xBEEF ^ t as u64);
                for _ in 0..ops_each {
                    work((lcg.next() % HOT_FILES as u64) as usize);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("swarm worker");
    }
    (threads * ops_each) as f64 / wall.elapsed().as_secs_f64()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let swarm_ops = if fast { 60 } else { 250 };
    println!(
        "EXP-CONCURRENCY: {HOT_FILES} hot files, {SWEEP_OPS}-op script, depths 1/2/4/8{}\n",
        if fast { " (fast mode)" } else { "" },
    );

    // --- depth sweep ------------------------------------------------------
    let script = read_script(SWEEP_OPS);
    let depths = [1usize, 2, 4, 8];
    let mut device_ns = Vec::new();
    let mut baseline_responses: Option<Vec<Response>> = None;
    let mut merged_at_8 = (0u64, 0u64);
    let widths = [8, 14, 14, 12, 12];
    println!(
        "{}",
        row(
            &["depth", "device ms", "ops/dev-s", "merged", "deduped"],
            &widths
        )
    );
    for &depth in &depths {
        let (ns, responses, merged, deduped) = run_depth(depth, &script);
        match &baseline_responses {
            None => baseline_responses = Some(responses),
            Some(base) => assert_eq!(
                base, &responses,
                "depth {depth} changed a response — merging must be invisible"
            ),
        }
        if depth == 8 {
            merged_at_8 = (merged, deduped);
        }
        println!(
            "{}",
            row(
                &[
                    &format!("{depth}"),
                    &format!("{:.2}", ns as f64 / 1e6),
                    &format!("{:.0}", SWEEP_OPS as f64 / (ns as f64 / 1e9)),
                    &format!("{merged}"),
                    &format!("{deduped}"),
                ],
                &widths
            )
        );
        device_ns.push(ns);
    }
    let ratio = |d: usize| {
        device_ns[0] as f64 / device_ns[depths.iter().position(|&x| x == d).unwrap()] as f64
    };
    let (x2, x4, x8) = (ratio(2), ratio(4), ratio(8));
    println!("\n  depth-8 throughput: {x8:.2}x the single-mutex schedule (bar: >= 2.5x)");
    assert!(
        x8 >= 2.5,
        "admission merging must clear the 2.5x acceptance bar, got {x8:.2}x"
    );

    // --- scrub interleaving ----------------------------------------------
    let (fg8, verdicts8, registry8, ticks8, scrub8_ns) = run_scrub_phase(8, &script);
    let (fg1, verdicts1, registry1, ticks1, scrub1_ns) = run_scrub_phase(1, &script);
    assert_eq!(
        fg8, fg1,
        "foreground responses must match the serialized schedule"
    );
    assert_eq!(
        verdicts8, verdicts1,
        "verify verdicts must match the serialized schedule"
    );
    assert_eq!(
        registry8, registry1,
        "the line registry — the tamper evidence — must be byte-identical"
    );
    let tampered = verdicts8
        .iter()
        .filter(|v| matches!(v, Response::Error(e) if e.code == ErrorCode::TamperDetected))
        .count();
    assert_eq!(tampered, 1, "exactly the planted line is tampered");
    println!(
        "  scrub interleaved at depth 8: {ticks8} ticks, {:.2} ms device \
         (serial: {ticks1} ticks, {:.2} ms); evidence identical, 1 tampered line found",
        scrub8_ns as f64 / 1e6,
        scrub1_ns as f64 / 1e6,
    );

    // --- host thread swarm ------------------------------------------------
    let concurrent = build_fs();
    let concurrent_ops_s = swarm(8, swarm_ops, move |i| {
        assert!(matches!(
            concurrent.handle(Request::Read { name: hot_name(i) }),
            Response::Data { .. }
        ));
    });
    let mutexed = Arc::new(Mutex::new(
        build_fs().try_into_fs().ok().expect("sole owner"),
    ));
    let mutexed_ops_s = swarm(8, swarm_ops, move |i| {
        let mut fs = mutexed.lock().expect("unpoisoned");
        assert!(matches!(
            fs.handle(Request::Read { name: hot_name(i) }),
            Response::Data { .. }
        ));
    });
    println!(
        "  host swarm (8 threads): {concurrent_ops_s:.0} ops/s combined vs \
         {mutexed_ops_s:.0} ops/s mutexed (wall clock, informational)"
    );

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "concurrency")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", DEVICE_BLOCKS)
                .set("hot_files", HOT_FILES)
                .set("hot_bytes", HOT_BYTES)
                .set("archive_files", ARCHIVE_FILES)
                .set("archive_bytes", ARCHIVE_BYTES)
                .set("sweep_ops", SWEEP_OPS)
                .set("scrub_budget_ns", SCRUB_BUDGET_NS)
                .set("swarm_ops_per_thread", swarm_ops),
        )
        .set(
            "metrics",
            Json::obj()
                .set("depth_1_device_ms", device_ns[0] as f64 / 1e6)
                .set("depth_2_device_ms", device_ns[1] as f64 / 1e6)
                .set("depth_4_device_ms", device_ns[2] as f64 / 1e6)
                .set("depth_8_device_ms", device_ns[3] as f64 / 1e6)
                .set("throughput_x2", x2)
                .set("throughput_x4", x4)
                .set("throughput_x8", x8)
                .set("reads_merged_at_8", merged_at_8.0)
                .set("blocks_deduped_at_8", merged_at_8.1)
                .set("scrub_depth8_device_ms", scrub8_ns as f64 / 1e6)
                .set("scrub_serial_device_ms", scrub1_ns as f64 / 1e6)
                .set("scrub_ticks_depth8", ticks8)
                .set("scrub_ticks_serial", ticks1)
                .set("lines_verified", ARCHIVE_FILES)
                .set("tampered", 1u64)
                .set("evidence_identical", 1u64),
        )
        .set(
            "host",
            Json::obj()
                .set("concurrent_ops_per_s", concurrent_ops_s)
                .set("mutexed_ops_per_s", mutexed_ops_s)
                .set("swarm_speedup", concurrent_ops_s / mutexed_ops_s),
        );
    let path = bench_out_path("concurrency");
    std::fs::write(&path, doc.render())?;
    println!("\n  wrote {}", path.display());
    Ok(())
}
