//! EXP-ARCH — Archival substrates on SERO: Venti roots and fossil nodes.
//!
//! Paper §4.2: heating the Venti root "protects the entire hierarchy";
//! for the fossilised index "a completely filled node is simply heated",
//! removing the need to copy full nodes to a separate WORM device.

use rand::{Rng, SeedableRng};
use sero_core::device::SeroDevice;
use sero_crypto::sha256;
use sero_fossil::FossilIndex;
use sero_venti::Venti;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("EXP-ARCH: Venti snapshots and fossilised index on SERO\n");

    // --- Venti: a week of snapshots with small daily deltas ---------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut venti = Venti::new(SeroDevice::with_blocks(4096));
    let pages = 64usize;
    let mut db = vec![0u8; pages * 512];
    rng.fill(&mut db[..]);

    println!("Venti: {pages}-page database, 7 daily snapshots, 4 pages change per day");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12}",
        "day", "new chunks", "total", "dedup ratio", "seal ok?"
    );
    let mut total_logical = 0usize;
    for day in 0..7 {
        for _ in 0..4 {
            let p = rng.random_range(0..pages);
            rng.fill(&mut db[p * 512..(p + 1) * 512]);
        }
        total_logical += pages;
        let before = venti.chunk_count();
        let object = venti.store_object(&db)?;
        let line = venti.seal(&object, format!("day-{day}").into_bytes(), day as u64)?;
        let verdict = venti.verify_seal(line)?;
        println!(
            "{:>6} {:>12} {:>12} {:>14.1} {:>12}",
            day,
            venti.chunk_count() - before,
            venti.chunk_count(),
            total_logical as f64 / venti.chunk_count() as f64,
            verdict.is_intact
        );
    }
    println!(
        "  -> 7 x {} logical pages stored in {} physical chunks",
        pages,
        venti.chunk_count()
    );

    // --- Fossilised index ---------------------------------------------------
    println!("\nFossil: inserting 256 record digests, nodes heat as they fill");
    let mut index = FossilIndex::new(SeroDevice::with_blocks(2048));
    println!(
        "{:>8} {:>8} {:>12} {:>12}",
        "keys", "nodes", "fossilised", "verified"
    );
    for batch in 0..8 {
        for i in 0..32 {
            let key = sha256(format!("record-{batch}-{i}").as_bytes());
            index.insert(key, (batch * 32 + i) as u64)?;
        }
        let (verified, findings) = index.verify_fossils()?;
        println!(
            "{:>8} {:>8} {:>12} {:>12}",
            (batch + 1) * 32,
            index.node_count(),
            index.fossilised_nodes(),
            format!("{verified}/{}", index.fossilised_nodes())
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    // Tamper with one fossilised node and re-verify.
    let ro_stats_before = index.device().stats().heated_lines;
    let line = {
        let records: Vec<_> = index.device().heated_lines().cloned().collect();
        records[0].line
    };
    index
        .device_mut()
        .probe_mut()
        .mws(line.start() + 1, &[0x66; 512])?;
    let (_, findings) = index.verify_fossils()?;

    println!("\npaper-vs-measured:");
    println!(
        "  'heating the root protects the entire hierarchy' -> 7/7 seals verified : REPRODUCED"
    );
    println!(
        "  'a completely filled node is simply heated' -> {} nodes fossilised ({} heated lines) : {}",
        index.fossilised_nodes(),
        ro_stats_before,
        if index.fossilised_nodes() > 0 { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!(
        "  tampering with a fossilised node is detected -> {} finding(s) : {}",
        findings.len(),
        if !findings.is_empty() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
