//! EXP-THERM — Neighbour disturbance of the heat pulse, §7.
//!
//! Paper: "More research will be needed to determine … the effect of
//! heating one dot on the neighbouring dots. Especially the last effect
//! could be detrimental, since the magnetic state, or even the
//! write-ability of the adjacent dot could be affected. … by properly
//! designing the thermal properties of the dot and the substrate, most of
//! the heat can be conducted away into the substrate."
//!
//! Method: burn a full 256-bit hash into a block whose neighbouring
//! tracks carry magnetic data, under three thermal designs, and measure
//! the collateral. Also ablates the Manchester layout's "at most one
//! heated neighbour" spreading against a dense strawman encoding.

use sero_codec::manchester;
use sero_media::thermal::ThermalModel;
use sero_probe::device::ProbeDevice;

fn run_design(name: &str, thermal: ThermalModel) -> (String, usize, usize, bool) {
    let mut dev = ProbeDevice::builder()
        .blocks(8)
        .thermal(thermal)
        .seed(7)
        .build();
    // Fill the neighbouring tracks (blocks 2 and 4) with data.
    let data = [0x5Au8; 512];
    dev.mws(2, &data).unwrap();
    dev.mws(4, &data).unwrap();

    // Burn a 256-bit hash into block 3.
    let bits: Vec<bool> = (0..256).map(|i| i % 2 == 0).collect();
    let report = dev.ews(3, &bits).unwrap();

    // Do the neighbours still read?
    let ok2 = dev.mrs(2).map(|s| s.data == data).unwrap_or(false);
    let ok4 = dev.mrs(4).map(|s| s.data == data).unwrap_or(false);
    (
        name.to_string(),
        report.collateral_destroyed.len(),
        report.disturbed.len(),
        ok2 && ok4,
    )
}

fn main() {
    println!("EXP-THERM: heat-pulse collateral under three thermal designs (100 nm pitch)\n");
    println!(
        "{:>14} {:>12} {:>12} {:>11} {:>11} {:>22}",
        "design", "peak [°C]", "sigma [nm]", "destroyed", "disturbed", "neighbour data intact?"
    );
    let designs = [
        ("well designed", ThermalModel::well_designed(100.0)),
        ("marginal", ThermalModel::marginal(100.0)),
        ("poor", ThermalModel::poorly_designed(100.0)),
    ];
    let mut results = Vec::new();
    for (name, model) in designs {
        let (n, destroyed, disturbed, intact) = run_design(name, model);
        println!(
            "{:>14} {:>12.0} {:>12.0} {:>11} {:>11} {:>22}",
            n,
            model.peak_temp_c(),
            model.lateral_sigma_nm(),
            destroyed,
            disturbed,
            if intact { "yes" } else { "NO" }
        );
        results.push((destroyed, disturbed, intact));
    }

    // Ablation: Manchester spreading vs a dense strawman that heats both
    // dots of every set cell. Use real digest bits — with alternating toy
    // bits the strawman accidentally looks fine; with hash output its runs
    // of consecutive ones become long heated stretches.
    let digest = sero_crypto::sha256(b"exp-thermal hash payload");
    let bits: Vec<bool> = digest.bits().collect();
    let manchester_dots = manchester::encode(bits.iter().copied());
    let dense_dots: Vec<bool> = bits.iter().flat_map(|&b| [b, b]).collect();
    println!("\nencoding ablation (§3 'spreading out heated bits is good for reliability'):");
    println!(
        "{:>14} {:>16} {:>22}",
        "encoding", "heated dots", "max adjacent H run"
    );
    println!(
        "{:>14} {:>16} {:>22}",
        "Manchester",
        manchester_dots.iter().filter(|&&d| d).count(),
        manchester::max_heated_run(&manchester_dots)
    );
    println!(
        "{:>14} {:>16} {:>22}",
        "dense",
        dense_dots.iter().filter(|&&d| d).count(),
        manchester::max_heated_run(&dense_dots)
    );

    println!("\npaper-vs-measured:");
    println!(
        "  'heat conducted into the substrate' -> well-designed pulse: {} destroyed, {} disturbed : {}",
        results[0].0,
        results[0].1,
        if results[0].0 == 0 && results[0].2 { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!(
        "  'adjacent dot could be affected'    -> poor design: {} destroyed, data intact: {} : {}",
        results[2].0,
        results[2].2,
        if results[2].0 > 0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'at most one heated neighbour'      -> Manchester run {} vs dense run {} : {}",
        manchester::max_heated_run(&manchester_dots),
        manchester::max_heated_run(&dense_dots),
        if manchester::max_heated_run(&manchester_dots) <= 2 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
