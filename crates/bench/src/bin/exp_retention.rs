//! EXP-RET — §8 lifecycle features: retention pools, physical shredding,
//! and the self-securing instruction journal.
//!
//! Paper §8 "Deletion": retention-regulated data must eventually go away,
//! but heated data outlives software deletes. The paper weighs key
//! destruction and physical shredding (both "vulnerable to attacks by a
//! dishonest CEO") and advocates segregating data by expiry date so whole
//! devices can be taken out of service. §8 "Tamper-evident storage as a
//! building block": device-maintained instruction logs "can be heated".

use sero_core::badblock::{classify_block, BlockClass};
use sero_core::device::SeroDevice;
use sero_core::journal::{InstructionJournal, JournalEntry};
use sero_core::line::Line;
use sero_fs::retention::RetentionPool;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("EXP-RET: retention, shredding and the instruction journal\n");

    // --- retention by segregation -----------------------------------------
    println!("retention pool (one device per expiry epoch):");
    let mut pool = RetentionPool::new(256);
    for year in [2010u64, 2010, 2015, 2015, 2015, 2020] {
        let name = format!(
            "record-{}-{}",
            year,
            pool.epochs().len() * 7 + pool.expired(9999).len()
        );
        let _ = pool.store(&name, format!("body of {name}").as_bytes(), year);
    }
    println!("  epochs live: {:?}", pool.epochs());
    for &epoch in &[2010u64, 2015, 2020] {
        if let Ok(n) = pool.verify_epoch(epoch) {
            println!("  epoch {epoch}: {n} record(s) verified intact");
        }
    }
    let early = pool.decommission(2020, 2016);
    println!(
        "  early decommission of 2020 at t=2016: {}",
        if early.is_err() {
            "REFUSED"
        } else {
            "allowed?!"
        }
    );
    let report = pool.decommission(2010, 2016)?;
    println!("  {report}");
    println!("  remaining epochs: {:?}", pool.epochs());

    // --- physical shred -----------------------------------------------------
    println!("\nphysical shred of an expired line:");
    let mut dev = SeroDevice::with_blocks(16);
    let line = Line::new(8, 2)?;
    for pba in line.data_blocks() {
        dev.write_block(pba, &[0xEE; 512])?;
    }
    dev.heat_line(line, b"expires 2010".to_vec(), 0)?;
    dev.shred_line(line)?;
    let class = classify_block(&mut dev, line.start())?;
    println!(
        "  after shred: block class {:?}, verify tampered: {}",
        match class {
            BlockClass::Shredded => "Shredded",
            _ => "other",
        },
        dev.verify_line(line)?.is_tampered()
    );

    // --- instruction journal -------------------------------------------------
    println!("\nself-securing instruction journal:");
    let mut jdev = SeroDevice::with_blocks(64);
    let mut journal = InstructionJournal::new(32, 32, 2)?;
    let script = [
        (1u64, "host-a", "WRITE lba 100 len 4096"),
        (2, "host-a", "WRITE lba 104 len 4096"),
        (3, "ceo-laptop", "RAW-ACCESS medium"),
        (4, "ceo-laptop", "SHRED line 8..12"),
        (5, "host-a", "READ lba 100"),
    ];
    for (t, actor, op) in script {
        journal.record(&mut jdev, JournalEntry::new(t, actor, op))?;
    }
    journal.seal(&mut jdev, 5)?;
    println!(
        "  {} batch(es) sealed; pending {}",
        journal.sealed_lines().len(),
        journal.pending_entries()
    );

    // Host compromise: replay the sealed history from the bare medium.
    let replayed = InstructionJournal::replay(&mut jdev, 32, 32)?;
    println!("  replay from bare medium after host compromise:");
    for e in &replayed {
        println!("    {e}");
    }

    println!("\npaper-vs-measured:");
    println!("  'segregated by expiry date … taken physically out of service' -> epoch devices retire independently : REPRODUCED");
    println!("  'physical shred … not wholly satisfactory' -> data gone but all-HH signature + failed verify remain : REPRODUCED");
    println!(
        "  'the logs can be heated' -> {} instruction(s) replayed from sealed lines : {}",
        replayed.len(),
        if replayed.len() == script.len() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
