//! EXP-FS — File-system bimodality and cleaner behaviour, §4.1.
//!
//! Paper claims under test:
//!  (1) clustering heat-candidates produces "a bimodal distribution of
//!      heated segments";
//!  (2) "space decreases only if new data is written and not when lines
//!      are heated";
//!  (3) "the garbage collector skips over heated segments … saving on
//!      disk bandwidth".
//!
//! Method: replay the same seeded file-aging workload (hot/cold churn
//! with occasional heating of cold files) against the heat-affinity
//! policy and the naive baseline. Bimodality is measured *before* the
//! cleaner runs (the cleaner pays to undo mixing); stranded live blocks
//! in heat-touched segments are exactly the copy traffic mixing causes.

use sero_bench::{apply_ops, sparkline};
use sero_core::device::SeroDevice;
use sero_fs::alloc::ClusterPolicy;
use sero_fs::fs::{FsConfig, SeroFs};
use sero_workload::{FileAgingWorkload, Workload};

struct RunResult {
    policy: &'static str,
    bimodality: f64,
    mixed: usize,
    touched: usize,
    stranded_live: u64,
    skipped_heated: u64,
    device_ms: f64,
    fractions: Vec<f64>,
}

fn run(policy: ClusterPolicy, seed: u64) -> RunResult {
    let dev = SeroDevice::with_blocks(2048);
    let mut fs = SeroFs::format(
        dev,
        FsConfig {
            segment_blocks: 64,
            checkpoint_blocks: 16,
            index_blocks: 0,
            policy,
        },
    )
    .expect("format");
    let workload = FileAgingWorkload {
        files: 30,
        operations: 150,
        hot_fraction: 0.25,
        hot_bias: 0.8,
        file_bytes: 2048,
        heat_probability: 0.3,
    };
    let ops = workload.ops(seed);
    apply_ops(&mut fs, &ops, 0);

    // Measure the segment landscape the workload produced, then see what
    // it costs the cleaner.
    let bimodality = fs.bimodality_score();
    let mixed = fs.mixed_segments();
    let touched = fs.heat_touched_segments();
    let stranded_live = fs.stranded_live_blocks();
    fs.run_cleaner(usize::MAX).expect("cleaner");
    let stats = fs.stats();
    RunResult {
        policy: match policy {
            ClusterPolicy::HeatAffinity => "heat-affinity",
            ClusterPolicy::Naive => "naive",
        },
        bimodality,
        mixed,
        touched,
        stranded_live,
        skipped_heated: stats.cleaner_skipped_heated,
        device_ms: fs.device().probe().clock().elapsed_ms(),
        fractions: fs.segment_heated_fractions(),
    }
}

fn main() {
    println!("EXP-FS: bimodality and cleaner behaviour (file-aging workload, 2048-block device)\n");

    let affinity = run(ClusterPolicy::HeatAffinity, 2008);
    let naive = run(ClusterPolicy::Naive, 2008);

    println!(
        "{:>16} {:>12} {:>8} {:>9} {:>15} {:>9} {:>12}",
        "policy", "bimodality", "mixed", "touched", "stranded live", "skipped", "device [ms]"
    );
    for r in [&affinity, &naive] {
        println!(
            "{:>16} {:>12.2} {:>8} {:>9} {:>15} {:>9} {:>12.1}",
            r.policy,
            r.bimodality,
            r.mixed,
            r.touched,
            r.stranded_live,
            r.skipped_heated,
            r.device_ms
        );
    }

    println!("\nper-segment heated fraction across the device (after cleaning):");
    println!("  heat-affinity {}", sparkline(&affinity.fractions));
    println!("  naive         {}", sparkline(&naive.fractions));

    println!("\npaper-vs-measured:");
    println!(
        "  (1) 'bimodal distribution of heated segments' -> affinity {:.2} ({} mixed) vs naive {:.2} ({} mixed) : {}",
        affinity.bimodality,
        affinity.mixed,
        naive.bimodality,
        naive.mixed,
        if affinity.bimodality > naive.bimodality { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!(
        "  (3) 'cleaner saves bandwidth' -> stranded live blocks to copy: {} (affinity) vs {} (naive) : {}",
        affinity.stranded_live,
        naive.stranded_live,
        if affinity.stranded_live < naive.stranded_live { "REPRODUCED" } else { "NOT reproduced" }
    );

    // Claim (2): heating consumes bounded overhead, not a copy of the data.
    let mut fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default()).expect("format");
    fs.create("x", &[1u8; 8 * 512], sero_fs::alloc::WriteClass::Archival)
        .expect("create");
    fs.run_cleaner(usize::MAX).expect("clean");
    let before = fs.free_blocks();
    fs.heat("x", vec![], 0).expect("heat");
    fs.run_cleaner(usize::MAX).expect("clean");
    let spent = before - fs.free_blocks();
    println!(
        "  (2) 'space decreases only for new data' -> heating an 8-block file consumed {spent} blocks \
         (hash+inode+line slack, not a second copy) : {}",
        if spent <= 8 { "REPRODUCED" } else { "NOT reproduced" }
    );
}
