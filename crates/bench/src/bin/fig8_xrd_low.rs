//! FIG8 — Low-angle XRD of as-grown vs annealed multilayers.
//!
//! Paper: "A peak around 8 degrees on the 2θ axis is visible on the sample
//! without annealing. This peak is due to the periodicity of the Co and Pt
//! multilayers. From this angle, we can calculate that layer has a
//! thickness of 0.6 nm. In the annealed sample, this peak has disappeared."

use sero_bench::{downsample, sparkline};
use sero_media::film::CoPtFilm;
use sero_media::xrd::Diffractometer;

fn main() {
    println!("FIG8: low-angle XRD (Cu Kα), 2θ = 2°..14°\n");
    let xrd = Diffractometer::cu_kalpha();
    let as_grown = CoPtFilm::as_grown();
    let annealed = CoPtFilm::as_grown().annealed(700.0);

    let scan_grown = xrd.low_angle_scan(&as_grown);
    let scan_annealed = xrd.low_angle_scan(&annealed);

    // Log-intensity sparklines, as reflectivity is always plotted in log.
    let log_g: Vec<f64> = scan_grown
        .intensity
        .iter()
        .map(|i| i.max(1.0).log10())
        .collect();
    let log_a: Vec<f64> = scan_annealed
        .intensity
        .iter()
        .map(|i| i.max(1.0).log10())
        .collect();
    println!("  as grown  {}", sparkline(&downsample(&log_g, 60)));
    println!("  annealed  {}", sparkline(&downsample(&log_a, 60)));
    println!("            2°{}14°\n", " ".repeat(54));

    let (peak_angle, _) = scan_grown
        .strongest_peak_in(5.5, 9.5)
        .expect("scan covers window");
    let grown_contrast = scan_grown.peak_contrast(5.5, 9.5);
    let annealed_contrast = scan_annealed.peak_contrast(5.5, 9.5);
    let lambda = xrd.wavelength_angstrom();
    let bilayer_nm = lambda / (2.0 * (peak_angle / 2.0).to_radians().sin()) / 10.0;

    println!("{:>22} {:>12} {:>12}", "", "as grown", "annealed");
    println!(
        "{:>22} {:>12.2} {:>12.2}",
        "peak contrast", grown_contrast, annealed_contrast
    );
    println!(
        "{:>22} {:>12.2} {:>12}",
        "peak position [°2θ]", peak_angle, "-"
    );
    println!(
        "{:>22} {:>12.2} {:>12}",
        "=> layer thickness [nm]",
        bilayer_nm / 2.0,
        "-"
    );

    println!("\npaper-vs-measured:");
    println!(
        "  'peak around 8 degrees'        -> measured {:.1}° : {}",
        peak_angle,
        if (peak_angle - 8.0).abs() < 1.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'layer ~0.6 nm'                -> measured {:.2} nm : {}",
        bilayer_nm / 2.0,
        if (bilayer_nm / 2.0 - 0.6).abs() < 0.1 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'annealed: peak disappeared'   -> contrast {:.2} vs {:.2} : {}",
        grown_contrast,
        annealed_contrast,
        if annealed_contrast < 1.5 && grown_contrast > 5.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
