//! BENCH-COMPARE — diff a regenerated `BENCH_*.json` against its committed
//! baseline.
//!
//! Usage: `bench_compare <baseline.json> <candidate.json> [--threshold 0.20]`
//!
//! Compares every numeric leaf under the `"metrics"` object (the
//! deterministic simulated-device numbers — see the schema in
//! `sero-bench`'s crate docs). `"host"` wall times and `"device"` geometry
//! never participate. Exits with:
//!
//! * `0` — every shared metric within the threshold;
//! * `1` — a metric drifted beyond the threshold, or a metric exists in
//!   only one file (an explicit `MISSING` failure: a silently dropped or
//!   renamed metric must not pass as "nothing drifted");
//! * `2` — usage errors and **schema mismatches**: unreadable files, a
//!   missing `"schema"`/`"bench"`/`"metrics"` field, or the two files
//!   disagreeing on schema version or benchmark name (comparing
//!   `BENCH_scrub.json` against `BENCH_registry.json` is a harness bug,
//!   not a drift).
//!
//! CI runs this as a non-blocking step, so a red result is a signal, not a
//! gate.

use sero_bench::json::Json;
use sero_bench::row;
use std::process::ExitCode;

struct BenchDoc {
    schema: String,
    bench: String,
    metrics: Vec<(String, f64)>,
}

fn load_doc(path: &str) -> Result<BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: no \"schema\" string"))?
        .to_string();
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: no \"bench\" string"))?
        .to_string();
    let metrics_node = doc
        .get("metrics")
        .ok_or_else(|| format!("{path}: no \"metrics\" object"))?;
    let mut metrics = Vec::new();
    metrics_node.flatten_numbers("", &mut metrics);
    Ok(BenchDoc {
        schema,
        bench,
        metrics,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.20f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a number");
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(arg.clone());
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--threshold 0.20]");
        return ExitCode::from(2);
    };

    let (baseline_doc, candidate_doc) = match (load_doc(baseline_path), load_doc(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::from(2);
        }
    };
    if baseline_doc.schema != candidate_doc.schema {
        eprintln!(
            "error: schema mismatch: baseline {baseline_path} is \"{}\", candidate {candidate_path} is \"{}\"",
            baseline_doc.schema, candidate_doc.schema
        );
        return ExitCode::from(2);
    }
    if baseline_doc.bench != candidate_doc.bench {
        eprintln!(
            "error: bench mismatch: baseline {baseline_path} is \"{}\", candidate {candidate_path} is \"{}\" — comparing different benchmarks",
            baseline_doc.bench, candidate_doc.bench
        );
        return ExitCode::from(2);
    }
    let (baseline, candidate) = (baseline_doc.metrics, candidate_doc.metrics);

    println!(
        "comparing metrics: {candidate_path} vs baseline {baseline_path} (threshold +/-{:.0}%)\n",
        threshold * 100.0
    );
    let widths = [26, 14, 14, 10, 8];
    println!(
        "{}",
        row(
            &["metric", "baseline", "candidate", "delta", "status"],
            &widths
        )
    );

    let mut drifted = 0usize;
    let mut missing = 0usize;
    let mut keys: Vec<&String> = baseline.iter().map(|(k, _)| k).collect();
    for (k, _) in &candidate {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    for key in keys {
        let base = baseline.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        let cand = candidate.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        let (base_s, cand_s, delta_s, status) = match (base, cand) {
            (Some(b), Some(c)) => {
                let rel = (c - b).abs() / b.abs().max(1e-12);
                let ok = rel <= threshold;
                if !ok {
                    drifted += 1;
                }
                (
                    format!("{b:.4}"),
                    format!("{c:.4}"),
                    format!("{:+.1}%", (c - b) / b.abs().max(1e-12) * 100.0),
                    if ok { "ok" } else { "DRIFT" },
                )
            }
            (b, c) => {
                // A metric present in only one file is an explicit
                // failure, never a silent skip: a renamed or dropped
                // metric would otherwise sail through as "no drift".
                missing += 1;
                (
                    b.map_or("-".into(), |v| format!("{v:.4}")),
                    c.map_or("-".into(), |v| format!("{v:.4}")),
                    "-".into(),
                    "MISSING",
                )
            }
        };
        println!(
            "{}",
            row(&[key, &base_s, &cand_s, &delta_s, status], &widths)
        );
    }

    if drifted == 0 && missing == 0 {
        println!("\nall metrics within +/-{:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{drifted} metric(s) drifted beyond +/-{:.0}%, {missing} missing metric(s) (present in only one file)",
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}
