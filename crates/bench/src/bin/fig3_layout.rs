//! FIG3 — Sample medium layout of a heated line.
//!
//! Heats a real line on the simulated device and dumps the physical
//! layout the way the paper's Figure 3 draws it: block 0 as Manchester
//! cells (HU / UH / UU), the remaining blocks as magnetic 0/1 bits.

use sero_codec::manchester::Cell;
use sero_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dev = SeroDevice::with_blocks(16);
    let line = Line::new(8, 3)?; // 8 blocks: 1 hash + 7 data
    for pba in line.data_blocks() {
        dev.write_block(pba, &[0xA5u8 ^ pba as u8; 512])?;
    }
    let payload = dev.heat_line(line, b"fig3".to_vec(), 1_199_145_600)?;

    println!("FIG3: medium layout of heated {line}\n");
    println!("{:>6} {:>10}  content", "block", "purpose");

    // Block 0: first 24 Manchester cells of the electrical area.
    let scan = dev.probe_mut().ers(line.hash_block())?;
    let cells: Vec<String> = scan.cells()[..24].iter().map(Cell::to_string).collect();
    println!(
        "{:>6} {:>10}  {} …",
        line.hash_block(),
        "hash+meta",
        cells.join(" ")
    );
    let written = scan.cells().iter().filter(|c| c.value().is_some()).count();
    println!(
        "{:>6} {:>10}  ({} written cells = {} logical bits; digest {}…)",
        "",
        "",
        written,
        written,
        &payload.digest().to_hex()[..16]
    );

    // Data blocks: first 32 magnetic bits each.
    for pba in line.data_blocks() {
        let first_dot = dev.probe().block_first_dot(pba);
        let bits: String = (0..32)
            .map(|i| match dev.probe().medium().state(first_dot + i) {
                sero_media::dot::DotState::Up => '1',
                sero_media::dot::DotState::Down => '0',
                sero_media::dot::DotState::Heated => 'H',
            })
            .collect();
        println!("{:>6} {:>10}  {} … (512 B data)", pba, "data", bits);
    }

    println!("\nnotation: HU = logical 0, UH = logical 1, UU = unused (Figure 3 of the paper)");
    println!(
        "space overhead of the heated hash: 1/{} blocks = {:.1} %",
        line.len(),
        line.overhead_fraction() * 100.0
    );
    Ok(())
}
