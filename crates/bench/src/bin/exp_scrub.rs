//! EXP-SCRUB — whole-device scrub: sharded parallel verify vs the serial
//! `verify_line` loop.
//!
//! The paper's §5.2 argument assumes whole-device verification is routine;
//! this experiment puts numbers on it. A 64 MiB simulated device gets a
//! population of heated lines, then every line is verified twice: once as
//! the serial one-line-at-a-time loop, once sharded over parallel scrub
//! workers (each modelling an independent probe-region controller with its
//! own channel and clock). Both times are **simulated device time**, so
//! the speedup is deterministic and host-independent; host wall times are
//! reported alongside for reference.
//!
//! After the full pass the experiment keeps going: it heats a small
//! *delta* of new lines, tampers with one of them, and runs an
//! **incremental** scrub (see [`sero_core::scrub::ScrubMode`]) against a
//! full pass on a clone — the incremental pass must verify ≥10× fewer
//! lines while reporting identical tamper evidence.
//!
//! Emits `BENCH_scrub.json` (schema `sero-bench/v1`, see `sero-bench`'s
//! crate docs). `SERO_BENCH_FAST=1` heats fewer lines for CI; the device
//! stays ≥ 64 MiB either way.

use sero_bench::json::Json;
use sero_bench::{bench_out_path, fast_mode, row};
use sero_core::device::SeroDevice;
use sero_core::line::Line;
use sero_core::scrub::{scrub_device, ScrubConfig};
use sero_probe::sector::SECTOR_DATA_BYTES;
use std::time::Instant;

/// 64 MiB of 512-byte blocks.
const DEVICE_BLOCKS: u64 = 131_072;
const LINE_ORDER: u32 = 4; // 16-block lines: 1 hash + 15 data
const WORKERS: usize = 8;

fn fill_and_heat(
    dev: &mut SeroDevice,
    first_line: u64,
    lines: u64,
) -> Result<Vec<Line>, Box<dyn std::error::Error>> {
    let line_len = 1u64 << LINE_ORDER;
    let mut heated = Vec::with_capacity(lines as usize);
    let mut requests = Vec::with_capacity(lines as usize);
    for i in first_line..first_line + lines {
        let line = Line::new(i * line_len, LINE_ORDER)?;
        let pbas: Vec<u64> = line.data_blocks().collect();
        let sectors: Vec<[u8; SECTOR_DATA_BYTES]> = pbas
            .iter()
            .map(|&pba| {
                let mut s = [0u8; SECTOR_DATA_BYTES];
                for (j, b) in s.iter_mut().enumerate() {
                    *b = (pba as u8).wrapping_mul(37).wrapping_add(j as u8);
                }
                s
            })
            .collect();
        dev.write_blocks(&pbas, &sectors)?;
        requests.push((line, b"scrub-bench".to_vec(), 1_199_145_600));
        heated.push(line);
    }
    for result in dev.heat_lines(requests) {
        result?;
    }
    Ok(heated)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let lines_to_heat: u64 = if fast { 96 } else { 1024 };
    let line_len = 1u64 << LINE_ORDER;
    let device_bytes = DEVICE_BLOCKS * SECTOR_DATA_BYTES as u64;

    println!(
        "EXP-SCRUB: {} MiB device, {lines_to_heat} heated lines of {line_len} blocks, {WORKERS} workers{}\n",
        device_bytes / (1024 * 1024),
        if fast { " (fast mode)" } else { "" },
    );

    // --- populate: fill and heat the line region ------------------------
    let host_setup = Instant::now();
    let mut dev = SeroDevice::with_blocks(DEVICE_BLOCKS);
    fill_and_heat(&mut dev, 0, lines_to_heat)?;
    let setup_ms = host_setup.elapsed().as_secs_f64() * 1e3;

    // --- serial reference: the one-line-at-a-time verify loop -----------
    let mut serial_dev = dev.clone();
    let host_serial = Instant::now();
    let serial = scrub_device(&mut serial_dev, &ScrubConfig::with_workers(1))?;
    let serial_host_ms = host_serial.elapsed().as_secs_f64() * 1e3;
    let serial_ns = serial.summary.device_ns;

    // --- sharded scrub ---------------------------------------------------
    let host_parallel = Instant::now();
    let report = scrub_device(&mut dev, &ScrubConfig::with_workers(WORKERS))?;
    let parallel_host_ms = host_parallel.elapsed().as_secs_f64() * 1e3;
    let parallel_ns = report.summary.device_ns;

    // Sharding must not change what verification sees.
    assert_eq!(report.outcomes.len(), serial.outcomes.len());
    for (p, s) in report.outcomes.iter().zip(serial.outcomes.iter()) {
        assert_eq!(p, s, "parallel scrub diverged from serial on {}", p.line);
    }

    // --- incremental pass after a small delta ---------------------------
    // The full pass above completed epoch 1. Heat a small delta of new
    // lines, tamper with one of them, and compare an incremental pass (the
    // delta only) against a full pass on a clone (everything).
    let delta_lines: u64 = lines_to_heat / 12;
    let delta = fill_and_heat(&mut dev, lines_to_heat, delta_lines)?;
    let victim = delta[delta.len() / 2];
    dev.probe_mut().mws(victim.start() + 1, &[0xEE; 512])?;

    let mut full_dev = dev.clone();
    let full_after = scrub_device(&mut full_dev, &ScrubConfig::with_workers(WORKERS))?;
    let incr_t0 = dev.probe().clock().elapsed_ns();
    let incremental = scrub_device(&mut dev, &ScrubConfig::incremental(WORKERS))?;
    let incremental_ns = dev.probe().clock().elapsed_ns() - incr_t0;

    // The incremental pass covers exactly the delta and reports the same
    // tamper evidence the full pass finds.
    assert_eq!(incremental.summary.lines as u64, delta_lines);
    assert_eq!(incremental.summary.skipped as u64, lines_to_heat);
    assert_eq!(incremental.summary.tampered, 1);
    assert_eq!(full_after.summary.tampered, 1);
    let incr_tampered: Vec<_> = incremental.tampered_lines().collect();
    let full_tampered: Vec<_> = full_after.tampered_lines().collect();
    assert_eq!(
        incr_tampered, full_tampered,
        "incremental evidence diverged from the full pass"
    );
    let reduction = full_after.summary.lines as f64 / incremental.summary.lines as f64;

    let speedup = serial_ns as f64 / parallel_ns as f64;
    let parallel_s = parallel_ns as f64 / 1e9;
    let data_mib = report.summary.data_bytes as f64 / (1024.0 * 1024.0);

    let widths = [26, 16, 16, 10];
    println!(
        "{}",
        row(&["path", "device time", "host time", "lines/s"], &widths)
    );
    for (name, ns, host_ms, lines) in [
        (
            "serial verify_line loop",
            serial_ns,
            serial_host_ms,
            serial.summary.lines,
        ),
        (
            "sharded scrub (8 workers)",
            parallel_ns,
            parallel_host_ms,
            report.summary.lines,
        ),
    ] {
        println!(
            "{}",
            row(
                &[
                    name,
                    &format!("{:.1} ms", ns as f64 / 1e6),
                    &format!("{host_ms:.0} ms"),
                    &format!("{:.0}", lines as f64 / (ns as f64 / 1e9)),
                ],
                &widths
            )
        );
    }
    println!(
        "\n  intact {} / tampered {} / {:.1} MiB of protected data re-hashed",
        report.summary.intact, report.summary.tampered, data_mib
    );
    println!(
        "  device-time speedup: {speedup:.2}x (acceptance bar: >= 3x) : {}",
        if speedup >= 3.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "  incremental pass: {} verified / {} skipped in {:.1} ms — {reduction:.1}x fewer lines than full (bar: >= 10x) : {}",
        incremental.summary.lines,
        incremental.summary.skipped,
        incremental_ns as f64 / 1e6,
        if reduction >= 10.0 { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "scrub")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", DEVICE_BLOCKS)
                .set("bytes", device_bytes)
                .set("heated_lines", lines_to_heat)
                .set("line_order", LINE_ORDER as u64)
                .set("delta_lines", delta_lines)
                .set("workers", WORKERS),
        )
        .set(
            "metrics",
            Json::obj()
                .set("serial_device_ms", serial_ns as f64 / 1e6)
                .set("parallel_device_ms", parallel_ns as f64 / 1e6)
                .set("speedup", speedup)
                .set("lines", report.summary.lines)
                .set("lines_per_s", report.summary.lines as f64 / parallel_s)
                .set("mib_per_s", data_mib / parallel_s)
                .set("intact", report.summary.intact)
                .set("tampered", report.summary.tampered)
                .set("incremental_device_ms", incremental_ns as f64 / 1e6)
                .set("incremental_verified", incremental.summary.lines)
                .set("incremental_skipped", incremental.summary.skipped)
                .set("incremental_tampered", incremental.summary.tampered)
                .set("incremental_reduction", reduction),
        )
        .set(
            "host",
            Json::obj()
                .set("setup_ms", setup_ms)
                .set("serial_ms", serial_host_ms)
                .set("parallel_ms", parallel_host_ms),
        );
    let path = bench_out_path("scrub");
    std::fs::write(&path, doc.render())?;
    println!("  wrote {}", path.display());

    assert!(
        speedup >= 3.0,
        "sharded scrub speedup {speedup:.2}x below the 3x acceptance bar"
    );
    assert!(
        reduction >= 10.0,
        "incremental scrub verified only {reduction:.1}x fewer lines than full, below the 10x bar"
    );
    Ok(())
}
