//! EXP-BULK-IO — extent transfers vs per-block loops on the probe device.
//!
//! A per-block `mrs`/`mws` loop pays a full seek (steps + settle) for
//! every block even when the access is perfectly sequential; the extent
//! APIs (`read_blocks`/`write_blocks`) seek once and stream between
//! adjacent tracks. This experiment measures both paths over the same
//! extent and reports the deterministic simulated-device speedup, plus
//! host wall times for reference.
//!
//! Emits `BENCH_bulk_io.json` (schema `sero-bench/v1`, see `sero-bench`'s
//! crate docs). `SERO_BENCH_FAST=1` shrinks the extent for CI.

use sero_bench::json::Json;
use sero_bench::{bench_out_path, fast_mode, row};
use sero_probe::device::ProbeDevice;
use sero_probe::sector::SECTOR_DATA_BYTES;
use std::time::Instant;

const DEVICE_BLOCKS: u64 = 8192;

fn pattern(pba: u64) -> [u8; SECTOR_DATA_BYTES] {
    let mut s = [0u8; SECTOR_DATA_BYTES];
    for (j, b) in s.iter_mut().enumerate() {
        *b = (pba as u8).wrapping_mul(59).wrapping_add(j as u8);
    }
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let extent: u64 = if fast { 256 } else { 1024 };
    let extent_bytes = extent * SECTOR_DATA_BYTES as u64;
    let extent_mib = extent_bytes as f64 / (1024.0 * 1024.0);

    println!(
        "EXP-BULK-IO: {extent}-block extents on a {DEVICE_BLOCKS}-block device{}\n",
        if fast { " (fast mode)" } else { "" },
    );

    let sectors: Vec<[u8; SECTOR_DATA_BYTES]> = (0..extent).map(pattern).collect();

    // --- writes ----------------------------------------------------------
    let mut loop_dev = ProbeDevice::builder().blocks(DEVICE_BLOCKS).build();
    let host = Instant::now();
    let t0 = loop_dev.clock().elapsed_ns();
    for (i, data) in sectors.iter().enumerate() {
        loop_dev.mws(i as u64, data)?;
    }
    let write_loop_ns = loop_dev.clock().elapsed_ns() - t0;
    let write_loop_host_ms = host.elapsed().as_secs_f64() * 1e3;

    let mut extent_dev = ProbeDevice::builder().blocks(DEVICE_BLOCKS).build();
    let host = Instant::now();
    let t0 = extent_dev.clock().elapsed_ns();
    extent_dev.write_blocks(0, &sectors)?;
    let write_extent_ns = extent_dev.clock().elapsed_ns() - t0;
    let write_extent_host_ms = host.elapsed().as_secs_f64() * 1e3;

    // --- reads -----------------------------------------------------------
    let host = Instant::now();
    let t0 = loop_dev.clock().elapsed_ns();
    let mut via_loop = Vec::with_capacity(extent as usize);
    for pba in 0..extent {
        via_loop.push(loop_dev.mrs(pba)?.data);
    }
    let read_loop_ns = loop_dev.clock().elapsed_ns() - t0;
    let read_loop_host_ms = host.elapsed().as_secs_f64() * 1e3;

    let host = Instant::now();
    let t0 = extent_dev.clock().elapsed_ns();
    let via_extent = extent_dev.read_blocks(0, extent)?;
    let read_extent_ns = extent_dev.clock().elapsed_ns() - t0;
    let read_extent_host_ms = host.elapsed().as_secs_f64() * 1e3;

    // Both paths must return byte-identical data.
    for (i, sector) in via_extent.into_iter().enumerate() {
        let data = sector?.data;
        assert_eq!(data, via_loop[i], "extent read diverged at block {i}");
        assert_eq!(data, sectors[i], "read-back diverged at block {i}");
    }

    let read_speedup = read_loop_ns as f64 / read_extent_ns as f64;
    let write_speedup = write_loop_ns as f64 / write_extent_ns as f64;
    let read_mib_s = extent_mib / (read_extent_ns as f64 / 1e9);
    let write_mib_s = extent_mib / (write_extent_ns as f64 / 1e9);

    let widths = [22, 16, 16, 10];
    println!(
        "{}",
        row(&["path", "device time", "host time", "speedup"], &widths)
    );
    for (name, ns, host_ms, speedup) in [
        ("write: mws loop", write_loop_ns, write_loop_host_ms, 1.0),
        (
            "write: write_blocks",
            write_extent_ns,
            write_extent_host_ms,
            write_speedup,
        ),
        ("read: mrs loop", read_loop_ns, read_loop_host_ms, 1.0),
        (
            "read: read_blocks",
            read_extent_ns,
            read_extent_host_ms,
            read_speedup,
        ),
    ] {
        println!(
            "{}",
            row(
                &[
                    name,
                    &format!("{:.2} ms", ns as f64 / 1e6),
                    &format!("{host_ms:.1} ms"),
                    &format!("{speedup:.2}x"),
                ],
                &widths
            )
        );
    }
    println!(
        "\n  extent throughput: read {read_mib_s:.1} MiB/s, write {write_mib_s:.1} MiB/s (device time)"
    );

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "bulk_io")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", DEVICE_BLOCKS)
                .set("bytes", DEVICE_BLOCKS * SECTOR_DATA_BYTES as u64)
                .set("extent_blocks", extent),
        )
        .set(
            "metrics",
            Json::obj()
                .set("read_loop_device_ms", read_loop_ns as f64 / 1e6)
                .set("read_extent_device_ms", read_extent_ns as f64 / 1e6)
                .set("read_speedup", read_speedup)
                .set("write_loop_device_ms", write_loop_ns as f64 / 1e6)
                .set("write_extent_device_ms", write_extent_ns as f64 / 1e6)
                .set("write_speedup", write_speedup)
                .set("read_mib_per_s", read_mib_s)
                .set("write_mib_per_s", write_mib_s)
                .set("blocks_per_op", extent),
        )
        .set(
            "host",
            Json::obj()
                .set("read_loop_ms", read_loop_host_ms)
                .set("read_extent_ms", read_extent_host_ms)
                .set("write_loop_ms", write_loop_host_ms)
                .set("write_extent_ms", write_extent_host_ms),
        );
    let path = bench_out_path("bulk_io");
    std::fs::write(&path, doc.render())?;
    println!("  wrote {}", path.display());

    assert!(
        read_speedup > 1.0 && write_speedup > 1.0,
        "extent path must beat the loop (read {read_speedup:.2}x, write {write_speedup:.2}x)"
    );
    Ok(())
}
