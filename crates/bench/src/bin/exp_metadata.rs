//! EXP-METADATA — namespace scale: the LSM metadata index against the
//! frame-cap and checkpoint-capacity walls.
//!
//! Three phases, all deterministic (store counters and simulated device
//! state, never wall clock):
//!
//! 1. **Index scale sweep** ([`MetaIndex`] over [`VecStore`]): bulk-load
//!    4k/16k/64k entries (1M too, outside `SERO_BENCH_FAST`), then
//!    measure what scale does to the two costs that matter at mount and
//!    at lookup. `open()` must read a *constant* page count — both
//!    manifest slots plus the WAL region, never the segment heap — and
//!    point lookups must stay sublinear (bloom-pruned level probes)
//!    while the namespace grows 16× (256× in full mode). Both bars are
//!    asserted in-binary.
//! 2. **Tamper byte-identity**: one workload (create, heat, one raw §5
//!    insider rewrite) replayed against a pre-index file system and an
//!    indexed one with identical data geometry (64 metadata blocks
//!    either way: all-checkpoint vs checkpoint+index). Every verify
//!    verdict — digests, timestamps, metadata, the tamper report — and
//!    every heated line's raw data bytes must be identical: the index
//!    changes where *metadata* lives, never what the evidence says.
//! 3. **Wire pagination**: a 10k-name namespace listed through
//!    [`SeroFs::handle`] with cursor+limit pages, every response framed
//!    with [`sero_proto::frame::encode_response`]. More than one frame,
//!    no frame over 1 MiB, and the reassembled listing equals `list()`
//!    — the fix for the old single-frame `List` that asserted past the
//!    frame cap. The same file system is then remounted and must
//!    hydrate from the index region alone (no per-inode probing).
//!
//! Emits `BENCH_metadata.json` (schema `sero-bench/v1`, see `sero-bench`'s
//! crate docs).

use sero_bench::json::Json;
use sero_bench::{bench_out_path, fast_mode, row};
use sero_core::device::SeroDevice;
use sero_core::tamper::VerifyOutcome;
use sero_fs::alloc::{ClusterPolicy, WriteClass};
use sero_fs::fs::{FsConfig, SeroFs};
use sero_index::{IndexGeometry, MetaIndex, VecStore, MANIFEST_SLOT_PAGES};
use sero_proto::frame::encode_response;
use sero_proto::{Request, Response, MAX_PAYLOAD_BYTES};
use std::time::Instant;

/// Point lookups sampled per scale (counter averages divide by this).
const LOOKUP_SAMPLE: u64 = 256;

/// Files in the tamper byte-identity workload.
const ARCHIVE_FILES: usize = 16;

/// Names in the pagination namespace.
const LIST_FILES: usize = 10_000;

fn scale_key(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{}m", n / 1_000_000)
    } else {
        format!("{}k", n / 1_000)
    }
}

/// Bulk-loads `entries` keys, reopens, and returns
/// `(open_reads, wal_pages, avg lookup reads ×1000, bloom skips)`.
fn index_sweep(entries: usize) -> (u64, u64, f64, u64) {
    // Sized so the bottom level plus one compaction's worth of scratch
    // always fits *contiguously* (segments are first-fit extents): ~24
    // bytes per entry, ~21 entries per page, ×2 for the rewrite-in-flight
    // copy, then ×2 again so fragmentation never starves the rewrite.
    let pages = ((entries as u64) / 4).max(1024);
    let geom = IndexGeometry::for_pages(pages).expect("geometry");
    let mut store = VecStore::new(pages);
    let mut idx = MetaIndex::format(&mut store, geom).expect("format");
    for i in 0..entries {
        let key = format!("file-{i:07}");
        idx.put(&mut store, key.as_bytes(), &(i as u64).to_le_bytes())
            .expect("put");
    }
    drop(idx);

    store.reset_counters();
    let (mut idx, report) = MetaIndex::open(&mut store, geom).expect("open");
    let open_reads = store.reads();
    assert!(!report.torn_tail, "bulk load closed cleanly");

    // Warm the lazy segment headers once (a real mount's scan_all pays
    // this), then measure steady-state point lookups.
    let stride = (entries as u64 / LOOKUP_SAMPLE).max(1);
    for s in 0..LOOKUP_SAMPLE {
        let i = (s * stride) % entries as u64;
        let key = format!("file-{i:07}");
        let got = idx.get(&mut store, key.as_bytes()).expect("lookup");
        assert_eq!(got, Some(i.to_le_bytes().to_vec()), "lost {key}");
    }
    store.reset_counters();
    let blooms0 = idx.stats().bloom_skips;
    for s in 0..LOOKUP_SAMPLE {
        let i = (s * stride + stride / 2) % entries as u64;
        let key = format!("file-{i:07}");
        let got = idx.get(&mut store, key.as_bytes()).expect("lookup");
        assert_eq!(got, Some(i.to_le_bytes().to_vec()), "lost {key}");
    }
    let lookup_avg = store.reads() as f64 / LOOKUP_SAMPLE as f64;
    let bloom_skips = idx.stats().bloom_skips - blooms0;
    let wal_pages = geom.heap_start() - geom.wal_start();
    (open_reads, wal_pages, lookup_avg, bloom_skips)
}

/// Replays the shared tamper workload on `config` and returns the
/// verdicts plus every heated line's raw data bytes.
fn tamper_run(config: FsConfig) -> (Vec<VerifyOutcome>, Vec<Vec<u8>>) {
    let mut fs = SeroFs::format(SeroDevice::with_blocks(4096), config).expect("format");
    for i in 0..ARCHIVE_FILES {
        let data: Vec<u8> = (0..1100u32).map(|j| (i as u32 * 37 + j) as u8).collect();
        fs.create(&format!("evidence-{i:02}"), &data, WriteClass::Archival)
            .expect("create");
    }
    let mut lines = Vec::new();
    for i in 0..ARCHIVE_FILES {
        let line = fs
            .heat(
                &format!("evidence-{i:02}"),
                b"exp-metadata".to_vec(),
                1_199_145_600 + i as u64,
            )
            .expect("heat");
        lines.push(line);
    }
    // The §5 insider rewrites one protected block through the raw probe.
    // Line layout is hash + inode + data; target the first data block so
    // both layouts still mount and the digest walk finds the rewrite.
    fs.device_mut()
        .probe_mut()
        .mws(lines[ARCHIVE_FILES / 2].start() + 2, &[0xEE; 512])
        .expect("raw tamper");
    fs.sync().expect("sync");

    let mut fs = SeroFs::mount(fs.into_device()).expect("remount");
    let mut verdicts = Vec::new();
    let mut line_bytes = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        verdicts.push(fs.verify(&format!("evidence-{i:02}")).expect("verify"));
        let mut bytes = Vec::new();
        for pba in line.data_blocks() {
            bytes.extend_from_slice(&fs.device_mut().read_block(pba).expect("read line"));
        }
        line_bytes.push(bytes);
    }
    (verdicts, line_bytes)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let scales: &[usize] = if fast {
        &[4_000, 16_000, 64_000]
    } else {
        &[4_000, 16_000, 64_000, 1_000_000]
    };

    println!(
        "EXP-METADATA: namespace scale sweep {:?}{}\n",
        scales,
        if fast { " (fast mode)" } else { "" },
    );

    // --- phase 1: index scale sweep -------------------------------------
    let host_sweep = Instant::now();
    let widths = [10, 12, 16, 14];
    println!(
        "{}",
        row(
            &["entries", "open reads", "lookup reads", "bloom skips"],
            &widths
        )
    );
    let mut sweep = Vec::new();
    for &n in scales {
        let (open_reads, wal_pages, lookup_avg, bloom_skips) = index_sweep(n);
        let bound = 2 * MANIFEST_SLOT_PAGES + wal_pages;
        assert!(
            open_reads <= bound,
            "open() read {open_reads} pages at {n} entries; \
             the manifest+WAL bound is {bound} — it touched the heap"
        );
        println!(
            "{}",
            row(
                &[
                    &scale_key(n),
                    &format!("{open_reads}"),
                    &format!("{lookup_avg:.2}"),
                    &format!("{bloom_skips}"),
                ],
                &widths
            )
        );
        sweep.push((n, open_reads, lookup_avg, bloom_skips));
    }
    let (base_n, base_open, base_lookup, _) = sweep[0];
    let (top_n, top_open, top_lookup, _) = *sweep.last().unwrap();
    assert_eq!(
        base_open, top_open,
        "mount-time reads must not grow with the namespace"
    );
    let growth = top_lookup / base_lookup;
    let entries_growth = top_n as f64 / base_n as f64;
    assert!(
        growth <= 4.0 && growth < entries_growth / 2.0,
        "lookup reads grew {growth:.2}x while entries grew {entries_growth:.0}x — not sublinear"
    );
    let sweep_host_ms = host_sweep.elapsed().as_secs_f64() * 1e3;
    println!(
        "\n  open reads constant at {top_open}; lookups {base_lookup:.2} -> {top_lookup:.2} \
         pages ({growth:.2}x) while entries grew {entries_growth:.0}x\n"
    );

    // --- phase 2: tamper byte-identity -----------------------------------
    // Identical data geometry: 64 metadata blocks either way, so every
    // file, line, and digest lands at the same physical addresses.
    let host_tamper = Instant::now();
    let legacy = FsConfig {
        segment_blocks: 64,
        checkpoint_blocks: 64,
        index_blocks: 0,
        policy: ClusterPolicy::HeatAffinity,
    };
    let indexed = FsConfig {
        segment_blocks: 64,
        checkpoint_blocks: 16,
        index_blocks: 48,
        policy: ClusterPolicy::HeatAffinity,
    };
    let (verdicts_legacy, bytes_legacy) = tamper_run(legacy);
    let (verdicts_indexed, bytes_indexed) = tamper_run(indexed);
    assert_eq!(
        verdicts_legacy, verdicts_indexed,
        "indexing changed a verify verdict"
    );
    assert_eq!(
        bytes_legacy, bytes_indexed,
        "indexing changed protected line bytes"
    );
    let tampered = verdicts_indexed.iter().filter(|v| v.is_tampered()).count();
    assert_eq!(tampered, 1, "exactly the planted line is tampered");
    assert_eq!(
        verdicts_indexed.iter().filter(|v| v.is_intact()).count(),
        ARCHIVE_FILES - 1
    );
    let tamper_host_ms = host_tamper.elapsed().as_secs_f64() * 1e3;
    println!(
        "  tamper evidence: {ARCHIVE_FILES} verdicts byte-identical across \
         pre-index and indexed layouts, 1 planted line found\n"
    );

    // --- phase 3: wire pagination + indexed mount at 10k names -----------
    let host_list = Instant::now();
    let big = FsConfig {
        segment_blocks: 64,
        checkpoint_blocks: 16,
        index_blocks: 16_384,
        policy: ClusterPolicy::HeatAffinity,
    };
    let mut fs = SeroFs::format(SeroDevice::with_blocks(65_536), big).expect("format big");
    let filler = "n".repeat(50);
    for i in 0..LIST_FILES {
        fs.create(&format!("{i:05}-{filler}"), &[i as u8], WriteClass::Normal)
            .expect("create");
    }
    fs.sync().expect("sync 10k");

    let mut names = Vec::new();
    let mut cursor: Option<String> = None;
    let mut frames = 0u64;
    let mut max_frame_bytes = 0usize;
    loop {
        let resp = fs.handle(Request::List {
            cursor: cursor.take(),
            limit: u32::MAX,
        });
        let framed = encode_response(&resp).expect("paged response frames");
        frames += 1;
        max_frame_bytes = max_frame_bytes.max(framed.len());
        assert!(
            framed.len() <= MAX_PAYLOAD_BYTES,
            "a page frame of {} bytes broke the 1 MiB cap",
            framed.len()
        );
        match resp {
            Response::Names { names: page, next } => {
                names.extend(page);
                match next {
                    Some(n) => cursor = Some(n),
                    None => break,
                }
            }
            other => panic!("list refused: {other:?}"),
        }
    }
    assert!(
        frames >= 2,
        "a {LIST_FILES}-name listing must not fit one frame"
    );
    assert_eq!(names, fs.list(), "paginated listing diverged from list()");

    // The same namespace must remount from the metadata regions alone.
    let dev = fs.into_device();
    let reads0 = dev.probe().counters().mrs;
    let fs = SeroFs::mount(dev).expect("remount 10k");
    let mount_reads = fs.device().probe().counters().mrs - reads0;
    let metadata_blocks = fs.config().checkpoint_blocks + fs.config().index_blocks;
    assert!(
        mount_reads <= metadata_blocks,
        "mount read {mount_reads} sectors for {LIST_FILES} files — it probed inode blocks"
    );
    let list_host_ms = host_list.elapsed().as_secs_f64() * 1e3;
    println!(
        "  pagination: {LIST_FILES} names in {frames} frames (max {max_frame_bytes} bytes); \
         remount read {mount_reads} of {metadata_blocks} metadata blocks\n"
    );

    let mut metrics = Json::obj()
        .set("lookup_growth", growth)
        .set("tamper_identical", 1u64)
        .set("tampered_found", tampered as u64)
        .set("list_frames", frames)
        .set("max_frame_bytes", max_frame_bytes as u64)
        .set("names_listed", names.len() as u64)
        .set("fs10k_mount_reads", mount_reads);
    for &(n, open_reads, lookup_avg, bloom_skips) in &sweep {
        let k = scale_key(n);
        metrics = metrics
            .set(&format!("open_reads_{k}"), open_reads)
            .set(&format!("lookup_avg_reads_{k}"), lookup_avg)
            .set(&format!("bloom_skips_{k}"), bloom_skips);
    }
    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "metadata")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("sweep_scales", scales.len() as u64)
                .set("sweep_top_entries", top_n as u64)
                .set("lookup_sample", LOOKUP_SAMPLE)
                .set("archive_files", ARCHIVE_FILES as u64)
                .set("list_files", LIST_FILES as u64)
                .set("list_name_bytes", 56u64)
                .set("list_index_blocks", 16_384u64),
        )
        .set("metrics", metrics)
        .set(
            "host",
            Json::obj()
                .set("sweep_ms", sweep_host_ms)
                .set("tamper_ms", tamper_host_ms)
                .set("list_ms", list_host_ms),
        );
    let path = bench_out_path("metadata");
    std::fs::write(&path, doc.render())?;
    println!("  wrote {}", path.display());
    Ok(())
}
