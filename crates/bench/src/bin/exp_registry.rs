//! EXP-REGISTRY — whole-device registry rebuild: batched electrical sieve
//! vs the per-block crawl.
//!
//! The paper's §5.2 recovery argument — "a fsck style scan of the medium
//! would definitely recover, albeit slowly, all the heated files" — makes
//! the registry scan the dominant mount-time cost at scale: every block's
//! electrical prefix must be probed to find line heads. The per-block
//! crawl pays a full seek (step **plus settle**) per block; the batched
//! path sieves each gap in one settle-free sweep
//! ([`sero_probe`]'s `ers_sieve_blocks_with`), escalating candidate heads
//! to a full scan on the spot. Both paths make identical decisions — same
//! lines found, same suspicious blocks — so the speedup is pure actuation
//! savings, measured in deterministic simulated device time.
//!
//! The populated device also carries standing evidence (a relocated forged
//! payload and a shredded block) so the suspicious-block path is exercised
//! and compared too.
//!
//! Emits `BENCH_registry.json` (schema `sero-bench/v1`, see `sero-bench`'s
//! crate docs). `SERO_BENCH_FAST=1` heats fewer lines for CI; the device
//! stays ≥ 64 MiB either way.

use sero_bench::json::Json;
use sero_bench::{bench_out_path, fast_mode, row};
use sero_core::device::SeroDevice;
use sero_core::layout::HashBlockPayload;
use sero_core::line::Line;
use sero_crypto::Sha256;
use sero_probe::sector::SECTOR_DATA_BYTES;
use std::time::Instant;

/// 64 MiB of 512-byte blocks.
const DEVICE_BLOCKS: u64 = 131_072;
const LINE_ORDER: u32 = 4; // 16-block lines: 1 hash + 15 data

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let lines_to_heat: u64 = if fast { 48 } else { 512 };
    let line_len = 1u64 << LINE_ORDER;
    let device_bytes = DEVICE_BLOCKS * SECTOR_DATA_BYTES as u64;

    println!(
        "EXP-REGISTRY: {} MiB device, {lines_to_heat} heated lines of {line_len} blocks{}\n",
        device_bytes / (1024 * 1024),
        if fast { " (fast mode)" } else { "" },
    );

    // --- populate: heat a line population, plant standing evidence ------
    let host_setup = Instant::now();
    let mut dev = SeroDevice::with_blocks(DEVICE_BLOCKS);
    let mut requests = Vec::with_capacity(lines_to_heat as usize);
    for i in 0..lines_to_heat {
        let line = Line::new(i * line_len, LINE_ORDER)?;
        let pbas: Vec<u64> = line.data_blocks().collect();
        let sectors: Vec<[u8; SECTOR_DATA_BYTES]> = pbas
            .iter()
            .map(|&pba| {
                let mut s = [0u8; SECTOR_DATA_BYTES];
                for (j, b) in s.iter_mut().enumerate() {
                    *b = (pba as u8).wrapping_mul(41).wrapping_add(j as u8);
                }
                s
            })
            .collect();
        dev.write_blocks(&pbas, &sectors)?;
        requests.push((line, b"registry-bench".to_vec(), 1_199_145_600));
    }
    for result in dev.heat_lines(requests) {
        result?;
    }

    // Standing evidence the scan must file, not trip over: a forged
    // payload burned somewhere other than its own hash block, and a
    // shredded (all-HH) block.
    let forged_at = DEVICE_BLOCKS - 64;
    let claimed = Line::new(0, LINE_ORDER)?;
    let mut hasher = Sha256::new();
    hasher.update(b"forged-elsewhere");
    let forged = HashBlockPayload::new(claimed, hasher.finalize(), 1_199_145_600, vec![])?;
    dev.probe_mut().ews(forged_at, &forged.to_bits())?;
    let shredded_at = DEVICE_BLOCKS - 32;
    dev.probe_mut().shred(shredded_at)?;
    let setup_ms = host_setup.elapsed().as_secs_f64() * 1e3;

    // --- per-block crawl reference ---------------------------------------
    // Both scans model a mount-time recovery: the sled starts from its
    // home position (track 0), not from wherever the setup heats left it —
    // otherwise a 64 MiB-wide cold seek dominates both timings equally and
    // hides the per-block difference being measured.
    let mut crawl_dev = dev.clone();
    crawl_dev.probe_mut().park_at(0);
    let host_crawl = Instant::now();
    let crawl_t0 = crawl_dev.probe().clock().elapsed_ns();
    let crawl_seeks0 = crawl_dev.probe().counters().seeks;
    let crawl_scan = crawl_dev.rebuild_registry_crawl()?;
    let crawl_ns = crawl_dev.probe().clock().elapsed_ns() - crawl_t0;
    let crawl_seeks = crawl_dev.probe().counters().seeks - crawl_seeks0;
    let crawl_host_ms = host_crawl.elapsed().as_secs_f64() * 1e3;

    // --- batched sieve ----------------------------------------------------
    dev.probe_mut().park_at(0);
    let host_batched = Instant::now();
    let batched_t0 = dev.probe().clock().elapsed_ns();
    let batched_seeks0 = dev.probe().counters().seeks;
    let batched_scan = dev.rebuild_registry()?;
    let batched_ns = dev.probe().clock().elapsed_ns() - batched_t0;
    let batched_seeks = dev.probe().counters().seeks - batched_seeks0;
    let batched_host_ms = host_batched.elapsed().as_secs_f64() * 1e3;

    // Batching must not change what the scan decides.
    assert_eq!(
        batched_scan, crawl_scan,
        "batched registry scan diverged from the per-block crawl"
    );
    assert_eq!(batched_scan.lines_found as u64, lines_to_heat);
    assert_eq!(
        batched_scan.suspicious_blocks,
        vec![forged_at, shredded_at],
        "standing evidence misfiled"
    );

    // --- incremental refresh on the now-populated registry ---------------
    dev.probe_mut().park_at(0);
    let refresh_t0 = dev.probe().clock().elapsed_ns();
    let refresh_scan = dev.refresh_registry()?;
    let refresh_ns = dev.probe().clock().elapsed_ns() - refresh_t0;
    assert_eq!(refresh_scan.lines_skipped as u64, lines_to_heat);

    let speedup = crawl_ns as f64 / batched_ns as f64;
    let widths = [26, 16, 16, 10];
    println!(
        "{}",
        row(&["path", "device time", "host time", "seeks"], &widths)
    );
    for (name, ns, host_ms, seeks) in [
        ("per-block crawl", crawl_ns, crawl_host_ms, crawl_seeks),
        ("batched sieve", batched_ns, batched_host_ms, batched_seeks),
    ] {
        println!(
            "{}",
            row(
                &[
                    name,
                    &format!("{:.1} ms", ns as f64 / 1e6),
                    &format!("{host_ms:.0} ms"),
                    &format!("{seeks}"),
                ],
                &widths
            )
        );
    }
    println!(
        "\n  {} lines recovered, {} suspicious blocks, incremental refresh {:.1} ms",
        batched_scan.lines_found,
        batched_scan.suspicious_blocks.len(),
        refresh_ns as f64 / 1e6,
    );
    println!(
        "  device-time speedup: {speedup:.2}x (acceptance bar: >= 3x) : {}",
        if speedup >= 3.0 { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "registry")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", DEVICE_BLOCKS)
                .set("bytes", device_bytes)
                .set("heated_lines", lines_to_heat)
                .set("line_order", LINE_ORDER as u64)
                .set(
                    "prefix_cells",
                    sero_core::device::REGISTRY_PREFIX_CELLS as u64,
                ),
        )
        .set(
            "metrics",
            Json::obj()
                .set("crawl_device_ms", crawl_ns as f64 / 1e6)
                .set("batched_device_ms", batched_ns as f64 / 1e6)
                .set("speedup", speedup)
                .set("refresh_device_ms", refresh_ns as f64 / 1e6)
                .set("lines_found", batched_scan.lines_found)
                .set("suspicious_blocks", batched_scan.suspicious_blocks.len())
                .set("crawl_seeks", crawl_seeks)
                .set("batched_seeks", batched_seeks),
        )
        .set(
            "host",
            Json::obj()
                .set("setup_ms", setup_ms)
                .set("crawl_ms", crawl_host_ms)
                .set("batched_ms", batched_host_ms),
        );
    let path = bench_out_path("registry");
    std::fs::write(&path, doc.render())?;
    println!("  wrote {}", path.display());

    assert!(
        speedup >= 3.0,
        "batched registry rebuild speedup {speedup:.2}x below the 3x acceptance bar"
    );
    Ok(())
}
