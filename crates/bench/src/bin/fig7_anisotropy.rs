//! FIG7 — Perpendicular anisotropy vs annealing temperature.
//!
//! Reproduces the paper's Figure 7 through the same measurement pipeline
//! the authors used: torque curves at 1350 kA/m, Fourier-transformed to
//! extract K, for samples annealed at six temperatures.
//!
//! Paper: "The perpendicular anisotropy of the unannealed film is
//! 80 kJ/m³. This value is maintained up to an annealing temperature of
//! 500 °C. Above 600 °C the value of K drops dramatically."

use sero_media::film::CoPtFilm;
use sero_media::torque::TorqueMagnetometer;

fn main() {
    println!("FIG7: perpendicular anisotropy K vs annealing temperature");
    println!("measurement: torque magnetometry, H = 1350 kA/m, Fourier sin(2θ) extraction\n");
    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "anneal [°C]", "K model", "K measured", "perpendicular?"
    );
    println!("{:>12} {:>14} {:>14}", "", "[kJ/m³]", "[kJ/m³]");

    let magnetometer = TorqueMagnetometer::paper_setup();
    let temps = [25.0, 300.0, 400.0, 500.0, 600.0, 650.0, 700.0];
    let mut measured = Vec::new();
    for &t in &temps {
        let film = if t <= 25.0 {
            CoPtFilm::as_grown()
        } else {
            CoPtFilm::as_grown().annealed(t)
        };
        let k_model = film.anisotropy_kj_per_m3();
        let k_meas = magnetometer.measure_k(&film);
        measured.push(k_meas);
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>16}",
            if t <= 25.0 {
                "as grown".to_string()
            } else {
                format!("{t:.0}")
            },
            k_model,
            k_meas,
            if film.is_perpendicular() { "yes" } else { "no" }
        );
    }

    println!("\n  K  {}", sero_bench::sparkline(&measured));
    println!(
        "     {}",
        temps
            .iter()
            .map(|t| format!("{t:>5.0}"))
            .collect::<String>()
    );

    let flat_to_500 = measured[..4].iter().all(|&k| k > 70.0);
    let collapse = measured.last().unwrap() < &10.0;
    println!("\npaper-vs-measured:");
    println!(
        "  'maintained up to 500 °C'      -> {}",
        if flat_to_500 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'drops dramatically above 600' -> {}",
        if collapse {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
