//! TAB-OVH — Hash space overhead vs line order; coding alternatives.
//!
//! Paper §8: "we have explained the low level system operations using a
//! simple Manchester encoding for the hash. For large N the amount of
//! space wasted is negligible (1 block out of 2^N), but the price to pay
//! is lack of flexibility. For small values of N we could employ more
//! efficient coding techniques."

use sero_codec::wom::{code_overheads, RivestShamir22};
use sero_core::line::Line;

fn main() {
    println!("TAB-OVH: space overhead of the heated hash block\n");
    println!(
        "{:>6} {:>8} {:>12} {:>14}",
        "N", "blocks", "data blocks", "overhead [%]"
    );
    for order in 1..=10u32 {
        let line = Line::new(0, order).expect("aligned at 0");
        println!(
            "{:>6} {:>8} {:>12} {:>14.3}",
            order,
            line.len(),
            line.data_len(),
            line.overhead_fraction() * 100.0
        );
    }

    println!("\nwrite-once coding alternatives for the hash area (dots per logical bit):");
    let o = code_overheads();
    println!("{:>28} {:>10} {:>34}", "code", "dots/bit", "notes");
    println!(
        "{:>28} {:>10.2} {:>34}",
        "Manchester (paper §3)", o.manchester, "self-tamper-evident (HH illegal)"
    );
    println!(
        "{:>28} {:>10.2} {:>34}",
        "RS <2,2>/3 WOM, 1 write", o.wom_single_write, "no illegal pattern"
    );
    println!(
        "{:>28} {:>10.2} {:>34}",
        "RS <2,2>/3 WOM, 2 writes", o.wom_two_writes, "allows one hash refresh"
    );

    // Demonstrate the WOM rewrite on actual cells.
    let first = RivestShamir22::encode_first(0b01);
    let second = RivestShamir22::encode_second(first, 0b10).expect("second write");
    println!(
        "\nWOM demo: value 01 -> cells {:?}; rewrite to 10 -> cells {:?} (only sets, never clears)",
        first, second
    );

    println!("\npaper-vs-measured:");
    let line10 = Line::new(0, 10).unwrap();
    println!(
        "  '1 block out of 2^N negligible for large N' -> N=10: {:.2} % : REPRODUCED",
        line10.overhead_fraction() * 100.0
    );
    println!(
        "  'more efficient coding for small N'         -> WOM {:.2} vs Manchester {:.2} dots/bit : REPRODUCED",
        o.wom_two_writes, o.manchester
    );
}
