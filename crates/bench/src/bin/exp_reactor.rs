//! EXP-REACTOR — readiness batching against the hand-off rate.
//!
//! PR 9 replaced the blocking thread-per-connection daemon with a
//! readiness-driven reactor: every request readable in one event-loop
//! sweep dispatches as a *single* [`ConcurrentFs::handle_batch`]
//! combining window, so n concurrent clients form the depth-n admission
//! batches the flat combiner wants. This experiment measures whether the
//! wire actually delivers the depth curve PR 7 proved in-process:
//!
//! * **Framed ready-set sweep** (the compared `"metrics"`): the same
//!   shuffled read script replays at ready-set sizes 1/2/4/8/16 — each
//!   window is encoded to wire frames, fed through a [`FrameAssembler`]
//!   in deterministically varied byte chunks (the reactor's receive
//!   path), decoded, and dispatched as one batch. Device nanoseconds are
//!   the metric; `throughput_x8` is asserted **≥ 2.5×** like
//!   `exp_concurrency`, and every ready-set size must produce
//!   byte-identical responses.
//! * **Framed tamper drill** (also `"metrics"`): a heated line is
//!   tampered through the raw probe; the framed `verify` must answer
//!   `TAMPER-DETECTED` — the detection guarantee survives reassembly.
//! * **Byte-identity across daemons**: the identical command script —
//!   including a raw-write tamper and its verify — runs over real
//!   sockets against a pool-mode daemon and a reactor daemon; every
//!   response payload must match byte-for-byte (`responses_identical`).
//! * **Reactor swarm** (the informational `"host"`): real `sero-client`
//!   swarms of 1/2/4/8/16 closed-loop connections against a reactor
//!   daemon, plus an idle-connection axis (0/128/256 silent sockets held
//!   open alongside 8 active clients). Wall numbers land under `"host"`;
//!   the **blocking** acceptance check is the in-binary assertion that
//!   the 8-client swarm's ops per *device*-second reaches ≥ 0.8× the
//!   simulated depth-8 curve — the swarm must track the admission curve
//!   instead of flatlining at the hand-off rate.
//!
//! Emits `BENCH_reactor.json` (schema `sero-bench/v1`, compared
//! **blocking** in CI) and `reactor_trace.json` (per-swarm latency
//! tails; a CI artifact, never compared). `SERO_BENCH_FAST=1` shrinks
//! only the host swarms — the deterministic phases are identical in both
//! modes.

use sero_bench::json::Json;
use sero_bench::{
    bench_out_path, device_clock_ns, fast_mode, ns_to_us as us, percentile_ns as percentile, row,
    trace_out_path,
};
use sero_client::SeroClient;
use sero_core::device::SeroDevice;
use sero_fs::concurrent::ConcurrentFs;
use sero_fs::fs::{FsConfig, SeroFs};
use sero_proto::frame::{encode_request, read_frame, write_frame, FrameAssembler, FrameKind};
use sero_proto::{ErrorCode, Request, Response, WireClass};
use sero_server::{SeroServer, ServerConfig, ServerMode};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Same hot population as `exp_concurrency`, so the ready-set curve here
/// is directly comparable to the in-process depth curve there.
const HOT_FILES: usize = 384;
const HOT_BYTES: usize = 400;

/// Archival files for the tamper drill.
const ARCHIVE_FILES: usize = 4;
const ARCHIVE_BYTES: usize = 1100;

/// Reads in the ready-set sweep script (divisible by every swept size).
const SWEEP_OPS: usize = 192;

const DEVICE_BLOCKS: u64 = 8192;

/// The swarm the acceptance bar applies to, and its simulated twin.
const TRACKED_CLIENTS: usize = 8;

/// Blocking bar: the 8-client swarm's ops per device-second must reach
/// this fraction of the simulated depth-8 admission curve.
const TRACKING_FLOOR: f64 = 0.8;

/// Deterministic shuffle source.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn hot_name(i: usize) -> String {
    format!("hot-{i:03}")
}

fn archive_name(i: usize) -> String {
    format!("arch-{i:02}")
}

/// The benchmark population, identical for every phase and both daemons.
fn build_fs() -> ConcurrentFs {
    let fs = SeroFs::format(SeroDevice::with_blocks(DEVICE_BLOCKS), FsConfig::default())
        .expect("format succeeds");
    let cfs = ConcurrentFs::new(fs);
    for i in 0..HOT_FILES {
        let resp = cfs.handle(Request::Create {
            name: hot_name(i),
            data: vec![i as u8 + 1; HOT_BYTES],
            class: WireClass::Normal,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    for i in 0..ARCHIVE_FILES {
        let resp = cfs.handle(Request::Create {
            name: archive_name(i),
            data: vec![0x40 | i as u8; ARCHIVE_BYTES],
            class: WireClass::Archival,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    cfs
}

/// The shuffled read script every ready-set size replays identically.
fn read_script(ops: usize) -> Vec<Request> {
    let mut lcg = Lcg(0x5EC0_2008);
    (0..ops)
        .map(|_| Request::Read {
            name: hot_name((lcg.next() % HOT_FILES as u64) as usize),
        })
        .collect()
}

/// Replays `script` at one ready-set size through the reactor's receive
/// path: each window's frames are concatenated (the bytes `depth`
/// readable sockets hold), fed to the assembler in deterministically
/// varied chunk sizes, decoded, and dispatched as one combining window.
/// Returns (device ns, responses, frames reassembled, chunks fed).
fn run_ready_set(depth: usize, script: &[Request]) -> (u128, Vec<Response>, u64, u64) {
    let cfs = build_fs();
    cfs.with_fs(|fs| fs.device_mut().probe_mut().park_at(0));
    let start = cfs.with_fs(|fs| device_clock_ns(fs));
    let mut asm = FrameAssembler::new();
    let mut lcg = Lcg(0xC41B_EE75 ^ depth as u64);
    let mut responses = Vec::with_capacity(script.len());
    let mut frames = 0u64;
    let mut chunks = 0u64;
    for window in script.chunks(depth) {
        let mut wire = Vec::new();
        for req in window {
            wire.extend_from_slice(&encode_request(req).expect("bench request fits a frame"));
        }
        let mut batch = Vec::with_capacity(window.len());
        let mut at = 0;
        while at < wire.len() {
            let size = (1 + (lcg.next() as usize % 96)).min(wire.len() - at);
            asm.push(&wire[at..at + size]);
            at += size;
            chunks += 1;
            while let Some((kind, payload)) = asm.next_frame().expect("own frames decode") {
                assert_eq!(kind, FrameKind::Request);
                batch.push(Request::decode(&payload).expect("own payload decodes"));
                frames += 1;
            }
        }
        assert_eq!(batch.len(), window.len(), "reassembly lost a frame");
        responses.extend(cfs.handle_batch(batch));
    }
    let elapsed = cfs.with_fs(|fs| device_clock_ns(fs)) - start;
    (elapsed, responses, frames, chunks)
}

/// The framed tamper drill: heat an archive file, rewrite one protected
/// block through the raw probe, and drive `verify` through the frame
/// codec. Returns 1 if (and only if) the evidence surfaced.
fn run_framed_tamper() -> u64 {
    let cfs = build_fs();
    let line = match cfs.handle(Request::Heat {
        name: archive_name(0),
        metadata: b"exp-reactor".to_vec(),
        timestamp: 1_199_145_600,
    }) {
        Response::Heated { line } => line.to_line().expect("wire line"),
        other => panic!("heat refused: {other:?}"),
    };
    cfs.with_fs(|fs| {
        fs.device_mut()
            .probe_mut()
            .mws(line.start() + 1, &[0xEE; 512])
            .expect("raw write");
    });
    let framed = encode_request(&Request::Verify {
        name: archive_name(0),
    })
    .expect("bench request fits a frame");
    let mut asm = FrameAssembler::new();
    asm.push(&framed);
    let (_, payload) = asm
        .next_frame()
        .expect("own frame decodes")
        .expect("complete frame");
    let verdict = cfs.handle(Request::decode(&payload).expect("own payload"));
    match verdict {
        Response::Error(e) if e.code == ErrorCode::TamperDetected => 1,
        other => panic!("tampered line verified clean: {other:?}"),
    }
}

/// Runs the identical command script — creates, reads, a heat, a raw
/// tamper, its verify, and status queries — over a real socket against a
/// daemon in `mode`. Returns every response payload, byte-for-byte.
fn run_wire_script(mode: ServerMode) -> Vec<Vec<u8>> {
    let server = SeroServer::bind_shared(
        "127.0.0.1:0",
        build_fs(),
        ServerConfig {
            mode,
            allow_raw: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("deadline");

    let mut call = |req: &Request| -> Vec<u8> {
        write_frame(&mut conn, FrameKind::Request, &req.encode()).expect("send");
        let (_, payload) = read_frame(&mut conn).expect("recv").expect("response");
        payload
    };

    let mut outs = Vec::new();
    for i in 0..ARCHIVE_FILES {
        outs.push(call(&Request::Read {
            name: archive_name(i),
        }));
    }
    let heat_payload = call(&Request::Heat {
        name: archive_name(1),
        metadata: b"wire-script".to_vec(),
        timestamp: 1_199_145_601,
    });
    let line = match Response::decode(&heat_payload).expect("heat response") {
        Response::Heated { line } => line.to_line().expect("wire line"),
        other => panic!("heat refused: {other:?}"),
    };
    outs.push(heat_payload);
    outs.push(call(&Request::RawWrite {
        pba: line.start() + 1,
        data: vec![0xEE; 512],
    }));
    let verify_payload = call(&Request::Verify {
        name: archive_name(1),
    });
    match Response::decode(&verify_payload).expect("verify response") {
        Response::Error(e) if e.code == ErrorCode::TamperDetected => {}
        other => panic!("tamper evidence missing over the wire: {other:?}"),
    }
    outs.push(verify_payload);
    outs.push(call(&Request::Verify {
        name: archive_name(2),
    }));
    outs.push(call(&Request::Stat {
        name: archive_name(1),
    }));
    outs.push(call(&Request::list_all()));
    outs.push(call(&Request::FleetStatus));
    drop(conn);
    handle.shutdown();
    outs
}

struct Swarm {
    clients: usize,
    idle: usize,
    ops: usize,
    wall_ms: f64,
    device_ns: u128,
    latencies: Vec<u128>,
}

impl Swarm {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / (self.wall_ms / 1e3)
    }

    fn ops_per_device_s(&self) -> f64 {
        self.ops as f64 / (self.device_ns as f64 / 1e9)
    }
}

/// Runs `clients` closed-loop read clients (plus `idle` silent held
/// sockets) against a reactor daemon sharing our [`ConcurrentFs`], so
/// the simulated device clock is observable from outside.
fn run_swarm(clients: usize, ops_per_client: usize, idle: usize) -> Swarm {
    let cfs = build_fs();
    let shared = cfs.clone();
    shared.with_fs(|fs| fs.device_mut().probe_mut().park_at(0));
    let server = SeroServer::bind_shared(
        "127.0.0.1:0",
        cfs,
        ServerConfig {
            mode: ServerMode::Reactor,
            max_connections: 2048,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr: SocketAddr = handle.addr();

    // The idle population: connected, silent, and held open throughout.
    let mut idle_conns: Vec<TcpStream> = (0..idle)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    let device_start = shared.with_fs(|fs| device_clock_ns(fs));
    let wall = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = SeroClient::connect(addr).expect("connect");
                let mut lcg = Lcg(0xFEED ^ c as u64);
                let mut latencies = Vec::with_capacity(ops_per_client);
                for _ in 0..ops_per_client {
                    let name = hot_name((lcg.next() % HOT_FILES as u64) as usize);
                    let t = Instant::now();
                    client.read(&name).expect("read");
                    latencies.push(t.elapsed().as_nanos());
                }
                latencies
            })
        })
        .collect();
    let latencies: Vec<u128> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("swarm client"))
        .collect();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let device_ns = shared.with_fs(|fs| device_clock_ns(fs)) - device_start;

    // The idle sockets must have survived the whole swarm: a sampled few
    // still answer a ping each.
    for conn in idle_conns.iter_mut().take(16) {
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("deadline");
        write_frame(conn, FrameKind::Request, &Request::Ping.encode()).expect("idle ping");
        let (_, payload) = read_frame(conn).expect("idle recv").expect("idle response");
        assert_eq!(
            Response::decode(&payload).expect("pong"),
            Response::Pong,
            "an idle connection went dead under load"
        );
    }
    drop(idle_conns);
    handle.shutdown();
    Swarm {
        clients,
        idle,
        ops: clients * ops_per_client,
        wall_ms,
        device_ns,
        latencies,
    }
}

fn swarm_json(s: &Swarm) -> Json {
    Json::obj()
        .set("ops", s.ops)
        .set("wall_ms", s.wall_ms)
        .set("ops_per_s", s.ops_per_s())
        .set("device_ms", s.device_ns as f64 / 1e6)
        .set("ops_per_device_s", s.ops_per_device_s())
        .set("p50_us", us(percentile(&s.latencies, 0.50)))
        .set("p99_us", us(percentile(&s.latencies, 0.99)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    let ops_per_client = if fast { 150 } else { 400 };
    let idle_ops_per_client = if fast { 80 } else { 200 };
    let swarm_sizes = [1usize, 2, 4, 8, 16];
    let idle_sizes = [0usize, 128, 256];
    println!(
        "EXP-REACTOR: {HOT_FILES} hot files, {SWEEP_OPS}-op script, ready sets 1/2/4/8/16, \
         swarms {swarm_sizes:?} x {ops_per_client} ops{}\n",
        if fast { " (fast mode)" } else { "" },
    );

    // --- framed ready-set sweep (deterministic) ---------------------------
    let script = read_script(SWEEP_OPS);
    let depths = [1usize, 2, 4, 8, 16];
    let mut device_ns = Vec::new();
    let mut frames_total = 0u64;
    let mut chunks_total = 0u64;
    let mut baseline: Option<Vec<Response>> = None;
    let widths = [10, 14, 14, 10, 10];
    println!(
        "{}",
        row(
            &["ready-set", "device ms", "ops/dev-s", "frames", "chunks"],
            &widths
        )
    );
    for &depth in &depths {
        let (ns, responses, frames, chunks) = run_ready_set(depth, &script);
        match &baseline {
            None => baseline = Some(responses),
            Some(base) => assert_eq!(
                base, &responses,
                "ready-set {depth} changed a response — reassembly must be invisible"
            ),
        }
        println!(
            "{}",
            row(
                &[
                    &format!("{depth}"),
                    &format!("{:.2}", ns as f64 / 1e6),
                    &format!("{:.0}", SWEEP_OPS as f64 / (ns as f64 / 1e9)),
                    &format!("{frames}"),
                    &format!("{chunks}"),
                ],
                &widths
            )
        );
        device_ns.push(ns);
        frames_total += frames;
        chunks_total += chunks;
    }
    let ratio = |d: usize| {
        device_ns[0] as f64 / device_ns[depths.iter().position(|&x| x == d).unwrap()] as f64
    };
    let (x2, x4, x8, x16) = (ratio(2), ratio(4), ratio(8), ratio(16));
    let sim8_ops_per_device_s =
        SWEEP_OPS as f64 / (device_ns[depths.iter().position(|&x| x == 8).unwrap()] as f64 / 1e9);
    println!("\n  ready-set 8: {x8:.2}x the one-at-a-time schedule (bar: >= 2.5x)");
    assert!(
        x8 >= 2.5,
        "framed admission merging must clear the 2.5x bar, got {x8:.2}x"
    );

    // --- framed tamper drill ----------------------------------------------
    let tampered = run_framed_tamper();
    println!("  framed tamper drill: evidence found ({tampered} line)");

    // --- byte-identity across daemons -------------------------------------
    let pool_outs = run_wire_script(ServerMode::Pool);
    let reactor_outs = run_wire_script(ServerMode::Reactor);
    assert_eq!(
        pool_outs, reactor_outs,
        "reactor responses must be byte-identical to the blocking daemon"
    );
    let wire_script_commands = reactor_outs.len() as u64;
    println!(
        "  wire script: {wire_script_commands} commands byte-identical across pool and reactor \
         daemons (tamper evidence included)\n"
    );

    // --- reactor swarms (host) --------------------------------------------
    let swarms: Vec<Swarm> = swarm_sizes
        .iter()
        .map(|&n| run_swarm(n, ops_per_client, 0))
        .collect();
    let widths = [10, 8, 12, 12, 14, 12];
    println!(
        "{}",
        row(
            &["clients", "ops", "p50", "p99", "ops/dev-s", "ops/s"],
            &widths
        )
    );
    for s in &swarms {
        println!(
            "{}",
            row(
                &[
                    &format!("{}", s.clients),
                    &format!("{}", s.ops),
                    &format!("{:.0} us", us(percentile(&s.latencies, 0.50))),
                    &format!("{:.0} us", us(percentile(&s.latencies, 0.99))),
                    &format!("{:.0}", s.ops_per_device_s()),
                    &format!("{:.0}", s.ops_per_s()),
                ],
                &widths
            )
        );
    }

    // The acceptance bar: the 8-client swarm must track the simulated
    // depth-8 admission curve on the only fair axis — device time.
    let swarm8 = swarms
        .iter()
        .find(|s| s.clients == TRACKED_CLIENTS)
        .expect("tracked swarm present");
    let tracking = swarm8.ops_per_device_s() / sim8_ops_per_device_s;
    println!(
        "\n  tracking: swarm-8 {:.0} ops/dev-s vs simulated depth-8 {:.0} ops/dev-s \
         = {tracking:.2}x (floor: {TRACKING_FLOOR})",
        swarm8.ops_per_device_s(),
        sim8_ops_per_device_s,
    );
    assert!(
        tracking >= TRACKING_FLOOR,
        "the swarm must track the simulated depth-8 admission curve within 20%, \
         got {tracking:.2}x — readiness batching is not forming deep windows"
    );

    // --- idle-connection axis (host) --------------------------------------
    let idle_swarms: Vec<Swarm> = idle_sizes
        .iter()
        .map(|&idle| run_swarm(TRACKED_CLIENTS, idle_ops_per_client, idle))
        .collect();
    for s in &idle_swarms {
        println!(
            "  idle axis: {} idle + {} active -> {:.0} ops/s, p99 {:.0} us",
            s.idle,
            s.clients,
            s.ops_per_s(),
            us(percentile(&s.latencies, 0.99)),
        );
    }

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "reactor")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", DEVICE_BLOCKS)
                .set("hot_files", HOT_FILES)
                .set("hot_bytes", HOT_BYTES)
                .set("archive_files", ARCHIVE_FILES)
                .set("archive_bytes", ARCHIVE_BYTES)
                .set("sweep_ops", SWEEP_OPS)
                .set("ops_per_client", ops_per_client)
                .set("idle_ops_per_client", idle_ops_per_client),
        )
        .set(
            "metrics",
            Json::obj()
                .set("ready_1_device_ms", device_ns[0] as f64 / 1e6)
                .set("ready_2_device_ms", device_ns[1] as f64 / 1e6)
                .set("ready_4_device_ms", device_ns[2] as f64 / 1e6)
                .set("ready_8_device_ms", device_ns[3] as f64 / 1e6)
                .set("ready_16_device_ms", device_ns[4] as f64 / 1e6)
                .set("throughput_x2", x2)
                .set("throughput_x4", x4)
                .set("throughput_x8", x8)
                .set("throughput_x16", x16)
                .set("sim_depth8_ops_per_device_s", sim8_ops_per_device_s)
                .set("frames_reassembled", frames_total)
                .set("reassembly_chunks", chunks_total)
                .set("wire_script_commands", wire_script_commands)
                .set("responses_identical", 1u64)
                .set("tampered", tampered),
        )
        .set("host", {
            let mut host = Json::obj().set(
                "tracking",
                Json::obj()
                    .set("swarm_8_ops_per_device_s", swarm8.ops_per_device_s())
                    .set("sim_depth8_ops_per_device_s", sim8_ops_per_device_s)
                    .set("ratio", tracking)
                    .set("floor", TRACKING_FLOOR),
            );
            for s in &swarms {
                host = host.set(&format!("swarm_{}", s.clients), swarm_json(s));
            }
            for s in &idle_swarms {
                host = host.set(&format!("idle_{}", s.idle), swarm_json(s));
            }
            host
        });
    let path = bench_out_path("reactor");
    std::fs::write(&path, doc.render())?;
    println!("\n  wrote {}", path.display());

    // Latency tails per swarm — a CI artifact for humans, never compared.
    let entries: Vec<Json> = swarms
        .iter()
        .chain(idle_swarms.iter())
        .map(|s| {
            Json::obj()
                .set("clients", s.clients)
                .set("idle", s.idle)
                .set("ops", s.ops)
                .set("p50_us", us(percentile(&s.latencies, 0.50)))
                .set("p90_us", us(percentile(&s.latencies, 0.90)))
                .set("p99_us", us(percentile(&s.latencies, 0.99)))
                .set("max_us", us(*s.latencies.iter().max().expect("ops")))
                .set("wall_ms", s.wall_ms)
                .set("ops_per_s", s.ops_per_s())
                .set("ops_per_device_s", s.ops_per_device_s())
        })
        .collect();
    let trace = Json::obj()
        .set("schema", "sero-bench-trace/v1")
        .set("bench", "reactor")
        .set("swarms", Json::Arr(entries));
    let trace_path = trace_out_path("reactor_trace.json");
    std::fs::write(&trace_path, trace.render())?;
    println!("  wrote {}", trace_path.display());

    Ok(())
}
