//! EXP-FLEET — foreground latency and detection latency under
//! fleet-coordinated background scrub across four devices.
//!
//! PR 4 made one device's pass polite; this experiment coordinates
//! passes across a *fleet*. Four file systems each serve an open-loop
//! stream of mixed read/overwrite traffic
//! ([`sero_workload::MixedTrafficWorkload`], one decorrelated stream per
//! device) while a [`sero_core::fleet::FleetScheduler`] drains all four
//! passes in the idle gaps:
//!
//! * passes are **staggered** — at most `MAX_CONCURRENT` run at once;
//! * budgets are **adaptive** — each device's grant derives from its
//!   [`sero_core::device::LoadProbe`] idle measurement, re-divided from
//!   one global per-quantum allowance on every round;
//! * ordering is **suspicion-first** — one device is tampered *and*
//!   flagged (a refused overwrite of a frozen file) up front, so its
//!   pass is admitted first and granted first, and must complete before
//!   any clean peer's.
//!
//! Two phases on clones of the same populated fleet: **off** (no scrub;
//! the latency baseline) and **fleet** (coordinated scrub). A request's
//! latency is `completion − arrival` on its own device clock; the fleet
//! p99 aggregates all four devices. The acceptance bar: fleet p99 ≤
//! 1.15× the no-scrub p99 while every pass completes with evidence
//! byte-identical to exclusive per-device passes and the flagged
//! device's pass finishes first.
//!
//! Emits `BENCH_fleet.json` (schema `sero-bench/v1`, compared
//! **blocking** in CI) and `fleet_trace.json` (per-member pass trace +
//! latency tails; uploaded as a CI artifact, never compared).
//! `SERO_BENCH_FAST=1` shrinks the traffic streams for CI.

use sero_bench::json::Json;
use sero_bench::{
    apply_ops, bench_out_path, device_clock_ns as clock, fast_mode,
    idle_device_until as idle_until, ns_to_us as us, percentile_ns as percentile, row,
    trace_out_path,
};
use sero_core::device::SeroDevice;
use sero_core::fleet::{FleetConfig, FleetSliceOutcome};
use sero_core::scrub::{ScrubConfig, ScrubReport};
use sero_fs::fs::{FleetScrub, FsConfig, SeroFs};
use sero_workload::MixedTrafficWorkload;
use std::time::Instant;

const SEED: u64 = 20080617;

/// Fleet size: the acceptance criteria ask for ≥ 4 devices.
const DEVICES: usize = 4;

/// The member tampered + flagged up front (suspicion-first must finish
/// its pass before any clean peer's).
const VICTIM: usize = 2;

/// Fixed inter-arrival time of foreground requests on each device clock
/// (same 80%-utilisation reasoning as `exp_sched`).
const INTERARRIVAL_NS: u64 = 160_000_000; // 160 ms

/// The fleet pass starts at this per-device op index — mid-traffic, the
/// way a fleet-wide verification cron fires on serving stores.
const SCRUB_START_OP: usize = 20;

/// At most this many member passes in flight at once.
const MAX_CONCURRENT: usize = 2;

/// Fleet quantum and global per-quantum scrub allowance. The global
/// budget is deliberately *less* than `DEVICES ×` the adaptive ceiling,
/// so the grant walk's priority actually bites.
const QUANTUM_NS: u64 = 10_000_000;
const GLOBAL_BUDGET_NS: u64 = 12_000_000;

struct PhaseResult {
    /// Per-request latencies across the whole fleet, device ns.
    latencies: Vec<u128>,
    /// Per member: device time from fleet-scrub start to pass completion.
    done_ns: Vec<Option<u128>>,
}

/// Replays per-device `traffic` open-loop on every member, granting the
/// fleet scrub slices in each device's idle gap (retune once per round,
/// then per-member ticks — the per-fs request-loop shape).
fn run_phase(
    fleet: &mut [SeroFs],
    traffic: &[Vec<sero_workload::Op>],
    mut scrub: Option<&mut FleetScrub>,
    config: &FleetConfig,
) -> PhaseResult {
    let ops = traffic[0].len();
    let t_start: Vec<u128> = fleet.iter().map(clock).collect();
    let mut latencies = Vec::with_capacity(DEVICES * ops);
    let mut scrub_started: Vec<Option<u128>> = vec![None; DEVICES];
    let mut done_ns: Vec<Option<u128>> = vec![None; DEVICES];

    let note_done = |sc: &FleetScrub,
                     fleet: &[SeroFs],
                     started: &[Option<u128>],
                     done: &mut Vec<Option<u128>>| {
        for d in 0..DEVICES {
            if done[d].is_none()
                && sc.member_state(d) == sero_core::fleet::FleetMemberState::Complete
            {
                done[d] = Some(clock(&fleet[d]) - started[d].unwrap_or(0));
            }
        }
    };

    // The index drives every device's arrival schedule, not just the
    // traffic lookup — iterating `traffic` would invert the round/device
    // nesting the open-loop model needs.
    #[allow(clippy::needless_range_loop)]
    for i in 0..ops {
        if let Some(sc) = scrub.as_deref_mut().filter(|_| i >= SCRUB_START_OP) {
            sc.retune(fleet);
        }
        for d in 0..DEVICES {
            let arrival = t_start[d] + (i as u128 + 1) * INTERARRIVAL_NS as u128;
            if let Some(sc) = scrub.as_deref_mut().filter(|_| i >= SCRUB_START_OP) {
                scrub_started[d].get_or_insert_with(|| clock(&fleet[d]));
                while !sc.is_complete() && clock(&fleet[d]) < arrival {
                    match sc
                        .tick_member(d, &mut fleet[d])
                        .expect("fleet slice failed")
                    {
                        FleetSliceOutcome::Ran { .. } => {}
                        FleetSliceOutcome::Throttled { resume_at_ns } => {
                            if resume_at_ns >= arrival {
                                break; // quantum reopens after the request
                            }
                            idle_until(&mut fleet[d], resume_at_ns);
                        }
                        // Starved / waiting members just serve foreground;
                        // the budget or slot frees on a later round.
                        FleetSliceOutcome::Starved
                        | FleetSliceOutcome::Waiting
                        | FleetSliceOutcome::Paused
                        | FleetSliceOutcome::Idle => break,
                    }
                }
                note_done(sc, fleet, &scrub_started, &mut done_ns);
            }
            idle_until(&mut fleet[d], arrival);
            let stats = apply_ops(&mut fleet[d], std::slice::from_ref(&traffic[d][i]), 0);
            assert_eq!(stats.refused, 0, "steady-state traffic never refused");
            latencies.push(clock(&fleet[d]) - arrival);
        }
    }

    // Traffic over: drain the remaining passes on idle devices.
    if let Some(sc) = scrub {
        for d in 0..DEVICES {
            scrub_started[d].get_or_insert_with(|| clock(&fleet[d]));
        }
        let mut guard = 0usize;
        while !sc.is_complete() {
            guard += 1;
            assert!(guard < 1_000_000, "fleet drain failed to converge");
            for (d, outcome) in sc.tick(fleet).expect("fleet slice failed") {
                match outcome {
                    FleetSliceOutcome::Throttled { resume_at_ns } => {
                        idle_until(&mut fleet[d], resume_at_ns);
                    }
                    FleetSliceOutcome::Starved => {
                        let target = clock(&fleet[d]) + config.quantum_ns as u128;
                        idle_until(&mut fleet[d], target);
                    }
                    _ => {}
                }
            }
            note_done(sc, fleet, &scrub_started, &mut done_ns);
        }
        note_done(sc, fleet, &scrub_started, &mut done_ns);
    }
    PhaseResult { latencies, done_ns }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    // Geometry and population match in both modes so seek costs and pass
    // lengths match; fast mode shrinks only the traffic streams.
    let device_blocks: u64 = 8_192;
    let workload = MixedTrafficWorkload {
        archival_files: 96,
        archival_bytes: 5 * 1024,
        hot_files: 8,
        hot_bytes: 4 * 1024,
        operations: if fast { 96 } else { 240 },
        read_fraction: 0.7,
    };
    let config = FleetConfig {
        quantum_ns: QUANTUM_NS,
        global_budget_ns: GLOBAL_BUDGET_NS,
        max_concurrent: MAX_CONCURRENT,
        ..FleetConfig::default()
    };

    println!(
        "EXP-FLEET: {} devices x {} MiB, {} heated lines each, {} ops/device every {} ms{}\n",
        DEVICES,
        device_blocks * 512 / (1024 * 1024),
        workload.archival_files,
        workload.operations,
        INTERARRIVAL_NS / 1_000_000,
        if fast { " (fast mode)" } else { "" },
    );

    // --- populate one fleet, clone per phase -----------------------------
    let host_setup = Instant::now();
    let mut base: Vec<SeroFs> = Vec::with_capacity(DEVICES);
    for d in 0..DEVICES {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(device_blocks), FsConfig::default())?;
        let seed = MixedTrafficWorkload::device_seed(SEED, d);
        apply_ops(&mut fs, &workload.setup_ops(seed), 1_199_145_600);
        base.push(fs);
    }
    // Tamper one archival line on the victim behind the protocol's back,
    // AND flag it through the protocol (a refused overwrite of frozen
    // data) so the fleet's suspicion snapshot sees the device as hot.
    let victim_file = format!("archive-{:04}", workload.archival_files / 2);
    let victim_line = base[VICTIM]
        .stat(&victim_file)?
        .heated
        .expect("archival files are heated");
    base[VICTIM]
        .device_mut()
        .probe_mut()
        .mws(victim_line.start() + 1, &[0xEE; 512])?;
    assert!(base[VICTIM]
        .write(
            &victim_file,
            b"rewrite history",
            sero_fs::alloc::WriteClass::Normal
        )
        .is_err());
    let setup_ms = host_setup.elapsed().as_secs_f64() * 1e3;

    // The exclusive-pass reference evidence, per device, on clones.
    let exclusive: Vec<ScrubReport> = base
        .clone()
        .iter_mut()
        .map(|fs| fs.scrub(&ScrubConfig::with_workers(1)).expect("scrub"))
        .collect();

    let traffic: Vec<Vec<sero_workload::Op>> = (0..DEVICES)
        .map(|d| workload.traffic_ops(MixedTrafficWorkload::device_seed(SEED, d)))
        .collect();

    // --- phase 1: scrub off ----------------------------------------------
    let mut fleet_off = base.clone();
    let host_off = Instant::now();
    let off = run_phase(&mut fleet_off, &traffic, None, &config);
    let off_host_ms = host_off.elapsed().as_secs_f64() * 1e3;

    // --- phase 2: coordinated fleet scrub --------------------------------
    let mut fleet_on = base.clone();
    let mut scrub = SeroFs::fleet_scrub(&fleet_on, config)?;
    let host_fleet = Instant::now();
    let fleet = run_phase(&mut fleet_on, &traffic, Some(&mut scrub), &config);
    let fleet_host_ms = host_fleet.elapsed().as_secs_f64() * 1e3;

    // Every pass completed, staggered under the ceiling, with evidence
    // identical to the exclusive per-device passes.
    assert!(scrub.is_complete());
    let peak = scrub.scheduler().peak_active();
    assert!(
        peak <= MAX_CONCURRENT,
        "stagger ceiling breached: {peak} concurrent passes"
    );
    let mut tampered_total = 0;
    for (d, expected) in exclusive.iter().enumerate() {
        let report = scrub.member_report(d).expect("every member admitted");
        assert_eq!(
            report.outcomes, expected.outcomes,
            "member {d} evidence diverged from its exclusive pass"
        );
        tampered_total += report.summary.tampered;
        assert_eq!(fleet_on[d].device().scrub_epoch(), 1);
    }
    assert_eq!(tampered_total, 1, "exactly the planted evidence");
    let completion = scrub.completion_order().to_vec();
    assert_eq!(
        completion[0], VICTIM,
        "suspicion-first must finish the flagged device's pass first"
    );

    let p50_off = percentile(&off.latencies, 0.50);
    let p99_off = percentile(&off.latencies, 0.99);
    let p50_fleet = percentile(&fleet.latencies, 0.50);
    let p99_fleet = percentile(&fleet.latencies, 0.99);
    let max_off = *off.latencies.iter().max().expect("ops");
    let max_fleet = *fleet.latencies.iter().max().expect("ops");
    let ratio = p99_fleet as f64 / p99_off as f64;
    let victim_done_ms = fleet.done_ns[VICTIM].expect("victim pass completed") as f64 / 1e6;
    let last_done_ms = fleet
        .done_ns
        .iter()
        .map(|d| d.expect("all passes completed"))
        .max()
        .unwrap() as f64
        / 1e6;

    let widths = [18, 14, 14, 12, 12];
    println!(
        "{}",
        row(
            &["phase", "p50 latency", "p99 latency", "max", "ops"],
            &widths
        )
    );
    for (name, lat, p50, p99, max) in [
        ("scrub off", &off.latencies, p50_off, p99_off, max_off),
        (
            "scrub fleet",
            &fleet.latencies,
            p50_fleet,
            p99_fleet,
            max_fleet,
        ),
    ] {
        println!(
            "{}",
            row(
                &[
                    name,
                    &format!("{:.0} us", us(p50)),
                    &format!("{:.0} us", us(p99)),
                    &format!("{:.0} us", us(max)),
                    &format!("{}", lat.len()),
                ],
                &widths
            )
        );
    }
    println!(
        "\n  p99 inflation: fleet {ratio:.3}x (bar: <= 1.15x) : {}",
        if ratio <= 1.15 { "PASS" } else { "FAIL" }
    );
    println!(
        "  passes: victim done {victim_done_ms:.1} ms, last done {last_done_ms:.1} ms, \
         completion order {completion:?}, peak concurrency {peak}"
    );

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "fleet")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("devices", DEVICES)
                .set("blocks", device_blocks)
                .set("bytes", device_blocks * 512)
                .set("heated_lines", workload.archival_files)
                .set("hot_files", workload.hot_files)
                .set("operations", workload.operations)
                .set("interarrival_ns", INTERARRIVAL_NS)
                .set("quantum_ns", QUANTUM_NS)
                .set("global_budget_ns", GLOBAL_BUDGET_NS)
                .set("max_concurrent", MAX_CONCURRENT),
        )
        .set(
            "metrics",
            Json::obj()
                .set("p50_off_us", us(p50_off))
                .set("p99_off_us", us(p99_off))
                .set("p50_fleet_us", us(p50_fleet))
                .set("p99_fleet_us", us(p99_fleet))
                .set("p99_fleet_over_off", ratio)
                .set("max_off_us", us(max_off))
                .set("max_fleet_us", us(max_fleet))
                .set("victim_pass_ms", victim_done_ms)
                .set("last_pass_ms", last_done_ms)
                .set("victim_finished_first", u64::from(completion[0] == VICTIM))
                .set("peak_active", peak)
                .set(
                    "lines_verified",
                    exclusive.iter().map(|r| r.summary.lines).sum::<usize>(),
                )
                .set("tampered", tampered_total),
        )
        .set(
            "host",
            Json::obj()
                .set("setup_ms", setup_ms)
                .set("off_ms", off_host_ms)
                .set("fleet_ms", fleet_host_ms),
        );
    let path = bench_out_path("fleet");
    std::fs::write(&path, doc.render())?;
    println!("  wrote {}", path.display());

    // The fleet trace: per-member pass records plus the fleet latency
    // tails — a CI artifact for humans, never compared.
    let members: Vec<Json> = (0..DEVICES)
        .map(|d| {
            let progress = scrub.scheduler().member_progress(d).expect("admitted");
            Json::obj()
                .set("member", d)
                .set("flagged", u64::from(d == VICTIM))
                .set("slices", progress.slices)
                .set("verified", progress.verified)
                .set("tampered", progress.tampered)
                .set("scrub_device_ms", progress.scrub_device_ns as f64 / 1e6)
                .set(
                    "done_ms",
                    fleet.done_ns[d].map_or(-1.0, |ns| ns as f64 / 1e6),
                )
        })
        .collect();
    let trace = Json::obj()
        .set("schema", "sero-bench-trace/v1")
        .set("bench", "fleet")
        .set(
            "completion_order",
            Json::Arr(completion.iter().map(|&d| Json::from(d as u64)).collect()),
        )
        .set("members", Json::Arr(members))
        .set(
            "latency_us",
            Json::obj()
                .set("p50", us(p50_fleet))
                .set("p90", us(percentile(&fleet.latencies, 0.90)))
                .set("p99", us(p99_fleet))
                .set("max", us(max_fleet)),
        );
    let trace_path = trace_out_path("fleet_trace.json");
    std::fs::write(&trace_path, trace.render())?;
    println!("  wrote {}", trace_path.display());

    assert!(
        ratio <= 1.15,
        "fleet scrub inflated foreground p99 by {ratio:.3}x (> 1.15x bar)"
    );
    Ok(())
}
