//! EXP-SCHED — foreground latency under background scrub: off vs greedy
//! vs budgeted.
//!
//! PR 3 made incremental scrubbing cheap; this experiment makes it
//! *polite*. A file system with a heated archival population serves an
//! open-loop stream of mixed read/overwrite traffic
//! ([`sero_workload::MixedTrafficWorkload`], fixed inter-arrival time on
//! the simulated device clock) while a background scrub pass drains in
//! the idle gaps, three ways:
//!
//! * **off** — no scrub: the foreground latency baseline;
//! * **greedy** — [`SchedConfig::greedy`]: the first idle gap triggers a
//!   stop-the-world pass (PR 3's exclusive behaviour), and the backlog it
//!   creates cascades through the open-loop arrivals;
//! * **budgeted** — bounded slices on a duty cycle: foreground requests
//!   wait at most one slice, and the pass still completes.
//!
//! A request's latency is `completion − arrival` on the device clock:
//! arrival happens on a fixed schedule, and a request that lands while a
//! scrub slice is in flight waits for the slice (scrub is preemptible
//! only between slices). All numbers are deterministic simulated-device
//! time; one archival line is tampered up front so both scrub phases must
//! find identical evidence.
//!
//! Emits `BENCH_sched.json` (schema `sero-bench/v1`, see `sero-bench`'s
//! crate docs — compared **blocking** in CI) and `sched_trace.json` (the
//! budgeted phase's per-slice scheduler trace plus latency percentiles;
//! uploaded as a CI artifact, never compared). `SERO_BENCH_FAST=1`
//! shrinks the population and stream for CI.

use sero_bench::json::Json;
use sero_bench::{
    apply_ops, bench_out_path, device_clock_ns as clock, fast_mode,
    idle_device_until as idle_until, ns_to_us as us, percentile_ns as percentile, row,
    trace_out_path,
};
use sero_core::device::SeroDevice;
use sero_core::sched::{SchedConfig, SliceOutcome};
use sero_fs::fs::{BackgroundScrub, FsConfig, SeroFs};
use sero_workload::MixedTrafficWorkload;
use std::time::Instant;

const SEED: u64 = 20080226;

/// Fixed inter-arrival time of foreground requests on the device clock.
/// Foreground operations cost ~130 ms of device time on average (seeks
/// dominate; occasional cleaner runs spike), so 160 ms puts the device
/// around 80% utilisation: busy enough that a stop-the-world scrub's
/// backlog takes many requests to drain, with real idle gaps for a
/// budgeted scrub to live in.
const INTERARRIVAL_NS: u64 = 160_000_000; // 160 ms

/// The scrub pass starts at this foreground op index — mid-traffic, the
/// way a verification cron fires on a store that is already serving.
const SCRUB_START_OP: usize = 60;

/// Budgeted-phase knobs: at most 2 ms of scrub device time per slice,
/// per 10 ms quantum.
const BUDGET_NS: u64 = 2_000_000;
const QUANTUM_NS: u64 = 10_000_000;

struct PhaseResult {
    /// Per-request latency (completion − arrival), device ns.
    latencies: Vec<u128>,
    /// Device time from phase start until the pass completed.
    scrub_done_ns: Option<u128>,
    slices: usize,
    throttled: u64,
    lines_verified: usize,
    tampered: usize,
}

/// Replays `traffic` open-loop (arrival every [`INTERARRIVAL_NS`]),
/// letting `scrub` drain in the gaps between requests. Scrub is
/// preemptible only at slice boundaries: a request arriving mid-slice
/// waits the slice out, which is exactly the latency the budget bounds.
fn run_phase(
    fs: &mut SeroFs,
    traffic: &[sero_workload::Op],
    mut scrub: Option<&mut BackgroundScrub>,
) -> PhaseResult {
    let t_start = clock(fs);
    let mut latencies = Vec::with_capacity(traffic.len());
    let mut scrub_started_at: Option<u128> = None;
    let mut scrub_done_ns = None;

    let note_done = |fs: &SeroFs, bg: &BackgroundScrub, started: u128, done: &mut Option<u128>| {
        if bg.is_complete() && done.is_none() {
            *done = Some(clock(fs) - started);
        }
    };

    for (i, op) in traffic.iter().enumerate() {
        let arrival = t_start + (i as u128 + 1) * INTERARRIVAL_NS as u128;
        if let Some(bg) = scrub.as_deref_mut().filter(|_| i >= SCRUB_START_OP) {
            let started = *scrub_started_at.get_or_insert_with(|| clock(fs));
            // Grant slices while the device would otherwise idle. A slice
            // may overrun the next arrival — that request then waits.
            while !bg.is_complete() && clock(fs) < arrival {
                match bg.tick(fs).expect("scrub slice failed") {
                    SliceOutcome::Ran { .. } => {}
                    SliceOutcome::Throttled { resume_at_ns } => {
                        if resume_at_ns >= arrival {
                            break; // quantum reopens after the request
                        }
                        idle_until(fs, resume_at_ns);
                    }
                    SliceOutcome::Paused | SliceOutcome::Idle => break,
                }
            }
            note_done(fs, bg, started, &mut scrub_done_ns);
        }
        idle_until(fs, arrival);
        let stats = apply_ops(fs, std::slice::from_ref(op), 0);
        assert_eq!(stats.refused, 0, "steady-state traffic never refused");
        latencies.push(clock(fs) - arrival);
    }

    // Traffic over: let the pass drain on an idle device.
    let (mut slices, mut throttled, mut lines_verified, mut tampered) = (0, 0, 0, 0);
    if let Some(bg) = scrub {
        let started = *scrub_started_at.get_or_insert_with(|| clock(fs));
        while !bg.is_complete() {
            match bg.tick(fs).expect("scrub slice failed") {
                SliceOutcome::Ran { .. } => {}
                SliceOutcome::Throttled { resume_at_ns } => idle_until(fs, resume_at_ns),
                SliceOutcome::Paused | SliceOutcome::Idle => break,
            }
        }
        note_done(fs, bg, started, &mut scrub_done_ns);
        let progress = bg.progress();
        slices = progress.slices;
        throttled = bg.scheduler().throttled_ticks();
        lines_verified = progress.verified;
        tampered = progress.tampered;
    }
    PhaseResult {
        latencies,
        scrub_done_ns,
        slices,
        throttled,
        lines_verified,
        tampered,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = fast_mode();
    // Device geometry and population are the same in both modes so
    // per-op seek costs, the stop-the-world pass length, and with them
    // the utilisation the INTERARRIVAL_NS constant encodes all match;
    // fast mode shrinks only the traffic stream.
    let device_blocks: u64 = 16_384;
    let workload = MixedTrafficWorkload {
        archival_files: 288,
        archival_bytes: 5 * 1024,
        hot_files: 10,
        hot_bytes: 4 * 1024,
        operations: if fast { 240 } else { 600 },
        read_fraction: 0.7,
    };

    println!(
        "EXP-SCHED: {} MiB device, {} heated lines, {} foreground ops every {} ms{}\n",
        device_blocks * 512 / (1024 * 1024),
        workload.archival_files,
        workload.operations,
        INTERARRIVAL_NS / 1_000_000,
        if fast { " (fast mode)" } else { "" },
    );

    // --- populate once, clone per phase ---------------------------------
    let host_setup = Instant::now();
    let mut base = SeroFs::format(SeroDevice::with_blocks(device_blocks), FsConfig::default())?;
    apply_ops(&mut base, &workload.setup_ops(SEED), 1_199_145_600);
    // Tamper with one archival line behind the protocol's back: both
    // scrub phases must surface identical evidence while serving traffic.
    let victim = base
        .stat(&format!("archive-{:04}", workload.archival_files / 2))?
        .heated
        .expect("archival files are heated");
    base.device_mut()
        .probe_mut()
        .mws(victim.start() + 1, &[0xEE; 512])?;
    let setup_ms = host_setup.elapsed().as_secs_f64() * 1e3;

    let traffic = workload.traffic_ops(SEED);

    // --- phase 1: scrub off ----------------------------------------------
    let mut fs_off = base.clone();
    let host_off = Instant::now();
    let off = run_phase(&mut fs_off, &traffic, None);
    let off_host_ms = host_off.elapsed().as_secs_f64() * 1e3;

    // --- phase 2: greedy (stop-the-world in the first idle gap) ----------
    let mut fs_greedy = base.clone();
    let mut greedy_scrub = fs_greedy.scrub_background(SchedConfig::greedy());
    let host_greedy = Instant::now();
    let greedy = run_phase(&mut fs_greedy, &traffic, Some(&mut greedy_scrub));
    let greedy_host_ms = host_greedy.elapsed().as_secs_f64() * 1e3;
    let greedy_report = greedy_scrub.report();

    // --- phase 3: budgeted slices on a duty cycle ------------------------
    let mut fs_budget = base.clone();
    let mut budget_scrub = fs_budget.scrub_background(
        SchedConfig::budgeted(BUDGET_NS, QUANTUM_NS).expect("static knobs are valid"),
    );
    let host_budget = Instant::now();
    let budgeted = run_phase(&mut fs_budget, &traffic, Some(&mut budget_scrub));
    let budget_host_ms = host_budget.elapsed().as_secs_f64() * 1e3;
    let budget_report = budget_scrub.report();

    // Both passes completed under load with identical tamper evidence.
    assert!(greedy.scrub_done_ns.is_some() && budgeted.scrub_done_ns.is_some());
    assert_eq!(greedy_report.outcomes, budget_report.outcomes);
    assert_eq!(greedy.tampered, 1);
    assert_eq!(budgeted.tampered, 1);
    assert_eq!(budgeted.lines_verified, workload.archival_files);

    let p99_off = percentile(&off.latencies, 0.99);
    let p99_greedy = percentile(&greedy.latencies, 0.99);
    let p99_budget = percentile(&budgeted.latencies, 0.99);
    let p50_off = percentile(&off.latencies, 0.50);
    let p50_budget = percentile(&budgeted.latencies, 0.50);
    let max_greedy = *greedy.latencies.iter().max().expect("ops");
    let max_budget = *budgeted.latencies.iter().max().expect("ops");
    let budget_ratio = p99_budget as f64 / p99_off as f64;
    let greedy_ratio = p99_greedy as f64 / p99_off as f64;

    let widths = [22, 14, 14, 16, 12];
    println!(
        "{}",
        row(
            &[
                "phase",
                "p50 latency",
                "p99 latency",
                "scrub done",
                "slices"
            ],
            &widths
        )
    );
    for (name, result, p50, p99) in [
        ("scrub off", &off, p50_off, p99_off),
        (
            "scrub greedy",
            &greedy,
            percentile(&greedy.latencies, 0.50),
            p99_greedy,
        ),
        ("scrub budgeted", &budgeted, p50_budget, p99_budget),
    ] {
        println!(
            "{}",
            row(
                &[
                    name,
                    &format!("{:.0} us", us(p50)),
                    &format!("{:.0} us", us(p99)),
                    &result
                        .scrub_done_ns
                        .map_or("-".into(), |ns| format!("{:.1} ms", ns as f64 / 1e6)),
                    &format!("{}", result.slices),
                ],
                &widths
            )
        );
    }
    println!(
        "\n  p99 inflation: greedy {greedy_ratio:.1}x, budgeted {budget_ratio:.2}x (bar: <= 2x) : {}",
        if budget_ratio <= 2.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "  worst-case stall: greedy {:.0} us, budgeted {:.0} us",
        us(max_greedy),
        us(max_budget)
    );
    println!(
        "  budgeted pass: {} lines ({} tampered) in {} slices, {} throttled ticks",
        budgeted.lines_verified, budgeted.tampered, budgeted.slices, budgeted.throttled
    );

    let doc = Json::obj()
        .set("schema", "sero-bench/v1")
        .set("bench", "sched")
        .set("fast_mode", fast)
        .set(
            "device",
            Json::obj()
                .set("blocks", device_blocks)
                .set("bytes", device_blocks * 512)
                .set("heated_lines", workload.archival_files)
                .set("hot_files", workload.hot_files)
                .set("operations", workload.operations)
                .set("interarrival_ns", INTERARRIVAL_NS)
                .set("budget_ns", BUDGET_NS)
                .set("quantum_ns", QUANTUM_NS),
        )
        .set(
            "metrics",
            Json::obj()
                .set("p50_off_us", us(p50_off))
                .set("p99_off_us", us(p99_off))
                .set("p99_greedy_us", us(p99_greedy))
                .set("p50_budgeted_us", us(p50_budget))
                .set("p99_budgeted_us", us(p99_budget))
                .set("p99_budgeted_over_off", budget_ratio)
                .set("p99_greedy_over_off", greedy_ratio)
                .set("max_greedy_us", us(max_greedy))
                .set("max_budgeted_us", us(max_budget))
                .set(
                    "scrub_completion_greedy_ms",
                    greedy.scrub_done_ns.unwrap_or(0) as f64 / 1e6,
                )
                .set(
                    "scrub_completion_budgeted_ms",
                    budgeted.scrub_done_ns.unwrap_or(0) as f64 / 1e6,
                )
                .set("budgeted_slices", budgeted.slices)
                .set("budgeted_throttled_ticks", budgeted.throttled)
                .set("lines_verified", budgeted.lines_verified)
                .set("tampered", budgeted.tampered),
        )
        .set(
            "host",
            Json::obj()
                .set("setup_ms", setup_ms)
                .set("off_ms", off_host_ms)
                .set("greedy_ms", greedy_host_ms)
                .set("budgeted_ms", budget_host_ms),
        );
    let path = bench_out_path("sched");
    std::fs::write(&path, doc.render())?;
    println!("  wrote {}", path.display());

    // The scheduler trace: per-slice records of the budgeted phase plus
    // the latency distribution tails — a CI artifact for humans, never
    // compared (slice boundaries shift whenever the workload does).
    let slices: Vec<Json> = budget_scrub
        .trace()
        .iter()
        .map(|s| {
            Json::obj()
                .set("start_ns", s.start_ns)
                .set("end_ns", s.end_ns)
                .set("lines", s.lines)
        })
        .collect();
    let trace = Json::obj()
        .set("schema", "sero-bench-trace/v1")
        .set("bench", "sched")
        .set("phase", "budgeted")
        .set("slices", Json::Arr(slices))
        .set(
            "latency_us",
            Json::obj()
                .set("p50", us(p50_budget))
                .set("p90", us(percentile(&budgeted.latencies, 0.90)))
                .set("p99", us(p99_budget))
                .set("max", us(*budgeted.latencies.iter().max().expect("ops"))),
        );
    let trace_path = trace_out_path("sched_trace.json");
    std::fs::write(&trace_path, trace.render())?;
    println!("  wrote {}", trace_path.display());

    assert!(
        budget_ratio <= 2.0,
        "budgeted background scrub inflated foreground p99 by {budget_ratio:.2}x (> 2x bar)"
    );
    // The worst-case foreground stall is what the budget bounds: the
    // stop-the-world pass must stall some request for much longer than
    // any budgeted slice ever does (p99 alone can dilute the greedy
    // cascade on long streams, so the ordering claim anchors on max).
    assert!(
        max_greedy > 2 * max_budget,
        "greedy scrub should stall foreground far worse than budgeted ({:.0} us vs {:.0} us)",
        us(max_greedy),
        us(max_budget)
    );
    Ok(())
}
