//! EXP-SEC — The §5 security analysis as a paper-vs-measured table.
//!
//! Each row is one attack from the paper's integrity/availability
//! analysis, run against a fresh scenario; the `expected` column is the
//! paper's prediction, `observed` is what the defender machinery found.

use sero_attack::attacks::{run_all, Outcome};

fn main() {
    println!("EXP-SEC: §5 attack battery (powerful insider with raw device access)\n");
    println!(
        "{:<16} {:<10} {:<10} {:<6} paper quote",
        "attack", "expected", "observed", "match"
    );
    println!("{}", "-".repeat(110));

    let reports = run_all();
    let mut ok = 0usize;
    for r in &reports {
        println!(
            "{:<16} {:<10} {:<10} {:<6} \"{}\"",
            r.kind.to_string(),
            r.expected.to_string(),
            r.observed.to_string(),
            if r.matches_paper() { "yes" } else { "NO" },
            truncate(r.kind.paper_quote(), 60),
        );
        ok += r.matches_paper() as usize;
    }
    println!("{}", "-".repeat(110));

    let undetected = reports
        .iter()
        .filter(|r| r.observed == Outcome::Undetected)
        .count();
    println!("\npaper-vs-measured:");
    println!(
        "  'either the attempt … is detected or the integrity is maintained' -> {}/{} rows match, {} undetected : {}",
        ok,
        reports.len(),
        undetected,
        if ok == reports.len() && undetected == 0 { "REPRODUCED" } else { "NOT reproduced" }
    );

    println!("\ndetails:");
    for r in &reports {
        println!("  {:<16} {}", r.kind.to_string(), r.detail);
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
