//! FIG9 — High-angle XRD: the fcc Co–Pt (111) peak after annealing.
//!
//! Paper: "In the annealed sample, we can find a strong reflection peak
//! around 41.7 degrees in the 2θ axis. This peak can be characterized to a
//! specific Co-Pt (111) crystal plane … there is no risk that after
//! excessive heating the perpendicular anisotropy can be restored by
//! crystallisation."

use sero_bench::{downsample, sparkline};
use sero_media::film::CoPtFilm;
use sero_media::xrd::Diffractometer;

fn main() {
    println!("FIG9: high-angle XRD (Cu Kα), 2θ = 30°..55°\n");
    let xrd = Diffractometer::cu_kalpha();
    let as_grown = CoPtFilm::as_grown();
    let annealed = CoPtFilm::as_grown().annealed(700.0);

    let scan_grown = xrd.high_angle_scan(&as_grown);
    let scan_annealed = xrd.high_angle_scan(&annealed);

    println!(
        "  as grown  {}",
        sparkline(&downsample(&scan_grown.intensity, 60))
    );
    println!(
        "  annealed  {}",
        sparkline(&downsample(&scan_annealed.intensity, 60))
    );
    println!("            30°{}55°\n", " ".repeat(53));

    let (peak_angle, peak_i) = scan_annealed.strongest_peak_in(40.0, 43.5).expect("window");
    let grown_contrast = scan_grown.peak_contrast(40.0, 43.5);
    let annealed_contrast = scan_annealed.peak_contrast(40.0, 43.5);

    println!("{:>24} {:>12} {:>12}", "", "as grown", "annealed");
    println!(
        "{:>24} {:>12.2} {:>12.2}",
        "(111) peak contrast", grown_contrast, annealed_contrast
    );
    println!(
        "{:>24} {:>12} {:>12.2}",
        "(111) position [°2θ]", "-", peak_angle
    );
    println!(
        "{:>24} {:>12} {:>12.0}",
        "(111) intensity [a.u.]", "-", peak_i
    );
    println!(
        "{:>24} {:>12.2} {:>12.2}",
        "crystalline fraction",
        as_grown.crystalline_fraction(),
        annealed.crystalline_fraction()
    );

    // The crystal phase must NOT restore perpendicular anisotropy.
    println!("\npaper-vs-measured:");
    println!(
        "  'strong peak around 41.7°'     -> measured {:.1}° : {}",
        peak_angle,
        if (peak_angle - 41.7).abs() < 0.3 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'new crystalline structure'    -> contrast {:.1} (was {:.1}) : {}",
        annealed_contrast,
        grown_contrast,
        if annealed_contrast > 5.0 && grown_contrast < 2.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  'anisotropy not restored'      -> K = {:.1} kJ/m³, perpendicular: {} : {}",
        annealed.anisotropy_kj_per_m3(),
        annealed.is_perpendicular(),
        if !annealed.is_perpendicular() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
