//! TAB-CAP — The §6 capacity ladder and the §1 Terabit sizing.
//!
//! Paper: "A matrix with a period of 200 nm can be achieved … An improved
//! setup with periodicities down to 150 nm has recently been realised, and
//! a period of 100 nm (being 50 nm dot size and 50 nm spacing) should be
//! achievable. This will give a capacity of 10 Gbit/cm² (= 65 Gbit/inch²)."
//! §1: "a total capacity of the order of 1 Terabit".

use sero_media::geometry::Geometry;

fn main() {
    println!("TAB-CAP: patterned-medium capacity vs dot pitch\n");
    println!(
        "{:>10} {:>14} {:>16} {:>18}",
        "pitch", "density", "density", "area for 1 Tbit"
    );
    println!(
        "{:>10} {:>14} {:>16} {:>18}",
        "[nm]", "[Gbit/cm²]", "[Gbit/inch²]", "[cm²]"
    );
    for &pitch in &[200.0, 150.0, 100.0, 50.0] {
        let g = Geometry::new(64, 64, pitch);
        println!(
            "{:>10.0} {:>14.2} {:>16.1} {:>18.1}",
            pitch,
            g.areal_density_gbit_per_cm2(),
            g.areal_density_gbit_per_inch2(),
            Geometry::area_cm2_for_bits(pitch, 1e12),
        );
    }

    let g100 = Geometry::new(64, 64, 100.0);
    let cm2 = g100.areal_density_gbit_per_cm2();
    let in2 = g100.areal_density_gbit_per_inch2();
    println!("\npaper-vs-measured:");
    println!(
        "  '100 nm -> 10 Gbit/cm²'  -> {:.2} : {}",
        cm2,
        if (cm2 - 10.0).abs() < 1e-9 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  '= 65 Gbit/inch²'        -> {:.1} : {}",
        in2,
        if in2.round() == 65.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  '~1 Terabit device'      -> {:.0} cm² of 100 nm medium (plausible for a sled array)",
        Geometry::area_cm2_for_bits(100.0, 1e12)
    );
}
