//! Minimal JSON tree, writer, and parser for the `BENCH_*.json` files.
//!
//! The build environment is offline, so instead of `serde` this module
//! hand-rolls the small subset the bench harness needs: a value tree with
//! insertion-ordered objects, a pretty printer with stable output (so
//! committed baselines diff cleanly), a recursive-descent parser for
//! `bench_compare`, and dotted-path lookups plus numeric flattening for
//! the ±threshold comparison.
//!
//! # Examples
//!
//! ```
//! use sero_bench::json::Json;
//!
//! let doc = Json::obj()
//!     .set("bench", "scrub")
//!     .set("metrics", Json::obj().set("speedup", 7.5));
//! let text = doc.render();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("metrics.speedup").and_then(Json::as_f64), Some(7.5));
//! ```

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integral values print without a dot).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u128> for Json {
    fn from(v: u128) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key` on an object (builder style), replacing any existing
    /// entry with that key.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => {
                let value = value.into();
                if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks up a dotted path (`"metrics.speedup"`) through nested objects.
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for key in path.split('.') {
            match node {
                Json::Obj(entries) => {
                    node = &entries.iter().find(|(k, _)| k == key)?.1;
                }
                _ => return None,
            }
        }
        Some(node)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Collects every numeric leaf below this value as
    /// `(dotted.path, value)` pairs, prefixed with `prefix`.
    pub fn flatten_numbers(&self, prefix: &str, out: &mut Vec<(String, f64)>) {
        match self {
            Json::Num(n) => out.push((prefix.to_string(), *n)),
            Json::Obj(entries) => {
                for (key, value) in entries {
                    let path = if prefix.is_empty() {
                        key.clone()
                    } else {
                        format!("{prefix}.{key}")
                    };
                    value.flatten_numbers(&path, out);
                }
            }
            Json::Arr(items) => {
                for (i, value) in items.iter().enumerate() {
                    value.flatten_numbers(&format!("{prefix}[{i}]"), out);
                }
            }
            _ => {}
        }
    }

    /// Renders the tree as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_number(out, *n),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            Json::Obj(entries) => {
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the failure.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged because the input is valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let doc = Json::obj()
            .set("schema", "sero-bench/v1")
            .set("fast_mode", false)
            .set("count", 131072u64)
            .set("ratio", 1.625)
            .set(
                "nested",
                Json::obj().set("a", 1u64).set(
                    "list",
                    Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x\"y".into())]),
                ),
            );
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Stable output: rendering the parse reproduces the text.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn integers_render_without_dot() {
        let mut s = String::new();
        render_number(&mut s, 67108864.0);
        assert_eq!(s, "67108864");
        let mut s = String::new();
        render_number(&mut s, 3.5);
        assert_eq!(s, "3.5");
    }

    #[test]
    fn dotted_get_and_flatten() {
        let doc = Json::obj()
            .set("metrics", Json::obj().set("speedup", 7.0).set("mib_s", 2.5))
            .set("host", Json::obj().set("ms", 12.0));
        assert_eq!(doc.get("metrics.speedup").and_then(Json::as_f64), Some(7.0));
        assert!(doc.get("metrics.absent").is_none());
        let mut flat = Vec::new();
        doc.flatten_numbers("", &mut flat);
        assert_eq!(
            flat,
            vec![
                ("metrics.speedup".to_string(), 7.0),
                ("metrics.mib_s".to_string(), 2.5),
                ("host.ms".to_string(), 12.0),
            ]
        );
    }

    #[test]
    fn set_replaces_existing_key() {
        let doc = Json::obj().set("a", 1u64).set("a", 2u64);
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn parse_escapes() {
        let v = Json::parse(r#""aA\n\"""#).unwrap();
        assert_eq!(v, Json::Str("aA\n\"".to_string()));
    }
}
