//! **sero-proto** — the versioned command API and wire codec that lets
//! remote parties drive a SERO device.
//!
//! Everything below the file system returns rich in-process types —
//! [`VerifyOutcome`](sero_core::tamper::VerifyOutcome) carries a full
//! [`TamperReport`](sero_core::tamper::TamperReport), scrubbing hands
//! back scheduler handles, and three distinct error enums
//! ([`SeroError`](sero_core::device::SeroError), `FsError`,
//! [`SchedConfigError`](sero_core::sched::SchedConfigError)) reference
//! device internals. None of that crosses a process boundary. This crate
//! defines the surface that does:
//!
//! * [`Request`]/[`Response`] — one versioned enum pair covering the
//!   whole served command set (create / read / write / remove / stat /
//!   list / heat / verify / scrub-start / scrub-tick / scrub-status /
//!   fleet-status, plus the raw-write attack surface);
//! * [`frame`] — a length-prefixed binary frame codec (magic + version +
//!   CRC, the same CRC-framed record discipline as the device's
//!   scrub-state store);
//! * [`ErrorCode`]/[`WireError`] — a single wire-stable error code every
//!   in-process error maps into, so clients never parse prose.
//!
//! `SeroFs::handle(Request) -> Response` (in `sero-fs`) is the one
//! dispatch path shared by in-process callers, tests, the `sero-server`
//! daemon, and the `sero-cli` client: a command means the same thing no
//! matter which side of the socket it runs on.
//!
//! # Frame layout
//!
//! Every message — request or response — travels in one frame:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic            b"SERW"
//!      4     1  version          PROTO_VERSION (currently 1)
//!      5     1  kind             0 = request, 1 = response
//!      6     4  payload length   u32 LE, at most MAX_PAYLOAD_BYTES
//!     10     n  payload          encoded Request / Response
//!   10+n     4  crc32            u32 LE over bytes [0, 10+n)
//! ```
//!
//! The CRC covers the header *and* the payload, so a flipped version
//! byte or length field is caught exactly like flipped payload bytes. A
//! frame that fails any check — wrong magic, unknown version, bad kind,
//! over-length, short read, CRC mismatch, or a payload with trailing or
//! missing bytes — decodes to a [`frame::FrameError`]; it never panics
//! and never yields a partial message.
//!
//! # Version negotiation
//!
//! Deliberately minimal, like the checkpoint and scrub-state records: the
//! version byte is part of every frame, a decoder accepts exactly
//! [`PROTO_VERSION`], and a server receiving a frame with any other
//! version answers best-effort with [`ErrorCode::VersionMismatch`] (in
//! its own version) and closes the connection. Old clients fail loudly
//! and immediately rather than mis-parsing; new message kinds require a
//! version bump, while new *commands* are just new enum tags — an old
//! server answers them with [`ErrorCode::BadFrame`] since it cannot
//! decode the tag.
//!
//! # Error-code table
//!
//! | code | name | produced by |
//! |-----:|------|-------------|
//! | 1–7  | `NotFound`, `Exists`, `ReadOnlyFile`, `NoSpace`, `FileTooLarge`, `BadName`, `Corrupt` | the file-system layer (`FsError`) |
//! | 16–24 | `SectorIo`, `BadLine`, `HashBlockAccess`, `ReadOnlyBlock`, `OverlapsHeatedLine`, `DataUnreadable`, `HeatVerifyFailed`, `WriteDegraded`, `BadScrubState` | the device layer ([`SeroError`](sero_core::device::SeroError)) |
//! | 32–34 | `ZeroBudget`, `ZeroQuantum`, `BudgetExceedsQuantum` | scrub scheduling knobs ([`SchedConfigError`](sero_core::sched::SchedConfigError)) |
//! | 48   | `TamperDetected` | a verify whose line shows tamper evidence |
//! | 64–70 | `BadFrame`, `VersionMismatch`, `UnsupportedCommand`, `InvalidArgument`, `ScrubActive`, `NoScrub`, `ServerBusy` | the protocol layer itself |
//!
//! Every in-process error variant maps to exactly one code (the mapping
//! is total — adding a variant without a code is a compile error), and
//! the human-readable `Display` text rides along in
//! [`WireError::detail`], so nothing is lost crossing the wire: the code
//! is for programs, the detail for humans.
//!
//! Note the asymmetry the paper demands: **tamper evidence is not an
//! infrastructure error.** A verify that finds evidence answers
//! [`ErrorCode::TamperDetected`] with the full report text in the
//! detail — remote auditors must see detection fail loudly, not as a
//! `false` that a lazy caller ignores.
//!
//! # Examples
//!
//! ```
//! use sero_proto::{frame, FrameKind, Request, Response};
//!
//! let req = Request::Read { name: "ledger.csv".into() };
//! let bytes = frame::encode_request(&req)?;
//! let (kind, payload, used) = frame::decode_frame(&bytes)?;
//! assert_eq!(kind, FrameKind::Request);
//! assert_eq!(used, bytes.len());
//! assert_eq!(Request::decode(payload)?, req);
//! # Ok::<(), sero_proto::frame::FrameError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod error;
pub mod frame;

pub use command::{
    Request, Response, WireClass, WireFileInfo, WireLine, WireMemberStatus, WireSchedState,
    WireScrubStatus, WireSliceOutcome, WireVerdict,
};
pub use error::{ErrorCode, WireError};
pub use frame::{FrameError, FrameKind};

/// The wire-format version this build speaks (see the module docs for
/// the negotiation rules).
pub const PROTO_VERSION: u8 = 1;

/// Frame magic: the first four bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"SERW";

/// Upper bound on a frame's payload. Frames claiming more are rejected
/// before any allocation, so a corrupt or hostile length field cannot
/// balloon memory.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;
