//! The length-prefixed, CRC-guarded frame codec.
//!
//! Same discipline as the device's scrub-state records and the fs
//! checkpoint: magic + version + length up front, CRC over everything at
//! the back, reject-whole on any mismatch. See the crate docs for the
//! byte layout. Two API shapes:
//!
//! * slice-based ([`encode_frame`]/[`decode_frame`]) for tests,
//!   proptests, and callers that already hold a buffer;
//! * stream-based ([`write_frame`]/[`read_frame`]) for the TCP daemon
//!   and client, layered on [`std::io::Read`]/[`std::io::Write`].
//!
//! Decoding never panics and never yields a partial message: a frame
//! either checks out completely or returns a [`FrameError`].

use crate::command::{Request, Response};
use crate::{FRAME_MAGIC, MAX_PAYLOAD_BYTES, PROTO_VERSION};
use core::fmt;
use sero_codec::crc32::crc32;
use std::io::{Read, Write};

/// Bytes of frame overhead around a payload: magic (4) + version (1) +
/// kind (1) + length (4) + trailing CRC (4).
pub const FRAME_OVERHEAD_BYTES: usize = 14;

/// Offset of the payload inside a frame (header size).
const HEADER_BYTES: usize = 10;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A client-to-server [`Request`].
    Request,
    /// A server-to-client [`Response`].
    Response,
}

impl FrameKind {
    fn byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            _ => None,
        }
    }
}

/// Why a frame (or its payload) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying transport failed (or closed mid-frame).
    Io {
        /// The I/O error's rendering.
        reason: String,
        /// True when the failure was a read/write deadline expiring
        /// (`WouldBlock`/`TimedOut`), so servers can reap idle peers and
        /// clients can retry idempotent requests.
        timed_out: bool,
    },
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The version byte is not [`PROTO_VERSION`].
    UnsupportedVersion {
        /// The version the peer sent.
        found: u8,
    },
    /// The kind byte is neither request nor response.
    BadKind {
        /// The byte found.
        found: u8,
    },
    /// The length field exceeds [`MAX_PAYLOAD_BYTES`].
    Oversize {
        /// The claimed payload length.
        len: u64,
    },
    /// The buffer or stream ended before the frame did.
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The trailing CRC does not match the header + payload bytes.
    CrcMismatch {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed from the received bytes.
        computed: u32,
    },
    /// The frame was intact but its payload is not a valid message
    /// (unknown tag, bad UTF-8, trailing or missing bytes).
    Malformed {
        /// What failed.
        reason: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io { reason, timed_out } => {
                if *timed_out {
                    write!(f, "frame transport timeout: {reason}")
                } else {
                    write!(f, "frame transport error: {reason}")
                }
            }
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?}, want {FRAME_MAGIC:02x?}")
            }
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found}, this peer speaks {PROTO_VERSION}"
                )
            }
            FrameError::BadKind { found } => write!(f, "unknown frame kind byte {found:#04x}"),
            FrameError::Oversize { len } => {
                write!(
                    f,
                    "frame claims {len} payload bytes, limit is {MAX_PAYLOAD_BYTES}"
                )
            }
            FrameError::Truncated { needed, have } => {
                write!(f, "frame truncated: need {needed} bytes, have {have}")
            }
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "frame crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FrameError::Malformed { reason } => write!(f, "malformed payload: {reason}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True when this error is a transport deadline expiring, as opposed
    /// to a dead peer or corrupt bytes.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io {
                timed_out: true,
                ..
            }
        )
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io {
            timed_out: matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            reason: e.to_string(),
        }
    }
}

/// Wraps `payload` in a complete frame.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the payload exceeds
/// [`MAX_PAYLOAD_BYTES`]. Encoding a too-large message is a *typed*
/// failure, never a panic: the caller decides whether to paginate, chunk,
/// or answer the peer with [`crate::error::ErrorCode::OversizeResponse`].
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversize {
            len: payload.len() as u64,
        });
    }
    let mut buf = Vec::with_capacity(FRAME_OVERHEAD_BYTES + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(PROTO_VERSION);
    buf.push(kind.byte());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    Ok(buf)
}

/// Encodes `req` as a ready-to-send request frame.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the encoded request would not fit one
/// frame.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, FrameError> {
    encode_frame(FrameKind::Request, &req.encode())
}

/// Encodes `resp` as a ready-to-send response frame.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the encoded response would not fit one
/// frame.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, FrameError> {
    encode_frame(FrameKind::Response, &resp.encode())
}

/// Decodes one frame from the front of `buf`, returning the kind, the
/// payload slice, and how many bytes the frame consumed.
///
/// # Errors
///
/// Any [`FrameError`] variant except `Io`/`Malformed`; the payload is
/// *not* interpreted here — pass it to [`Request::decode`] /
/// [`Response::decode`].
pub fn decode_frame(buf: &[u8]) -> Result<(FrameKind, &[u8], usize), FrameError> {
    if buf.len() < HEADER_BYTES {
        return Err(FrameError::Truncated {
            needed: HEADER_BYTES,
            have: buf.len(),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf[..4]);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    if buf[4] != PROTO_VERSION {
        return Err(FrameError::UnsupportedVersion { found: buf[4] });
    }
    let kind = FrameKind::from_byte(buf[5]).ok_or(FrameError::BadKind { found: buf[5] })?;
    let len = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversize { len: len as u64 });
    }
    let total = HEADER_BYTES + len + 4;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let stored = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4 bytes"));
    let computed = crc32(&buf[..total - 4]);
    if stored != computed {
        return Err(FrameError::CrcMismatch { stored, computed });
    }
    Ok((kind, &buf[HEADER_BYTES..HEADER_BYTES + len], total))
}

/// Incremental frame reassembly over partial reads.
///
/// The readiness-driven server reads whatever bytes a socket has —
/// which may be a one-byte drip, a split mid-header, or several
/// coalesced frames — and feeds them here. [`FrameAssembler::next_frame`]
/// yields complete frames exactly as [`decode_frame`] would have decoded
/// the whole stream: a [`FrameError::Truncated`] from the decoder means
/// "wait for more bytes" (`Ok(None)`), every other decode error is the
/// peer speaking garbage and stays an error.
///
/// Memory is bounded without any extra knob: the first ten buffered
/// bytes either parse into a sane header (bounding the frame at
/// [`MAX_PAYLOAD_BYTES`] + overhead) or fail hard, so a hostile peer
/// cannot grow the buffer past one maximum frame.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames. Compacted
    /// lazily so back-to-back small frames do not memmove per frame.
    pos: usize,
}

/// Compact the assembler's buffer once this many consumed bytes pile up.
const ASSEMBLER_COMPACT_AT: usize = 64 * 1024;

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Feeds bytes read from the transport, in arrival order.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as part of a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when a partial frame is waiting for more bytes — the state a
    /// stalled-peer reap cares about (silence mid-frame, not between
    /// frames).
    pub fn mid_frame(&self) -> bool {
        self.pending() > 0
    }

    /// Yields the next complete frame, `Ok(None)` if more bytes are
    /// needed first.
    ///
    /// # Errors
    ///
    /// Any hard [`FrameError`] from [`decode_frame`] — bad magic, bad
    /// version, bad kind, oversize, CRC mismatch. Once an error is
    /// returned the byte stream is unframeable and the connection should
    /// be closed; the assembler does not resynchronise.
    pub fn next_frame(&mut self) -> Result<Option<(FrameKind, Vec<u8>)>, FrameError> {
        let (kind, payload, used) = match decode_frame(&self.buf[self.pos..]) {
            Ok((kind, payload, used)) => (kind, payload.to_vec(), used),
            Err(FrameError::Truncated { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        self.pos += used;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= ASSEMBLER_COMPACT_AT {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some((kind, payload)))
    }
}

/// Writes one frame to `w` and flushes.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the payload exceeds the frame limit
/// (nothing is written), [`FrameError::Io`] from the transport.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<(), FrameError> {
    let frame = encode_frame(kind, payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame from `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed the
/// connection *between* frames); a close mid-frame is
/// [`FrameError::Io`].
///
/// # Errors
///
/// Any [`FrameError`] except `Malformed` (payload interpretation is the
/// caller's).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(FrameKind, Vec<u8>)>, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    // Distinguish "closed before any byte" (clean) from "closed inside
    // the header" (an error).
    let mut filled = 0usize;
    while filled < HEADER_BYTES {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io {
                    reason: format!("connection closed {filled} bytes into a frame header"),
                    timed_out: false,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&header[..4]);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    if header[4] != PROTO_VERSION {
        return Err(FrameError::UnsupportedVersion { found: header[4] });
    }
    let kind = FrameKind::from_byte(header[5]).ok_or(FrameError::BadKind { found: header[5] })?;
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversize { len: len as u64 });
    }
    let mut rest = vec![0u8; len + 4];
    r.read_exact(&mut rest)?;
    let stored = u32::from_le_bytes(rest[len..].try_into().expect("4 bytes"));
    let mut covered = header.to_vec();
    covered.extend_from_slice(&rest[..len]);
    let computed = crc32(&covered);
    if stored != computed {
        return Err(FrameError::CrcMismatch { stored, computed });
    }
    rest.truncate(len);
    Ok(Some((kind, rest)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_slices_and_streams() {
        let req = Request::Heat {
            name: "q4-ledger".into(),
            metadata: b"sealed".to_vec(),
            timestamp: 1_199_145_600,
        };
        let bytes = encode_request(&req).unwrap();
        assert_eq!(bytes.len(), FRAME_OVERHEAD_BYTES + req.encode().len());

        let (kind, payload, used) = decode_frame(&bytes).unwrap();
        assert_eq!((kind, used), (FrameKind::Request, bytes.len()));
        assert_eq!(Request::decode(payload).unwrap(), req);

        let mut cursor = std::io::Cursor::new(bytes);
        let (kind, payload) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(Request::decode(&payload).unwrap(), req);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_frames_are_rejected_without_panicking() {
        let good = encode_request(&Request::list_all()).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bad_magic),
            Err(FrameError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = PROTO_VERSION + 1;
        assert!(matches!(
            decode_frame(&bad_version),
            Err(FrameError::UnsupportedVersion { .. })
        ));

        let mut bad_kind = good.clone();
        bad_kind[5] = 9;
        assert!(matches!(
            decode_frame(&bad_kind),
            Err(FrameError::BadKind { found: 9 })
        ));

        let mut oversize = good.clone();
        oversize[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&oversize),
            Err(FrameError::Oversize { .. })
        ));

        let mut flipped = good.clone();
        let at = flipped.len() - 5; // inside the payload
        flipped[at] ^= 0x10;
        assert!(matches!(
            decode_frame(&flipped),
            Err(FrameError::CrcMismatch { .. })
        ));

        assert!(matches!(
            decode_frame(&good[..good.len() - 1]),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn assembler_reassembles_a_one_byte_drip() {
        let req = Request::Read {
            name: "dripped".into(),
        };
        let bytes = encode_request(&req).unwrap();
        let mut asm = FrameAssembler::new();
        for (i, b) in bytes.iter().enumerate() {
            assert!(asm.next_frame().unwrap().is_none(), "frame early at {i}");
            asm.push(&[*b]);
        }
        let (kind, payload) = asm.next_frame().unwrap().expect("complete frame");
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(Request::decode(&payload).unwrap(), req);
        assert!(!asm.mid_frame(), "buffer must drain completely");
        assert!(asm.next_frame().unwrap().is_none());
    }

    #[test]
    fn assembler_splits_coalesced_frames() {
        let reqs = [Request::Ping, Request::list_all(), Request::FleetStatus];
        let mut wire = Vec::new();
        for r in &reqs {
            wire.extend_from_slice(&encode_request(r).unwrap());
        }
        // Deliver everything in one read plus a trailing partial frame.
        let tail = encode_request(&Request::Ping).unwrap();
        wire.extend_from_slice(&tail[..tail.len() / 2]);
        let mut asm = FrameAssembler::new();
        asm.push(&wire);
        for r in &reqs {
            let (_, payload) = asm.next_frame().unwrap().expect("coalesced frame");
            assert_eq!(&Request::decode(&payload).unwrap(), r);
        }
        assert!(asm.next_frame().unwrap().is_none(), "tail is partial");
        assert!(asm.mid_frame());
        asm.push(&tail[tail.len() / 2..]);
        assert!(asm.next_frame().unwrap().is_some());
    }

    #[test]
    fn assembler_surfaces_hard_decode_errors() {
        let mut asm = FrameAssembler::new();
        asm.push(b"not a frame at all!");
        assert!(matches!(asm.next_frame(), Err(FrameError::BadMagic { .. })));

        let mut bad_crc = encode_request(&Request::list_all()).unwrap();
        let at = bad_crc.len() - 1;
        bad_crc[at] ^= 0x01;
        let mut asm = FrameAssembler::new();
        asm.push(&bad_crc);
        assert!(matches!(
            asm.next_frame(),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn mid_frame_close_is_an_io_error_not_a_clean_eof() {
        let good = encode_request(&Request::list_all()).unwrap();
        let mut cursor = std::io::Cursor::new(good[..6].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Io { .. })
        ));
    }
}
