//! The wire-stable error surface: [`ErrorCode`] + [`WireError`].
//!
//! In-process errors are rich enums referencing device internals; on the
//! wire they collapse to a stable numeric code (for programs) plus the
//! original `Display` text (for humans). The conversions are *total*:
//! every variant of [`SeroError`], [`SchedConfigError`], and (in
//! `sero-fs`, where the type lives) `FsError` maps to exactly one code,
//! so adding an error variant without deciding its wire meaning is a
//! compile error, and no two different failure kinds share a code.

use crate::frame::FrameError;
use core::fmt;
use sero_core::device::SeroError;
use sero_core::sched::SchedConfigError;

/// Wire-stable error codes (`u16` on the wire). See the crate docs for
/// the full table. Codes are grouped by layer with gaps left for growth;
/// a code, once shipped, is never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    // --- file-system layer (FsError) -----------------------------------
    /// No such file.
    NotFound = 1,
    /// A file with this name already exists.
    Exists = 2,
    /// The file is protected by a heated line; the operation would alter
    /// history.
    ReadOnlyFile = 3,
    /// Not enough contiguous free space, even after cleaning.
    NoSpace = 4,
    /// File exceeds the maximum supported size.
    FileTooLarge = 5,
    /// Name rejected (empty or too long).
    BadName = 6,
    /// An on-device structure failed to parse.
    Corrupt = 7,
    /// The file system is in degraded mode (quarantined blocks after
    /// persistent device faults): mutating commands are refused while
    /// reads, `stat`, `list`, and verification keep working.
    Degraded = 8,

    // --- device layer (SeroError) ---------------------------------------
    /// A sector-level failure (ECC, CRC, address check, out of range).
    SectorIo = 16,
    /// An invalid line description.
    BadLine = 17,
    /// Magnetic access to a heated hash block.
    HashBlockAccess = 18,
    /// Write refused: the block belongs to a heated line.
    ReadOnlyBlock = 19,
    /// The requested line overlaps an existing heated line.
    OverlapsHeatedLine = 20,
    /// A data block could not be read while hashing.
    DataUnreadable = 21,
    /// The heat operation's read-back verification failed.
    HeatVerifyFailed = 22,
    /// A magnetic write did not take on some dots.
    WriteDegraded = 23,
    /// A serialized scrub-state record failed to parse.
    BadScrubState = 24,

    // --- scrub scheduling knobs (SchedConfigError) ----------------------
    /// `budget_ns == 0` passed to a validated constructor.
    ZeroBudget = 32,
    /// `quantum_ns == 0` passed to a validated constructor.
    ZeroQuantum = 33,
    /// The per-quantum budget exceeds the quantum.
    BudgetExceedsQuantum = 34,

    // --- verification verdicts ------------------------------------------
    /// A verify found tamper evidence. The detail carries the full
    /// report text; this is the paper's detection guarantee crossing the
    /// wire, not an infrastructure failure.
    TamperDetected = 48,

    // --- protocol layer ---------------------------------------------------
    /// A frame failed to decode (bad magic, bad CRC, truncated,
    /// malformed payload).
    BadFrame = 64,
    /// The frame's version byte is not the one this peer speaks.
    VersionMismatch = 65,
    /// The command is recognised but this server refuses it (e.g. raw
    /// writes without `--allow-raw`).
    UnsupportedCommand = 66,
    /// A request argument is out of range (e.g. a raw write that is not
    /// exactly one sector).
    InvalidArgument = 67,
    /// A scrub pass is already running; cancel or drain it first.
    ScrubActive = 68,
    /// No scrub pass has been started.
    NoScrub = 69,
    /// The server is at its connection cap (`--max-connections`): the
    /// new connection is answered with this refusal and closed instead
    /// of silently queueing in the accept backlog. Reconnect after an
    /// existing connection closes or is reaped.
    ServerBusy = 70,
    /// The answer would not fit one frame. List-shaped requests avoid
    /// this by paginating (`cursor` + `limit`); anything else that
    /// overflows [`crate::MAX_PAYLOAD_BYTES`] is answered with this code
    /// instead of the connection dying on an encoder assertion.
    OversizeResponse = 71,
}

impl ErrorCode {
    /// Every code, for table tests and documentation generators.
    pub const ALL: [ErrorCode; 29] = [
        ErrorCode::NotFound,
        ErrorCode::Exists,
        ErrorCode::ReadOnlyFile,
        ErrorCode::NoSpace,
        ErrorCode::FileTooLarge,
        ErrorCode::BadName,
        ErrorCode::Corrupt,
        ErrorCode::Degraded,
        ErrorCode::SectorIo,
        ErrorCode::BadLine,
        ErrorCode::HashBlockAccess,
        ErrorCode::ReadOnlyBlock,
        ErrorCode::OverlapsHeatedLine,
        ErrorCode::DataUnreadable,
        ErrorCode::HeatVerifyFailed,
        ErrorCode::WriteDegraded,
        ErrorCode::BadScrubState,
        ErrorCode::ZeroBudget,
        ErrorCode::ZeroQuantum,
        ErrorCode::BudgetExceedsQuantum,
        ErrorCode::TamperDetected,
        ErrorCode::BadFrame,
        ErrorCode::VersionMismatch,
        ErrorCode::UnsupportedCommand,
        ErrorCode::InvalidArgument,
        ErrorCode::ScrubActive,
        ErrorCode::NoScrub,
        ErrorCode::ServerBusy,
        ErrorCode::OversizeResponse,
    ];

    /// The numeric wire value.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decodes a wire value (`None` for codes this build does not know).
    pub fn from_code(code: u16) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.code() == code)
    }

    /// The stable symbolic name (used by `sero-cli` output and logs).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::NotFound => "not-found",
            ErrorCode::Exists => "exists",
            ErrorCode::ReadOnlyFile => "read-only-file",
            ErrorCode::NoSpace => "no-space",
            ErrorCode::FileTooLarge => "file-too-large",
            ErrorCode::BadName => "bad-name",
            ErrorCode::Corrupt => "corrupt",
            ErrorCode::Degraded => "degraded",
            ErrorCode::SectorIo => "sector-io",
            ErrorCode::BadLine => "bad-line",
            ErrorCode::HashBlockAccess => "hash-block-access",
            ErrorCode::ReadOnlyBlock => "read-only-block",
            ErrorCode::OverlapsHeatedLine => "overlaps-heated-line",
            ErrorCode::DataUnreadable => "data-unreadable",
            ErrorCode::HeatVerifyFailed => "heat-verify-failed",
            ErrorCode::WriteDegraded => "write-degraded",
            ErrorCode::BadScrubState => "bad-scrub-state",
            ErrorCode::ZeroBudget => "zero-budget",
            ErrorCode::ZeroQuantum => "zero-quantum",
            ErrorCode::BudgetExceedsQuantum => "budget-exceeds-quantum",
            ErrorCode::TamperDetected => "TAMPER-DETECTED",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::UnsupportedCommand => "unsupported-command",
            ErrorCode::InvalidArgument => "invalid-argument",
            ErrorCode::ScrubActive => "scrub-active",
            ErrorCode::NoScrub => "no-scrub",
            ErrorCode::ServerBusy => "server-busy",
            ErrorCode::OversizeResponse => "oversize-response",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.code())
    }
}

/// An error as it travels the wire: a stable [`ErrorCode`] plus the
/// originating error's full `Display` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The wire-stable code.
    pub code: ErrorCode,
    /// The originating error's human-readable rendering.
    pub detail: String,
}

impl WireError {
    /// Builds a wire error from a code and any displayable detail.
    pub fn new(code: ErrorCode, detail: impl fmt::Display) -> WireError {
        WireError {
            code,
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.detail)
    }
}

impl std::error::Error for WireError {}

impl From<SeroError> for WireError {
    fn from(e: SeroError) -> WireError {
        let code = match &e {
            SeroError::Sector(_) => ErrorCode::SectorIo,
            SeroError::Line(_) => ErrorCode::BadLine,
            SeroError::HashBlockAccess { .. } => ErrorCode::HashBlockAccess,
            SeroError::ReadOnly { .. } => ErrorCode::ReadOnlyBlock,
            SeroError::OverlapsHeatedLine { .. } => ErrorCode::OverlapsHeatedLine,
            SeroError::DataUnreadable { .. } => ErrorCode::DataUnreadable,
            SeroError::HeatVerifyFailed { .. } => ErrorCode::HeatVerifyFailed,
            SeroError::WriteDegraded { .. } => ErrorCode::WriteDegraded,
            SeroError::BadScrubState { .. } => ErrorCode::BadScrubState,
        };
        WireError::new(code, e)
    }
}

impl From<SchedConfigError> for WireError {
    fn from(e: SchedConfigError) -> WireError {
        let code = match &e {
            SchedConfigError::ZeroBudget => ErrorCode::ZeroBudget,
            SchedConfigError::ZeroQuantum => ErrorCode::ZeroQuantum,
            SchedConfigError::BudgetExceedsQuantum { .. } => ErrorCode::BudgetExceedsQuantum,
        };
        WireError::new(code, e)
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> WireError {
        let code = match &e {
            FrameError::UnsupportedVersion { .. } => ErrorCode::VersionMismatch,
            _ => ErrorCode::BadFrame,
        };
        WireError::new(code, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_core::line::Line;

    #[test]
    fn codes_round_trip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for code in ErrorCode::ALL {
            assert!(seen.insert(code.code()), "duplicate wire value {code}");
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
            assert!(!code.name().is_empty());
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(u16::MAX), None);
    }

    #[test]
    fn sero_error_conversion_is_total_and_keeps_display() {
        let line = Line::new(0, 2).unwrap();
        let cases: Vec<(SeroError, ErrorCode)> = vec![
            (
                SeroError::HashBlockAccess { pba: 7 },
                ErrorCode::HashBlockAccess,
            ),
            (
                SeroError::ReadOnly { line, pba: 1 },
                ErrorCode::ReadOnlyBlock,
            ),
            (
                SeroError::OverlapsHeatedLine {
                    line,
                    existing: line,
                },
                ErrorCode::OverlapsHeatedLine,
            ),
            (
                SeroError::HeatVerifyFailed {
                    line,
                    reason: "torn".into(),
                },
                ErrorCode::HeatVerifyFailed,
            ),
            (
                SeroError::WriteDegraded {
                    pba: 3,
                    unwritable_dots: 9,
                },
                ErrorCode::WriteDegraded,
            ),
            (
                SeroError::BadScrubState {
                    reason: "crc".into(),
                },
                ErrorCode::BadScrubState,
            ),
        ];
        for (err, code) in cases {
            let display = err.to_string();
            let wire = WireError::from(err);
            assert_eq!(wire.code, code);
            assert_eq!(wire.detail, display, "display text must survive intact");
        }
    }

    #[test]
    fn sched_config_errors_map_one_to_one() {
        for (err, code) in [
            (SchedConfigError::ZeroBudget, ErrorCode::ZeroBudget),
            (SchedConfigError::ZeroQuantum, ErrorCode::ZeroQuantum),
            (
                SchedConfigError::BudgetExceedsQuantum {
                    budget_ns: 2,
                    quantum_ns: 1,
                },
                ErrorCode::BudgetExceedsQuantum,
            ),
        ] {
            let wire = WireError::from(err);
            assert_eq!(wire.code, code);
            assert_eq!(wire.detail, err.to_string());
        }
    }

    #[test]
    fn wire_error_display_carries_both_code_and_detail() {
        let w = WireError::new(ErrorCode::TamperDetected, "hash mismatch at line 8+4");
        let text = w.to_string();
        assert!(text.contains("TAMPER-DETECTED"));
        assert!(text.contains("48"));
        assert!(text.contains("hash mismatch at line 8+4"));
    }
}
