//! The versioned command set: [`Request`], [`Response`], and the wire
//! mirrors of the in-process types they carry.
//!
//! Encoding is a deliberately boring hand-rolled byte format (tag byte
//! per enum variant, little-endian integers, `u32`-length-prefixed byte
//! strings) — the same school as the checkpoint and scrub-state records,
//! so there is no serialization framework to version independently of
//! the protocol. [`Request::decode`]/[`Response::decode`] accept exactly
//! the bytes their encoders produce: unknown tags, short fields, bad
//! UTF-8, and trailing garbage all return
//! [`FrameError::Malformed`] — never a panic, never a partial value.

use crate::error::{ErrorCode, WireError};
use crate::frame::FrameError;
use sero_core::line::Line;

// --- wire mirrors of in-process types ---------------------------------------

/// Allocation-class hint carried by create/write (mirror of the fs
/// `WriteClass`, which this crate cannot name without a cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireClass {
    /// Ordinary read-write data.
    Normal,
    /// Data expected to be heated soon.
    Archival,
}

/// A heated line on the wire: start block + order (a mirror of
/// [`Line`], which it converts to/from losslessly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLine {
    /// First block of the line.
    pub start: u64,
    /// log2 of the line's block count.
    pub order: u32,
}

impl From<Line> for WireLine {
    fn from(line: Line) -> WireLine {
        WireLine {
            start: line.start(),
            order: line.order(),
        }
    }
}

impl WireLine {
    /// Reconstructs the in-process [`Line`].
    ///
    /// # Errors
    ///
    /// [`sero_core::line::LineError`] if the pair is not a valid aligned
    /// line (a hostile or corrupt peer can claim anything).
    pub fn to_line(self) -> Result<Line, sero_core::line::LineError> {
        Line::new(self.start, self.order)
    }
}

/// [`crate::Response::Stat`] payload — the wire mirror of the fs
/// `FileInfo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFileInfo {
    /// Inode number.
    pub ino: u64,
    /// Size in bytes.
    pub size: u64,
    /// Number of data blocks.
    pub blocks: u64,
    /// Modification time.
    pub mtime: u64,
    /// Protecting line, when heated.
    pub heated: Option<WireLine>,
    /// True when the serving file system is in degraded mode
    /// (quarantined blocks): reads and verification still work, mutating
    /// commands answer [`ErrorCode::Degraded`].
    pub degraded: bool,
}

/// Verify verdicts that are *not* errors. Tamper evidence never takes
/// this shape: it answers [`ErrorCode::TamperDetected`] instead, so a
/// remote auditor cannot mistake a detection for success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireVerdict {
    /// The heated hash matches the data.
    Intact {
        /// The protecting line.
        line: WireLine,
        /// The heated digest, as 32 raw bytes.
        digest: Vec<u8>,
        /// Heat timestamp from the payload.
        timestamp: u64,
        /// Caller-supplied metadata sealed at heat time.
        metadata: Vec<u8>,
    },
    /// The file has no heated line; there is nothing to verify against.
    NotHeated,
}

/// Lifecycle state of the served scrub pass (mirror of the scheduler's
/// `SchedState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSchedState {
    /// Accepting slices.
    Running,
    /// Paused between slices.
    Paused,
    /// Cancelled; the epoch did not advance.
    Cancelled,
    /// Work list drained; the epoch advanced.
    Complete,
}

/// What one served scrub-tick did (mirror of the scheduler's
/// `SliceOutcome`; `u128` device times saturate into `u64` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSliceOutcome {
    /// Verified `lines` lines in `device_ns` of device time.
    Ran {
        /// Lines verified in this slice.
        lines: u64,
        /// Device time the slice consumed.
        device_ns: u64,
    },
    /// The quantum's budget is exhausted until `resume_at_ns`. The
    /// daemon advances the device clock to that instant before
    /// answering — wall-clock time passes between requests, and the
    /// simulated clock only moves when something spends it.
    Throttled {
        /// Device-clock time at which the next quantum opens.
        resume_at_ns: u64,
    },
    /// The pass is paused; nothing ran.
    Paused,
    /// Nothing left to do: the pass completed or was cancelled.
    Idle,
}

/// Point-in-time progress of the served scrub pass (mirror of
/// `SchedProgress`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireScrubStatus {
    /// Lifecycle state.
    pub state: WireSchedState,
    /// The epoch this pass will complete (or completed) as.
    pub epoch: u64,
    /// True when the pass runs incrementally.
    pub incremental: bool,
    /// Lines verified so far.
    pub verified: u64,
    /// Lines still queued.
    pub remaining: u64,
    /// Lines skipped as already covered (incremental mode).
    pub skipped: u64,
    /// Tamper findings so far.
    pub tampered: u64,
    /// Slices run so far.
    pub slices: u64,
    /// Scrub device time consumed so far.
    pub scrub_device_ns: u64,
}

/// One device's row in a [`crate::Response::FleetStatus`] answer — the
/// capacity, evidence, and load-probe numbers a fleet coordinator or
/// auditor polls for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMemberStatus {
    /// Member index (0 for a single-device daemon; the wire shape
    /// already fits a future multi-device server).
    pub member: u32,
    /// Total blocks on the device.
    pub total_blocks: u64,
    /// Blocks inside heated (read-only) lines.
    pub read_only_blocks: u64,
    /// Blocks still write-many.
    pub wmrm_blocks: u64,
    /// Number of heated lines.
    pub heated_lines: u64,
    /// Heated lines currently carrying a suspicion flag.
    pub flagged_lines: u64,
    /// Completed scrub passes.
    pub scrub_epoch: u64,
    /// Foreground requests the load probe has seen.
    pub arrivals: u64,
    /// EWMA inter-arrival gap, device ns.
    pub ewma_gap_ns: u64,
    /// EWMA busy time per request, device ns.
    pub ewma_busy_ns: u64,
    /// Measured utilization in parts-per-million (`busy / gap`).
    pub utilization_ppm: u32,
    /// The device clock.
    pub device_clock_ns: u64,
    /// Blocks quarantined after persistent faults.
    pub quarantined_blocks: u64,
    /// True when the member is in degraded mode (writes refused).
    pub degraded: bool,
}

// --- the command set ---------------------------------------------------------

/// A client-to-server command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Create `name` with `data`.
    Create {
        /// File name.
        name: String,
        /// File contents.
        data: Vec<u8>,
        /// Allocation-class hint.
        class: WireClass,
    },
    /// Read the full contents of `name`.
    Read {
        /// File name.
        name: String,
    },
    /// Overwrite `name` with `data` (refused for heated files).
    Write {
        /// File name.
        name: String,
        /// New contents.
        data: Vec<u8>,
        /// Allocation-class hint.
        class: WireClass,
    },
    /// Remove `name` (refused for heated files).
    Remove {
        /// File name.
        name: String,
    },
    /// Metadata for `name`.
    Stat {
        /// File name.
        name: String,
    },
    /// File names, paginated. Both fields encode *appended* to the
    /// original bare tag — and only when non-default — so a `list_all`
    /// request is byte-identical to what protocol-version-1 clients have
    /// always sent, and old servers decode it unchanged.
    List {
        /// Resume after this name (exclusive); `None` starts from the
        /// beginning. Obtained from [`Response::Names::next`].
        cursor: Option<String>,
        /// Maximum names per page; `0` means "as many as fit one frame"
        /// (the server still paginates rather than overflow
        /// [`crate::MAX_PAYLOAD_BYTES`]).
        limit: u32,
    },
    /// Heat `name`: relocate into a fresh line, burn the hash, freeze.
    Heat {
        /// File name.
        name: String,
        /// Metadata sealed into the hash-block payload.
        metadata: Vec<u8>,
        /// Timestamp sealed into the payload.
        timestamp: u64,
    },
    /// Verify the heated line protecting `name`.
    Verify {
        /// File name.
        name: String,
    },
    /// Start a background scrub pass served in slices via
    /// [`Request::ScrubTick`]. `budget_ns == 0 && quantum_ns == 0`
    /// requests a greedy (stop-the-world) pass; anything else is
    /// validated like `SchedConfig::budgeted`.
    ScrubStart {
        /// Scrub device-time budget per quantum (0 with quantum 0 =
        /// greedy).
        budget_ns: u64,
        /// Scheduling quantum.
        quantum_ns: u64,
        /// Verify only the delta since the last completed pass.
        incremental: bool,
    },
    /// Grant the running pass one bounded slice.
    ScrubTick,
    /// Progress of the current (or last) pass.
    ScrubStatus,
    /// Capacity, evidence, and load-probe status of every served device.
    FleetStatus,
    /// Raw magnetic write behind the protocol's back — the §5 attacker's
    /// interface, served only when the daemon explicitly enables it
    /// (attack drills, tamper-detection smoke tests). `data` must be
    /// exactly one sector.
    RawWrite {
        /// Physical block address.
        pba: u64,
        /// Sector contents.
        data: Vec<u8>,
    },
}

/// A server-to-client answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Anything that failed, wire-coded.
    Error(WireError),
    /// Answer to [`Request::Ping`].
    Pong,
    /// File created.
    Created {
        /// The new inode number.
        ino: u64,
    },
    /// File contents.
    Data {
        /// The bytes read.
        bytes: Vec<u8>,
    },
    /// Overwrite applied.
    Written,
    /// File removed.
    Removed,
    /// Answer to [`Request::Stat`].
    Stat(WireFileInfo),
    /// Answer to [`Request::List`] — one page.
    Names {
        /// The names of this page, in listing order.
        names: Vec<String>,
        /// When `Some`, more names follow: pass it back as
        /// [`Request::List`]'s `cursor`. Encoded only when present, so a
        /// final (or small) page is byte-identical to the pre-pagination
        /// shape.
        next: Option<String>,
    },
    /// File heated.
    Heated {
        /// The protecting line.
        line: WireLine,
    },
    /// A verify that found no evidence (evidence answers
    /// [`ErrorCode::TamperDetected`] instead).
    Verified(WireVerdict),
    /// Scrub pass admitted.
    ScrubStarted {
        /// The epoch the pass will complete as.
        epoch: u64,
        /// True when the pass runs incrementally.
        incremental: bool,
        /// Lines queued for verification.
        pending: u64,
        /// Lines skipped as already covered.
        skipped: u64,
    },
    /// Answer to [`Request::ScrubTick`].
    ScrubTicked {
        /// What the slice did.
        outcome: WireSliceOutcome,
        /// Progress after the slice.
        status: WireScrubStatus,
    },
    /// Answer to [`Request::ScrubStatus`] (`None` when no pass was ever
    /// started).
    ScrubState {
        /// Progress of the current or last pass.
        status: Option<WireScrubStatus>,
    },
    /// Answer to [`Request::FleetStatus`].
    FleetStatus {
        /// One row per served device.
        members: Vec<WireMemberStatus>,
    },
    /// Raw write applied (tamper evidence now lives on the medium).
    RawWritten,
}

// --- byte codec --------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new(tag: u8) -> Enc {
        Enc(vec![tag])
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.0.push(v as u8);
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn malformed(reason: impl Into<String>) -> FrameError {
    FrameError::Malformed {
        reason: reason.into(),
    }
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.pos + n > self.buf.len() {
            return Err(malformed(format!(
                "need {n} bytes at offset {}, payload has {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("bool byte {other}"))),
        }
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> Result<String, FrameError> {
        String::from_utf8(self.bytes()?).map_err(|_| malformed("string is not UTF-8"))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn enc_class(e: &mut Enc, class: WireClass) {
    e.u8(match class {
        WireClass::Normal => 0,
        WireClass::Archival => 1,
    });
}

fn dec_class(d: &mut Dec<'_>) -> Result<WireClass, FrameError> {
    match d.u8()? {
        0 => Ok(WireClass::Normal),
        1 => Ok(WireClass::Archival),
        other => Err(malformed(format!("write-class byte {other}"))),
    }
}

fn enc_line(e: &mut Enc, line: WireLine) {
    e.u64(line.start);
    e.u32(line.order);
}

fn dec_line(d: &mut Dec<'_>) -> Result<WireLine, FrameError> {
    Ok(WireLine {
        start: d.u64()?,
        order: d.u32()?,
    })
}

fn enc_status(e: &mut Enc, s: &WireScrubStatus) {
    e.u8(match s.state {
        WireSchedState::Running => 0,
        WireSchedState::Paused => 1,
        WireSchedState::Cancelled => 2,
        WireSchedState::Complete => 3,
    });
    e.u64(s.epoch);
    e.bool(s.incremental);
    e.u64(s.verified);
    e.u64(s.remaining);
    e.u64(s.skipped);
    e.u64(s.tampered);
    e.u64(s.slices);
    e.u64(s.scrub_device_ns);
}

fn dec_status(d: &mut Dec<'_>) -> Result<WireScrubStatus, FrameError> {
    let state = match d.u8()? {
        0 => WireSchedState::Running,
        1 => WireSchedState::Paused,
        2 => WireSchedState::Cancelled,
        3 => WireSchedState::Complete,
        other => return Err(malformed(format!("sched-state byte {other}"))),
    };
    Ok(WireScrubStatus {
        state,
        epoch: d.u64()?,
        incremental: d.bool()?,
        verified: d.u64()?,
        remaining: d.u64()?,
        skipped: d.u64()?,
        tampered: d.u64()?,
        slices: d.u64()?,
        scrub_device_ns: d.u64()?,
    })
}

impl Request {
    /// A [`Request::List`] for everything: first page, server-chosen
    /// page size. Encodes byte-identically to the pre-pagination `List`.
    pub fn list_all() -> Request {
        Request::List {
            cursor: None,
            limit: 0,
        }
    }

    /// Encodes the request payload (frame it with
    /// [`crate::frame::encode_request`] or
    /// [`crate::frame::write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut e;
        match self {
            Request::Ping => e = Enc::new(0),
            Request::Create { name, data, class } => {
                e = Enc::new(1);
                e.str(name);
                enc_class(&mut e, *class);
                e.bytes(data);
            }
            Request::Read { name } => {
                e = Enc::new(2);
                e.str(name);
            }
            Request::Write { name, data, class } => {
                e = Enc::new(3);
                e.str(name);
                enc_class(&mut e, *class);
                e.bytes(data);
            }
            Request::Remove { name } => {
                e = Enc::new(4);
                e.str(name);
            }
            Request::Stat { name } => {
                e = Enc::new(5);
                e.str(name);
            }
            Request::List { cursor, limit } => {
                e = Enc::new(6);
                // Appended, and only when non-default: a full listing
                // from page one stays the one-byte wire shape of
                // protocol clients that predate pagination.
                if cursor.is_some() || *limit != 0 {
                    match cursor {
                        None => e.u8(0),
                        Some(c) => {
                            e.u8(1);
                            e.str(c);
                        }
                    }
                    e.u32(*limit);
                }
            }
            Request::Heat {
                name,
                metadata,
                timestamp,
            } => {
                e = Enc::new(7);
                e.str(name);
                e.u64(*timestamp);
                e.bytes(metadata);
            }
            Request::Verify { name } => {
                e = Enc::new(8);
                e.str(name);
            }
            Request::ScrubStart {
                budget_ns,
                quantum_ns,
                incremental,
            } => {
                e = Enc::new(9);
                e.u64(*budget_ns);
                e.u64(*quantum_ns);
                e.bool(*incremental);
            }
            Request::ScrubTick => e = Enc::new(10),
            Request::ScrubStatus => e = Enc::new(11),
            Request::FleetStatus => e = Enc::new(12),
            Request::RawWrite { pba, data } => {
                e = Enc::new(13);
                e.u64(*pba);
                e.bytes(data);
            }
        }
        e.0
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] for unknown tags, short fields, bad
    /// UTF-8, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, FrameError> {
        let mut d = Dec::new(payload);
        let req = match d.u8()? {
            0 => Request::Ping,
            1 => {
                let name = d.str()?;
                let class = dec_class(&mut d)?;
                let data = d.bytes()?;
                Request::Create { name, data, class }
            }
            2 => Request::Read { name: d.str()? },
            3 => {
                let name = d.str()?;
                let class = dec_class(&mut d)?;
                let data = d.bytes()?;
                Request::Write { name, data, class }
            }
            4 => Request::Remove { name: d.str()? },
            5 => Request::Stat { name: d.str()? },
            6 => {
                if d.remaining() == 0 {
                    Request::List {
                        cursor: None,
                        limit: 0,
                    }
                } else {
                    let cursor = match d.u8()? {
                        0 => None,
                        1 => Some(d.str()?),
                        other => return Err(malformed(format!("option byte {other}"))),
                    };
                    Request::List {
                        cursor,
                        limit: d.u32()?,
                    }
                }
            }
            7 => {
                let name = d.str()?;
                let timestamp = d.u64()?;
                let metadata = d.bytes()?;
                Request::Heat {
                    name,
                    metadata,
                    timestamp,
                }
            }
            8 => Request::Verify { name: d.str()? },
            9 => Request::ScrubStart {
                budget_ns: d.u64()?,
                quantum_ns: d.u64()?,
                incremental: d.bool()?,
            },
            10 => Request::ScrubTick,
            11 => Request::ScrubStatus,
            12 => Request::FleetStatus,
            13 => Request::RawWrite {
                pba: d.u64()?,
                data: d.bytes()?,
            },
            other => return Err(malformed(format!("unknown request tag {other}"))),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response payload (frame it with
    /// [`crate::frame::encode_response`] or
    /// [`crate::frame::write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut e;
        match self {
            Response::Error(err) => {
                e = Enc::new(0);
                e.u16(err.code.code());
                e.str(&err.detail);
            }
            Response::Pong => e = Enc::new(1),
            Response::Created { ino } => {
                e = Enc::new(2);
                e.u64(*ino);
            }
            Response::Data { bytes } => {
                e = Enc::new(3);
                e.bytes(bytes);
            }
            Response::Written => e = Enc::new(4),
            Response::Removed => e = Enc::new(5),
            Response::Stat(info) => {
                e = Enc::new(6);
                e.u64(info.ino);
                e.u64(info.size);
                e.u64(info.blocks);
                e.u64(info.mtime);
                match info.heated {
                    None => e.u8(0),
                    Some(line) => {
                        e.u8(1);
                        enc_line(&mut e, line);
                    }
                }
                e.bool(info.degraded);
            }
            Response::Names { names, next } => {
                e = Enc::new(7);
                e.u32(names.len() as u32);
                for name in names {
                    e.str(name);
                }
                // Appended only when a further page exists: a complete
                // answer keeps the pre-pagination byte shape.
                if let Some(next) = next {
                    e.u8(1);
                    e.str(next);
                }
            }
            Response::Heated { line } => {
                e = Enc::new(8);
                enc_line(&mut e, *line);
            }
            Response::Verified(verdict) => {
                e = Enc::new(9);
                match verdict {
                    WireVerdict::Intact {
                        line,
                        digest,
                        timestamp,
                        metadata,
                    } => {
                        e.u8(0);
                        enc_line(&mut e, *line);
                        e.bytes(digest);
                        e.u64(*timestamp);
                        e.bytes(metadata);
                    }
                    WireVerdict::NotHeated => e.u8(1),
                }
            }
            Response::ScrubStarted {
                epoch,
                incremental,
                pending,
                skipped,
            } => {
                e = Enc::new(10);
                e.u64(*epoch);
                e.bool(*incremental);
                e.u64(*pending);
                e.u64(*skipped);
            }
            Response::ScrubTicked { outcome, status } => {
                e = Enc::new(11);
                match outcome {
                    WireSliceOutcome::Ran { lines, device_ns } => {
                        e.u8(0);
                        e.u64(*lines);
                        e.u64(*device_ns);
                    }
                    WireSliceOutcome::Throttled { resume_at_ns } => {
                        e.u8(1);
                        e.u64(*resume_at_ns);
                    }
                    WireSliceOutcome::Paused => e.u8(2),
                    WireSliceOutcome::Idle => e.u8(3),
                }
                enc_status(&mut e, status);
            }
            Response::ScrubState { status } => {
                e = Enc::new(12);
                match status {
                    None => e.u8(0),
                    Some(s) => {
                        e.u8(1);
                        enc_status(&mut e, s);
                    }
                }
            }
            Response::FleetStatus { members } => {
                e = Enc::new(13);
                e.u32(members.len() as u32);
                for m in members {
                    e.u32(m.member);
                    e.u64(m.total_blocks);
                    e.u64(m.read_only_blocks);
                    e.u64(m.wmrm_blocks);
                    e.u64(m.heated_lines);
                    e.u64(m.flagged_lines);
                    e.u64(m.scrub_epoch);
                    e.u64(m.arrivals);
                    e.u64(m.ewma_gap_ns);
                    e.u64(m.ewma_busy_ns);
                    e.u32(m.utilization_ppm);
                    e.u64(m.device_clock_ns);
                    e.u64(m.quarantined_blocks);
                    e.bool(m.degraded);
                }
            }
            Response::RawWritten => e = Enc::new(14),
        }
        e.0
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] for unknown tags, short fields, bad
    /// UTF-8, unknown error codes, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, FrameError> {
        let mut d = Dec::new(payload);
        let resp = match d.u8()? {
            0 => {
                let raw = d.u16()?;
                let code = ErrorCode::from_code(raw)
                    .ok_or_else(|| malformed(format!("unknown error code {raw}")))?;
                Response::Error(WireError {
                    code,
                    detail: d.str()?,
                })
            }
            1 => Response::Pong,
            2 => Response::Created { ino: d.u64()? },
            3 => Response::Data { bytes: d.bytes()? },
            4 => Response::Written,
            5 => Response::Removed,
            6 => {
                let ino = d.u64()?;
                let size = d.u64()?;
                let blocks = d.u64()?;
                let mtime = d.u64()?;
                let heated = match d.u8()? {
                    0 => None,
                    1 => Some(dec_line(&mut d)?),
                    other => return Err(malformed(format!("option byte {other}"))),
                };
                Response::Stat(WireFileInfo {
                    ino,
                    size,
                    blocks,
                    mtime,
                    heated,
                    degraded: d.bool()?,
                })
            }
            7 => {
                let n = d.u32()? as usize;
                let mut names = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    names.push(d.str()?);
                }
                let next = if d.remaining() == 0 {
                    None
                } else {
                    match d.u8()? {
                        1 => Some(d.str()?),
                        other => return Err(malformed(format!("option byte {other}"))),
                    }
                };
                Response::Names { names, next }
            }
            8 => Response::Heated {
                line: dec_line(&mut d)?,
            },
            9 => match d.u8()? {
                0 => Response::Verified(WireVerdict::Intact {
                    line: dec_line(&mut d)?,
                    digest: d.bytes()?,
                    timestamp: d.u64()?,
                    metadata: d.bytes()?,
                }),
                1 => Response::Verified(WireVerdict::NotHeated),
                other => return Err(malformed(format!("verdict byte {other}"))),
            },
            10 => Response::ScrubStarted {
                epoch: d.u64()?,
                incremental: d.bool()?,
                pending: d.u64()?,
                skipped: d.u64()?,
            },
            11 => {
                let outcome = match d.u8()? {
                    0 => WireSliceOutcome::Ran {
                        lines: d.u64()?,
                        device_ns: d.u64()?,
                    },
                    1 => WireSliceOutcome::Throttled {
                        resume_at_ns: d.u64()?,
                    },
                    2 => WireSliceOutcome::Paused,
                    3 => WireSliceOutcome::Idle,
                    other => return Err(malformed(format!("slice-outcome byte {other}"))),
                };
                Response::ScrubTicked {
                    outcome,
                    status: dec_status(&mut d)?,
                }
            }
            12 => Response::ScrubState {
                status: match d.u8()? {
                    0 => None,
                    1 => Some(dec_status(&mut d)?),
                    other => return Err(malformed(format!("option byte {other}"))),
                },
            },
            13 => {
                let n = d.u32()? as usize;
                let mut members = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    members.push(WireMemberStatus {
                        member: d.u32()?,
                        total_blocks: d.u64()?,
                        read_only_blocks: d.u64()?,
                        wmrm_blocks: d.u64()?,
                        heated_lines: d.u64()?,
                        flagged_lines: d.u64()?,
                        scrub_epoch: d.u64()?,
                        arrivals: d.u64()?,
                        ewma_gap_ns: d.u64()?,
                        ewma_busy_ns: d.u64()?,
                        utilization_ppm: d.u32()?,
                        device_clock_ns: d.u64()?,
                        quarantined_blocks: d.u64()?,
                        degraded: d.bool()?,
                    });
                }
                Response::FleetStatus { members }
            }
            14 => Response::RawWritten,
            other => return Err(malformed(format!("unknown response tag {other}"))),
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_line_round_trips_a_real_line() {
        let line = Line::new(16, 3).unwrap();
        let wire = WireLine::from(line);
        assert_eq!(wire.to_line().unwrap(), line);
        assert!(WireLine { start: 3, order: 3 }.to_line().is_err());
    }

    #[test]
    fn every_request_variant_round_trips() {
        let requests = vec![
            Request::Ping,
            Request::Create {
                name: "a".into(),
                data: vec![1, 2, 3],
                class: WireClass::Archival,
            },
            Request::Read { name: "a".into() },
            Request::Write {
                name: "a".into(),
                data: vec![],
                class: WireClass::Normal,
            },
            Request::Remove { name: "a".into() },
            Request::Stat { name: "a".into() },
            Request::list_all(),
            Request::List {
                cursor: None,
                limit: 500,
            },
            Request::List {
                cursor: Some("m/0042".into()),
                limit: 0,
            },
            Request::List {
                cursor: Some("m/0042".into()),
                limit: 128,
            },
            Request::Heat {
                name: "a".into(),
                metadata: b"m".to_vec(),
                timestamp: u64::MAX,
            },
            Request::Verify { name: "a".into() },
            Request::ScrubStart {
                budget_ns: 5,
                quantum_ns: 10,
                incremental: true,
            },
            Request::ScrubTick,
            Request::ScrubStatus,
            Request::FleetStatus,
            Request::RawWrite {
                pba: 9,
                data: vec![0xEE; 8],
            },
        ];
        for req in requests {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        let status = WireScrubStatus {
            state: WireSchedState::Running,
            epoch: 2,
            incremental: true,
            verified: 3,
            remaining: 4,
            skipped: 5,
            tampered: 1,
            slices: 7,
            scrub_device_ns: 999,
        };
        let responses = vec![
            Response::Error(WireError::new(ErrorCode::NotFound, "no such file")),
            Response::Pong,
            Response::Created { ino: 42 },
            Response::Data {
                bytes: vec![9; 700],
            },
            Response::Written,
            Response::Removed,
            Response::Stat(WireFileInfo {
                ino: 1,
                size: 2,
                blocks: 3,
                mtime: 4,
                heated: Some(WireLine { start: 8, order: 3 }),
                degraded: false,
            }),
            Response::Stat(WireFileInfo {
                ino: 1,
                size: 2,
                blocks: 3,
                mtime: 4,
                heated: None,
                degraded: true,
            }),
            Response::Names {
                names: vec!["x".into(), "y".into()],
                next: None,
            },
            Response::Names {
                names: vec!["x".into(), "y".into()],
                next: Some("y".into()),
            },
            Response::Names {
                names: Vec::new(),
                next: None,
            },
            Response::Heated {
                line: WireLine { start: 8, order: 3 },
            },
            Response::Verified(WireVerdict::Intact {
                line: WireLine { start: 8, order: 3 },
                digest: vec![7; 32],
                timestamp: 12,
                metadata: b"audit".to_vec(),
            }),
            Response::Verified(WireVerdict::NotHeated),
            Response::ScrubStarted {
                epoch: 1,
                incremental: false,
                pending: 6,
                skipped: 0,
            },
            Response::ScrubTicked {
                outcome: WireSliceOutcome::Ran {
                    lines: 2,
                    device_ns: 5,
                },
                status,
            },
            Response::ScrubTicked {
                outcome: WireSliceOutcome::Throttled { resume_at_ns: 77 },
                status,
            },
            Response::ScrubState { status: None },
            Response::ScrubState {
                status: Some(status),
            },
            Response::FleetStatus {
                members: vec![WireMemberStatus {
                    member: 0,
                    total_blocks: 1024,
                    read_only_blocks: 64,
                    wmrm_blocks: 960,
                    heated_lines: 8,
                    flagged_lines: 1,
                    scrub_epoch: 3,
                    arrivals: 100,
                    ewma_gap_ns: 5000,
                    ewma_busy_ns: 2500,
                    utilization_ppm: 500_000,
                    device_clock_ns: 1_000_000,
                    quarantined_blocks: 2,
                    degraded: true,
                }],
            },
            Response::RawWritten,
        ];
        for resp in responses {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn pagination_fields_append_to_the_legacy_wire_shape() {
        // A list-everything request is the one byte v1 clients always
        // sent, and a complete answer carries no pagination suffix — so
        // both directions interoperate with pre-pagination peers.
        assert_eq!(Request::list_all().encode(), vec![6]);
        let full = Response::Names {
            names: vec!["a".into()],
            next: None,
        };
        let mut legacy = vec![7u8];
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.push(b'a');
        assert_eq!(full.encode(), legacy);
        assert_eq!(Response::decode(&legacy).unwrap(), full);
    }

    #[test]
    fn trailing_bytes_and_unknown_tags_are_malformed() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(FrameError::Malformed { .. })
        ));
        assert!(matches!(
            Request::decode(&[200]),
            Err(FrameError::Malformed { .. })
        ));
        assert!(matches!(
            Response::decode(&[200]),
            Err(FrameError::Malformed { .. })
        ));
        assert!(matches!(
            Response::decode(&[]),
            Err(FrameError::Malformed { .. })
        ));
    }
}
