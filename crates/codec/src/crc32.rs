//! CRC-32 (IEEE 802.3) used in the ~15 % sector overhead.
//!
//! Pozidis et al.'s probe-storage sector format — which the paper adopts —
//! reserves about 15 % of each 512-byte sector for "the sector header, error
//! correction, and cyclic redundancy check". This module supplies the CRC
//! part; Reed–Solomon supplies the ECC part.
//!
//! # Examples
//!
//! ```
//! assert_eq!(sero_codec::crc32::crc32(b"123456789"), 0xCBF4_3926);
//! ```

/// Reflected polynomial for CRC-32/ISO-HDLC (the "zlib" CRC).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Streaming CRC-32 computation.
///
/// # Examples
///
/// ```
/// use sero_codec::crc32::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finalize(), sero_codec::crc32::crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// Creates a CRC in the initial (all-ones) state.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xff) as usize];
        }
    }

    /// Returns the final checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // Standard CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xffu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).collect();
        for split in [0, 1, 100, 255, 256] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32(&data));
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![0x5au8; 512];
        let reference = crc32(&data);
        for byte in [0usize, 100, 511] {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn detects_swap() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
