//! Manchester cell coding for electrically written (heated) data.
//!
//! The paper adopts Molnar et al.'s PROM trick for the patterned medium:
//! each logical bit occupies a *cell* of two physical dots, where a dot is
//! either unheated (`U`) or irreversibly heated (`H`):
//!
//! | cell  | meaning                | paper notation |
//! |-------|------------------------|----------------|
//! | `UU`  | not yet written        | blank          |
//! | `HU`  | logical 0              | Figure 3       |
//! | `UH`  | logical 1              | Figure 3       |
//! | `HH`  | **evidence of tampering** | §5.1        |
//!
//! Because the electrical write `ewb` can only turn `U` into `H` (heating is
//! irreversible), the only possible modification of a written cell is
//! `HU → HH` or `UH → HH`, both of which decode to [`Cell::Tampered`]. The
//! encoding also guarantees that a heated dot has at most one heated
//! neighbour, which spreads heat load across the medium (§3, "spreading out
//! heated bits is good for reliability"; ablated in experiment EXP-THERM).
//!
//! # Examples
//!
//! ```
//! use sero_codec::manchester::{decode, encode, Cell, Scan};
//!
//! let dots = encode([true, false, true].iter().copied());
//! assert_eq!(dots.len(), 6); // two dots per logical bit
//! let scan: Scan = decode(&dots);
//! assert_eq!(scan.bits(), Some(vec![true, false, true]));
//! assert!(scan.is_clean());
//! ```

use core::fmt;

/// Decoded state of one two-dot Manchester cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// `UU` — the cell has never been electrically written.
    Blank,
    /// `HU` — an electrically written logical 0.
    Zero,
    /// `UH` — an electrically written logical 1.
    One,
    /// `HH` — an illegal code: someone heated a dot of a written cell.
    Tampered,
}

impl Cell {
    /// Classifies a pair of dot heat flags (`true` = heated).
    pub fn from_dots(first: bool, second: bool) -> Cell {
        match (first, second) {
            (false, false) => Cell::Blank,
            (true, false) => Cell::Zero,
            (false, true) => Cell::One,
            (true, true) => Cell::Tampered,
        }
    }

    /// The logical value carried by the cell, if it holds one.
    pub fn value(self) -> Option<bool> {
        match self {
            Cell::Zero => Some(false),
            Cell::One => Some(true),
            Cell::Blank | Cell::Tampered => None,
        }
    }

    /// The two dot heat flags that represent this cell.
    ///
    /// # Panics
    ///
    /// Panics when called on [`Cell::Tampered`]: the encoder never produces
    /// the illegal code.
    pub fn to_dots(self) -> (bool, bool) {
        match self {
            Cell::Blank => (false, false),
            Cell::Zero => (true, false),
            Cell::One => (false, true),
            Cell::Tampered => panic!("the HH cell is never encoded, only detected"),
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cell::Blank => "UU",
            Cell::Zero => "HU",
            Cell::One => "UH",
            Cell::Tampered => "HH",
        };
        f.write_str(s)
    }
}

/// Result of scanning a run of dots as Manchester cells.
///
/// A scan never fails: tampering and blanks are *findings*, not errors,
/// because detecting them is the whole point of the medium.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    cells: Vec<Cell>,
}

impl Scan {
    /// The decoded cells in medium order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Indices of cells that decode to the illegal `HH` code.
    pub fn tampered_cells(&self) -> Vec<usize> {
        self.indices_of(Cell::Tampered)
    }

    /// Indices of cells that were never written (`UU`).
    pub fn blank_cells(&self) -> Vec<usize> {
        self.indices_of(Cell::Blank)
    }

    /// True when every cell carries a valid logical value.
    pub fn is_clean(&self) -> bool {
        self.cells.iter().all(|c| c.value().is_some())
    }

    /// True when no cell shows the illegal `HH` code (blank cells allowed).
    pub fn is_untampered(&self) -> bool {
        self.cells.iter().all(|c| *c != Cell::Tampered)
    }

    /// The logical bits, if the scan is clean; `None` otherwise.
    pub fn bits(&self) -> Option<Vec<bool>> {
        self.cells.iter().map(|c| c.value()).collect()
    }

    /// The logical bits packed MSB-first into bytes, if the scan is clean.
    ///
    /// Cell count must be a multiple of 8 for a byte-exact result; trailing
    /// bits are zero-padded.
    pub fn bytes(&self) -> Option<Vec<u8>> {
        let bits = self.bits()?;
        Some(pack_bits(&bits))
    }

    fn indices_of(&self, kind: Cell) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| (*c == kind).then_some(i))
            .collect()
    }
}

/// Encodes logical bits into dot heat flags, two dots per bit.
///
/// `true` in the output means "heat this dot".
pub fn encode(bits: impl IntoIterator<Item = bool>) -> Vec<bool> {
    let mut dots = Vec::new();
    for bit in bits {
        let cell = if bit { Cell::One } else { Cell::Zero };
        let (a, b) = cell.to_dots();
        dots.push(a);
        dots.push(b);
    }
    dots
}

/// Encodes bytes MSB-first into dot heat flags, 16 dots per byte.
///
/// # Examples
///
/// ```
/// let dots = sero_codec::manchester::encode_bytes(&[0x80]);
/// assert_eq!(dots.len(), 16);
/// assert_eq!(&dots[..2], &[false, true]); // MSB is 1 -> UH
/// ```
pub fn encode_bytes(bytes: &[u8]) -> Vec<bool> {
    encode(unpack_bits(bytes))
}

/// Scans dot heat flags as Manchester cells.
///
/// # Panics
///
/// Panics when `dots.len()` is odd; cells are always two dots.
pub fn decode(dots: &[bool]) -> Scan {
    assert!(dots.len() % 2 == 0, "Manchester cells are two dots each");
    let cells = dots
        .chunks_exact(2)
        .map(|pair| Cell::from_dots(pair[0], pair[1]))
        .collect();
    Scan { cells }
}

/// Longest run of consecutively heated dots in `dots`.
///
/// For any valid Manchester encoding this is at most 2 (a `UH` cell followed
/// by an `HU` cell), which is the paper's "at most one heated neighbour"
/// reliability property.
pub fn max_heated_run(dots: &[bool]) -> usize {
    let mut best = 0;
    let mut run = 0;
    for &d in dots {
        if d {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

/// Fraction of dots heated by an encoding — exactly one half of the dots of
/// every written cell, independent of data. This data-independence is what
/// makes the code *history independent* in the sense of Molnar et al.
pub fn heated_fraction(dots: &[bool]) -> f64 {
    if dots.is_empty() {
        return 0.0;
    }
    dots.iter().filter(|&&d| d).count() as f64 / dots.len() as f64
}

/// Packs bits MSB-first into bytes, zero-padding the final byte.
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            out[i / 8] |= 1 << (7 - (i % 8));
        }
    }
    out
}

/// Unpacks bytes into bits, MSB first.
pub fn unpack_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_classification() {
        assert_eq!(Cell::from_dots(false, false), Cell::Blank);
        assert_eq!(Cell::from_dots(true, false), Cell::Zero);
        assert_eq!(Cell::from_dots(false, true), Cell::One);
        assert_eq!(Cell::from_dots(true, true), Cell::Tampered);
    }

    #[test]
    fn cell_display_matches_paper_notation() {
        assert_eq!(Cell::Blank.to_string(), "UU");
        assert_eq!(Cell::Zero.to_string(), "HU");
        assert_eq!(Cell::One.to_string(), "UH");
        assert_eq!(Cell::Tampered.to_string(), "HH");
    }

    #[test]
    fn round_trip_bits() {
        let bits = vec![true, false, false, true, true, true, false];
        let dots = encode(bits.iter().copied());
        assert_eq!(decode(&dots).bits(), Some(bits));
    }

    #[test]
    fn round_trip_bytes() {
        let bytes = vec![0x00, 0xff, 0xa5, 0x5a, 0x42];
        let dots = encode_bytes(&bytes);
        assert_eq!(dots.len(), bytes.len() * 16);
        assert_eq!(decode(&dots).bytes(), Some(bytes));
    }

    #[test]
    fn tampering_heats_exactly_one_more_dot() {
        // Any single additional heat on a written cell yields HH, never a
        // different valid value (§5.1 of the paper).
        for bit in [false, true] {
            let mut dots = encode([bit]);
            // Find the unheated dot of the cell and heat it.
            let idx = dots.iter().position(|&d| !d).unwrap();
            dots[idx] = true;
            let scan = decode(&dots);
            assert_eq!(scan.cells()[0], Cell::Tampered);
            assert_eq!(scan.tampered_cells(), vec![0]);
            assert!(!scan.is_clean());
            assert!(!scan.is_untampered());
        }
    }

    #[test]
    fn blank_cells_reported() {
        let mut dots = encode([true, false]);
        dots.extend([false, false]); // one unwritten cell
        let scan = decode(&dots);
        assert_eq!(scan.blank_cells(), vec![2]);
        assert!(scan.is_untampered());
        assert!(!scan.is_clean());
        assert_eq!(scan.bits(), None);
    }

    #[test]
    fn heated_runs_at_most_two() {
        // Worst case is a 1 followed by a 0: UH|HU -> U H H U.
        let dots = encode([true, false, true, false, true]);
        assert_eq!(max_heated_run(&dots), 2);
        let dots = encode([false, true, false, true]);
        assert!(max_heated_run(&dots) <= 2);
    }

    #[test]
    fn heated_fraction_is_half_regardless_of_data() {
        for pattern in [[false; 8], [true; 8]] {
            let dots = encode(pattern.iter().copied());
            assert!((heated_fraction(&dots) - 0.5).abs() < 1e-12);
        }
        assert_eq!(heated_fraction(&[]), 0.0);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let bytes = vec![0x12, 0x34, 0x56];
        assert_eq!(pack_bits(&unpack_bits(&bytes)), bytes);
    }

    #[test]
    fn pack_pads_final_byte() {
        assert_eq!(pack_bits(&[true, true, true]), vec![0b1110_0000]);
    }

    #[test]
    #[should_panic(expected = "two dots")]
    fn odd_dot_count_panics() {
        decode(&[true]);
    }

    #[test]
    #[should_panic(expected = "never encoded")]
    fn tampered_cell_cannot_be_encoded() {
        let _ = Cell::Tampered.to_dots();
    }
}
