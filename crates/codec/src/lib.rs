//! Coding substrate for the SERO tamper-evident storage stack.
//!
//! The FAST 2008 paper layers several codes onto the patterned medium:
//!
//! * [`manchester`] — the two-dots-per-bit cell code for electrically
//!   written (heated) data. `HU` = 0, `UH` = 1, `UU` = blank, and the
//!   illegal `HH` is physical evidence of tampering (§3, §5.1, Figure 3).
//! * [`crc32`] + [`rs`] — the ~15 % sector overhead of Pozidis et al.'s
//!   probe-storage format: a CRC for detection and a Reed–Solomon code for
//!   correction, including erasure repair of heated dots encountered in
//!   magnetic data areas.
//! * [`wom`] — Rivest–Shamir write-once-memory codes, the "more efficient
//!   coding techniques" the paper's §8 suggests for small line sizes.
//! * [`gf256`] — the finite-field arithmetic underneath Reed–Solomon.
//!
//! # Examples
//!
//! ```
//! use sero_codec::{manchester, rs::ReedSolomon};
//!
//! // Protect a sector with RS, then record its hash in Manchester cells.
//! let rs = ReedSolomon::new(16)?;
//! let sector = vec![7u8; 128];
//! let codeword = rs.encode(&sector);
//! let hash_dots = manchester::encode_bytes(&codeword[..4]);
//! assert_eq!(hash_dots.len(), 4 * 16);
//! # Ok::<(), sero_codec::rs::RsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod gf256;
pub mod manchester;
pub mod rs;
pub mod wom;

pub use manchester::Cell;
pub use rs::ReedSolomon;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Manchester round-trips arbitrary bytes.
        #[test]
        fn manchester_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let dots = manchester::encode_bytes(&bytes);
            prop_assert_eq!(manchester::decode(&dots).bytes(), Some(bytes));
        }

        /// The "at most one heated neighbour" property holds for all data.
        #[test]
        fn manchester_run_bound(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
            let dots = manchester::encode_bytes(&bytes);
            prop_assert!(manchester::max_heated_run(&dots) <= 2);
        }

        /// Heating any single unheated dot of a written cell never decodes
        /// to a different valid value: it is either detected or harmless.
        #[test]
        fn manchester_single_heat_is_tamper_evident(
            bytes in proptest::collection::vec(any::<u8>(), 1..32),
            dot in any::<proptest::sample::Index>()
        ) {
            let mut dots = manchester::encode_bytes(&bytes);
            let i = dot.index(dots.len());
            let original = manchester::decode(&dots).bytes();
            dots[i] = true; // ewb can only heat
            let scan = manchester::decode(&dots);
            if scan.is_clean() {
                // Heating an already-heated dot is a no-op.
                prop_assert_eq!(scan.bytes(), original);
            } else {
                prop_assert!(!scan.tampered_cells().is_empty());
            }
        }

        /// Reed–Solomon corrects any error pattern within capacity.
        #[test]
        fn rs_corrects_within_capacity(
            data in proptest::collection::vec(any::<u8>(), 1..200),
            nroots in 2usize..32,
            corruption in proptest::collection::vec((any::<proptest::sample::Index>(), 1u8..=255), 0..16)
        ) {
            let nroots = nroots & !1; // even for a clean capacity story
            let nroots = nroots.max(2);
            prop_assume!(data.len() + nroots <= 255);
            let rs = rs::ReedSolomon::new(nroots).unwrap();
            let clean = rs.encode(&data);
            let mut cw = clean.clone();
            let mut positions = std::collections::BTreeSet::new();
            for (idx, xor) in &corruption {
                let k = idx.index(cw.len());
                if positions.insert(k) {
                    cw[k] ^= xor;
                }
                if positions.len() >= nroots / 2 {
                    break;
                }
            }
            let report = rs.decode(&mut cw, &[]).unwrap();
            prop_assert_eq!(cw, clean);
            prop_assert_eq!(report.corrected_errors, positions.len());
        }

        /// Reed–Solomon with erasures repairs up to nroots known positions.
        #[test]
        fn rs_corrects_erasures(
            data in proptest::collection::vec(any::<u8>(), 8..120),
            seed in any::<u64>()
        ) {
            let rs = rs::ReedSolomon::new(12).unwrap();
            let clean = rs.encode(&data);
            let mut cw = clean.clone();
            // Deterministically pick up to 12 distinct positions.
            let mut erasures = Vec::new();
            let mut s = seed;
            while erasures.len() < 12 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let k = (s >> 33) as usize % cw.len();
                if !erasures.contains(&k) {
                    erasures.push(k);
                }
            }
            for &e in &erasures {
                cw[e] ^= 0x5a;
            }
            rs.decode(&mut cw, &erasures).unwrap();
            prop_assert_eq!(cw, clean);
        }

        /// CRC catches every corruption we throw at it (probabilistic in
        /// general; deterministic for short bursts).
        #[test]
        fn crc_detects_bursts(
            data in proptest::collection::vec(any::<u8>(), 1..256),
            at in any::<proptest::sample::Index>(),
            burst in 1u32..=0xffff
        ) {
            let reference = crc32::crc32(&data);
            let mut corrupt = data.clone();
            let i = at.index(corrupt.len());
            corrupt[i] ^= (burst & 0xff) as u8;
            if corrupt.len() > i + 1 {
                corrupt[i + 1] ^= ((burst >> 8) & 0xff) as u8;
            }
            if corrupt != data {
                prop_assert_ne!(crc32::crc32(&corrupt), reference);
            }
        }

        /// WOM second writes decode correctly and never clear cells.
        #[test]
        fn wom_two_generations(v1 in 0u8..4, v2 in 0u8..4) {
            let first = wom::RivestShamir22::encode_first(v1);
            let second = wom::RivestShamir22::encode_second(first, v2).unwrap();
            prop_assert_eq!(wom::RivestShamir22::decode(second).0, v2);
            for i in 0..3 {
                prop_assert!(!first[i] || second[i]);
            }
        }
    }
}
