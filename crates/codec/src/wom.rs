//! Write-once-memory (WOM) codes — the paper's §8 efficiency discussion.
//!
//! Manchester cells spend two physical dots per logical bit and support a
//! single write. The paper notes that "for small values of N we could employ
//! more efficient coding techniques", citing Moran, Naor and Segev's
//! deterministic WOM strategies. The classic building block is the
//! Rivest–Shamir ⟨2,2⟩/3 code: **two successive writes** of a 2-bit value
//! into only **3 write-once cells** (rate 4/3 versus Manchester's 1/2).
//!
//! On patterned media a WOM "1" is a heated dot: once set it cannot be
//! cleared, which is exactly the write-once discipline these codes assume.
//! The trade-off is that WOM codewords are *not* self-tamper-evident the way
//! Manchester cells are (there is no illegal pattern), so the SERO device
//! only considers them for hash areas already protected by verification —
//! the TAB-OVH experiment quantifies the overhead choice.
//!
//! # Examples
//!
//! ```
//! use sero_codec::wom::RivestShamir22;
//!
//! let first = RivestShamir22::encode_first(0b10);
//! let (value, gen) = RivestShamir22::decode(first);
//! assert_eq!(value, 0b10);
//! assert_eq!(gen, sero_codec::wom::Generation::First);
//!
//! let second = RivestShamir22::encode_second(first, 0b01).unwrap();
//! assert_eq!(RivestShamir22::decode(second).0, 0b01);
//! ```

use core::fmt;

/// Which write generation a decoded WOM codeword belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Generation {
    /// Codeword weight ≤ 1: written once.
    First,
    /// Codeword weight ≥ 2: rewritten.
    Second,
}

/// Errors from WOM encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WomError {
    /// Value does not fit in two bits.
    ValueOutOfRange {
        /// The rejected value.
        value: u8,
    },
    /// The cells have already consumed both write generations.
    Exhausted,
}

impl fmt::Display for WomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WomError::ValueOutOfRange { value } => {
                write!(f, "value {value:#x} does not fit in 2 bits")
            }
            WomError::Exhausted => f.write_str("write-once cells already used twice"),
        }
    }
}

impl std::error::Error for WomError {}

/// The Rivest–Shamir ⟨2,2⟩/3 write-once-memory code.
///
/// Stores a 2-bit value twice in three write-once cells. `true` means the
/// cell has been irreversibly set (a heated dot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RivestShamir22;

/// First-generation codewords indexed by value: weight ≤ 1.
const FIRST: [[bool; 3]; 4] = [
    [false, false, false], // 00
    [false, false, true],  // 01
    [false, true, false],  // 10
    [true, false, false],  // 11
];

/// Second-generation codewords indexed by value: weight ≥ 2, and each is a
/// superset of every first-generation codeword of a *different* value.
const SECOND: [[bool; 3]; 4] = [
    [true, true, true],  // 00
    [true, true, false], // 01
    [true, false, true], // 10
    [false, true, true], // 11
];

impl RivestShamir22 {
    /// Number of write-once cells per codeword.
    pub const CELLS: usize = 3;
    /// Number of logical bits stored per write.
    pub const BITS: usize = 2;
    /// Number of guaranteed write generations.
    pub const WRITES: usize = 2;

    /// Encodes the first write of `value` (2 bits).
    ///
    /// # Panics
    ///
    /// Panics when `value > 3`; use [`RivestShamir22::try_encode_first`] for
    /// a fallible variant.
    pub fn encode_first(value: u8) -> [bool; 3] {
        Self::try_encode_first(value).expect("value fits in 2 bits")
    }

    /// Fallible first-write encoding.
    ///
    /// # Errors
    ///
    /// Returns [`WomError::ValueOutOfRange`] when `value > 3`.
    pub fn try_encode_first(value: u8) -> Result<[bool; 3], WomError> {
        if value > 3 {
            return Err(WomError::ValueOutOfRange { value });
        }
        Ok(FIRST[value as usize])
    }

    /// Encodes a second write of `value` on top of `current` cells.
    ///
    /// Only sets cells (never clears), honouring the write-once physics.
    /// Rewriting the *same* value leaves the cells untouched.
    ///
    /// # Errors
    ///
    /// Returns [`WomError::ValueOutOfRange`] for values above 3 and
    /// [`WomError::Exhausted`] when `current` is already a second-generation
    /// codeword of a different value.
    pub fn encode_second(current: [bool; 3], value: u8) -> Result<[bool; 3], WomError> {
        if value > 3 {
            return Err(WomError::ValueOutOfRange { value });
        }
        let (cur_value, gen) = Self::decode(current);
        if cur_value == value {
            return Ok(current);
        }
        match gen {
            Generation::First => {
                let target = SECOND[value as usize];
                debug_assert!(covers(target, current), "second write only sets cells");
                Ok(target)
            }
            Generation::Second => Err(WomError::Exhausted),
        }
    }

    /// Decodes three cells into (value, generation).
    pub fn decode(cells: [bool; 3]) -> (u8, Generation) {
        let weight = cells.iter().filter(|&&c| c).count();
        if weight <= 1 {
            let value = FIRST.iter().position(|c| *c == cells).unwrap() as u8;
            (value, Generation::First)
        } else {
            let value = SECOND.iter().position(|c| *c == cells).unwrap() as u8;
            (value, Generation::Second)
        }
    }
}

fn covers(superset: [bool; 3], subset: [bool; 3]) -> bool {
    subset
        .iter()
        .zip(superset.iter())
        .all(|(&s, &sup)| !s || sup)
}

/// Physical-dots-per-logical-bit overhead of the codes available for the
/// write-once hash area, for the paper's §8 efficiency comparison (TAB-OVH).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeOverhead {
    /// Dots per logical bit for Manchester cells (always 2.0).
    pub manchester: f64,
    /// Dots per logical bit for ⟨2,2⟩/3 WOM when both generations are used.
    pub wom_two_writes: f64,
    /// Dots per logical bit for ⟨2,2⟩/3 WOM when only one write is used.
    pub wom_single_write: f64,
}

/// Returns the overhead comparison used by the TAB-OVH experiment.
pub fn code_overheads() -> CodeOverhead {
    CodeOverhead {
        manchester: 2.0,
        // 3 cells carry 2 bits twice = 4 bits of information over the
        // medium's lifetime.
        wom_two_writes: 3.0 / 4.0,
        wom_single_write: 3.0 / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_round_trips() {
        for v in 0..4u8 {
            let cells = RivestShamir22::encode_first(v);
            assert_eq!(RivestShamir22::decode(cells), (v, Generation::First));
        }
    }

    #[test]
    fn second_write_round_trips_all_pairs() {
        for v1 in 0..4u8 {
            for v2 in 0..4u8 {
                let first = RivestShamir22::encode_first(v1);
                let second = RivestShamir22::encode_second(first, v2).unwrap();
                let (decoded, _) = RivestShamir22::decode(second);
                assert_eq!(decoded, v2, "first {v1} second {v2}");
            }
        }
    }

    #[test]
    fn second_write_never_clears_cells() {
        for v1 in 0..4u8 {
            for v2 in 0..4u8 {
                let first = RivestShamir22::encode_first(v1);
                let second = RivestShamir22::encode_second(first, v2).unwrap();
                for i in 0..3 {
                    assert!(!first[i] || second[i], "cleared cell {i} ({v1}->{v2})");
                }
            }
        }
    }

    #[test]
    fn rewriting_same_value_is_idempotent() {
        for v in 0..4u8 {
            let first = RivestShamir22::encode_first(v);
            assert_eq!(RivestShamir22::encode_second(first, v).unwrap(), first);
            // Same value again on a second-generation word also succeeds.
            let second = RivestShamir22::encode_second(first, (v + 1) % 4).unwrap();
            assert_eq!(
                RivestShamir22::encode_second(second, (v + 1) % 4).unwrap(),
                second
            );
        }
    }

    #[test]
    fn third_distinct_write_rejected() {
        let first = RivestShamir22::encode_first(0);
        let second = RivestShamir22::encode_second(first, 1).unwrap();
        assert_eq!(
            RivestShamir22::encode_second(second, 2),
            Err(WomError::Exhausted)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            RivestShamir22::try_encode_first(4),
            Err(WomError::ValueOutOfRange { value: 4 })
        );
        let first = RivestShamir22::encode_first(0);
        assert!(RivestShamir22::encode_second(first, 9).is_err());
    }

    #[test]
    fn generations_distinguished_by_weight() {
        assert_eq!(
            RivestShamir22::decode([true, true, false]).1,
            Generation::Second
        );
        assert_eq!(
            RivestShamir22::decode([false, false, true]).1,
            Generation::First
        );
    }

    #[test]
    fn overhead_numbers() {
        let o = code_overheads();
        assert_eq!(o.manchester, 2.0);
        assert!(o.wom_two_writes < o.wom_single_write);
        assert!(o.wom_single_write < o.manchester);
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn encode_first_panics_out_of_range() {
        let _ = RivestShamir22::encode_first(7);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!format!("{}", WomError::Exhausted).is_empty());
        assert!(!format!("{}", WomError::ValueOutOfRange { value: 9 }).is_empty());
    }
}
