//! Systematic Reed–Solomon code over GF(2⁸) with errors-and-erasures decoding.
//!
//! The paper adopts Pozidis et al.'s sector format: 512 bytes of data plus
//! roughly 15 % overhead for "the sector header, error correction, and cyclic
//! redundancy check", with error correction "appropriate to the medium, the
//! tips, etc.". Probe-storage read channels suffer both random symbol errors
//! (tip noise) and *known-location* failures — a heated dot inside a magnetic
//! area produces no read-back peak and is flagged by the channel, which is an
//! erasure. This decoder therefore corrects `e` errors and `f` erasures
//! whenever `2e + f ≤ nroots`.
//!
//! Conventions: codewords are `data ‖ parity`; byte 0 is the highest-degree
//! coefficient; syndromes use consecutive roots α⁰, α¹, … (fcr = 0).
//!
//! # Examples
//!
//! ```
//! use sero_codec::rs::ReedSolomon;
//!
//! let rs = ReedSolomon::new(8).unwrap(); // corrects 4 errors per codeword
//! let data = b"probe storage sector".to_vec();
//! let mut codeword = rs.encode(&data);
//! codeword[3] ^= 0xff; // channel noise
//! codeword[10] ^= 0x55;
//! let report = rs.decode(&mut codeword, &[]).unwrap();
//! assert_eq!(report.corrected_errors, 2);
//! assert_eq!(&codeword[..data.len()], &data[..]);
//! ```

use crate::gf256::Gf256;
use core::fmt;

/// Maximum codeword length for a GF(2⁸) Reed–Solomon code.
pub const MAX_CODEWORD_LEN: usize = 255;

/// Errors reported by the Reed–Solomon codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// `nroots` outside `1..=254`.
    BadParameters {
        /// The rejected parity symbol count.
        nroots: usize,
    },
    /// Message plus parity would exceed 255 symbols.
    MessageTooLong {
        /// Bytes of data supplied.
        data_len: usize,
        /// Maximum data bytes for this code.
        max: usize,
    },
    /// An erasure index lies outside the codeword.
    BadErasure {
        /// The offending index.
        index: usize,
        /// Codeword length.
        len: usize,
    },
    /// More corruption than the code can correct.
    TooManyErrors,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::BadParameters { nroots } => {
                write!(f, "nroots {nroots} outside supported range 1..=254")
            }
            RsError::MessageTooLong { data_len, max } => {
                write!(f, "message of {data_len} bytes exceeds maximum {max}")
            }
            RsError::BadErasure { index, len } => {
                write!(f, "erasure index {index} outside codeword of length {len}")
            }
            RsError::TooManyErrors => f.write_str("too many errors to correct"),
        }
    }
}

impl std::error::Error for RsError {}

/// Outcome of a successful decode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodeReport {
    /// Number of corrupted symbols repaired at unknown locations.
    pub corrected_errors: usize,
    /// Number of erased symbols repaired at caller-supplied locations.
    pub corrected_erasures: usize,
}

impl DecodeReport {
    /// Total symbols repaired.
    pub fn total(&self) -> usize {
        self.corrected_errors + self.corrected_erasures
    }
}

/// A Reed–Solomon encoder/decoder with a fixed number of parity symbols.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    nroots: usize,
    /// Generator polynomial, highest-degree coefficient first.
    generator: Vec<Gf256>,
}

impl ReedSolomon {
    /// Creates a code with `nroots` parity symbols, correcting up to
    /// `nroots / 2` errors (or more erasures).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadParameters`] unless `1 ≤ nroots ≤ 254`.
    pub fn new(nroots: usize) -> Result<ReedSolomon, RsError> {
        if nroots == 0 || nroots >= MAX_CODEWORD_LEN {
            return Err(RsError::BadParameters { nroots });
        }
        // g(x) = Π_{i=0}^{nroots-1} (x - α^i)
        let mut generator = vec![Gf256::ONE];
        for i in 0..nroots {
            let root = Gf256::alpha_pow(i);
            let mut next = vec![Gf256::ZERO; generator.len() + 1];
            for (j, &c) in generator.iter().enumerate() {
                next[j] += c; // times x
                next[j + 1] += c * root; // times root
            }
            generator = next;
        }
        Ok(ReedSolomon { nroots, generator })
    }

    /// Number of parity symbols appended to each message.
    pub fn nroots(&self) -> usize {
        self.nroots
    }

    /// Maximum data bytes per codeword.
    pub fn max_data_len(&self) -> usize {
        MAX_CODEWORD_LEN - self.nroots
    }

    /// Number of symbol errors correctable without erasure information.
    pub fn error_capacity(&self) -> usize {
        self.nroots / 2
    }

    /// Encodes `data`, returning the full systematic codeword
    /// `data ‖ parity`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::MessageTooLong`] when the codeword would exceed
    /// 255 symbols.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        self.try_encode(data)
            .expect("caller checked message length")
    }

    /// Fallible variant of [`ReedSolomon::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`RsError::MessageTooLong`] when the codeword would exceed
    /// 255 symbols.
    pub fn try_encode(&self, data: &[u8]) -> Result<Vec<u8>, RsError> {
        if data.len() > self.max_data_len() {
            return Err(RsError::MessageTooLong {
                data_len: data.len(),
                max: self.max_data_len(),
            });
        }
        // Synthetic division of data(x)·x^nroots by g(x); the remainder is
        // the parity.
        let mut parity = vec![Gf256::ZERO; self.nroots];
        for &byte in data {
            let factor = Gf256::new(byte) + parity[0];
            parity.rotate_left(1);
            parity[self.nroots - 1] = Gf256::ZERO;
            if !factor.is_zero() {
                for (p, &g) in parity.iter_mut().zip(self.generator[1..].iter()) {
                    *p += factor * g;
                }
            }
        }
        let mut out = Vec::with_capacity(data.len() + self.nroots);
        out.extend_from_slice(data);
        out.extend(parity.iter().map(|p| p.value()));
        Ok(out)
    }

    /// Corrects `codeword` in place.
    ///
    /// `erasures` lists byte indices whose values are known to be unreliable
    /// (for SERO: dots flagged heated by the read channel). Correction
    /// succeeds whenever `2·errors + erasures ≤ nroots`.
    ///
    /// # Errors
    ///
    /// [`RsError::TooManyErrors`] when the corruption exceeds the code's
    /// capability (detected by Chien-search mismatch or residual syndromes);
    /// [`RsError::BadErasure`] / [`RsError::MessageTooLong`] for malformed
    /// arguments.
    pub fn decode(&self, codeword: &mut [u8], erasures: &[usize]) -> Result<DecodeReport, RsError> {
        let n = codeword.len();
        if n > MAX_CODEWORD_LEN || n <= self.nroots {
            return Err(RsError::MessageTooLong {
                data_len: n.saturating_sub(self.nroots),
                max: self.max_data_len(),
            });
        }
        for &e in erasures {
            if e >= n {
                return Err(RsError::BadErasure { index: e, len: n });
            }
        }
        if erasures.len() > self.nroots {
            return Err(RsError::TooManyErrors);
        }

        let synd = self.syndromes(codeword);
        if synd.iter().all(|s| s.is_zero()) {
            // Clean word; erased positions already hold correct values.
            return Ok(DecodeReport::default());
        }

        // Erasure locator Γ(x) = Π (1 - α^p x), lowest-degree-first.
        let mut gamma = vec![Gf256::ONE];
        let mut erasure_set: Vec<usize> = erasures.to_vec();
        erasure_set.sort_unstable();
        erasure_set.dedup();
        for &k in &erasure_set {
            let x = Gf256::alpha_pow(n - 1 - k);
            gamma = poly_mul_low(&gamma, &[Gf256::ONE, x]);
        }
        let rho = erasure_set.len();

        // Forney syndromes: coefficients ρ..2t of S(x)·Γ(x).
        let product = poly_mul_mod(&synd, &gamma, self.nroots);
        let fsynd = &product[rho..];

        // Berlekamp–Massey for the unknown-error locator Λ(x).
        let lambda = berlekamp_massey(fsynd)?;
        let num_errors = lambda.len() - 1;
        if 2 * num_errors > self.nroots - rho {
            return Err(RsError::TooManyErrors);
        }

        // Combined errata locator Ψ = Λ·Γ and evaluator Ω = S·Ψ mod x^2t.
        let psi = poly_mul_low(&lambda, &gamma);
        let omega = poly_mul_mod(&synd, &psi, self.nroots);

        // Chien search over all codeword positions.
        let mut positions = Vec::new();
        for k in 0..n {
            let p = n - 1 - k;
            let x_inv = Gf256::alpha_pow(255 - (p % 255));
            if eval_low(&psi, x_inv).is_zero() {
                positions.push(k);
            }
        }
        if positions.len() != psi.len() - 1 {
            return Err(RsError::TooManyErrors);
        }

        // Forney algorithm: e = X·Ω(X⁻¹) / Ψ'(X⁻¹).
        let psi_prime = derivative_low(&psi);
        for &k in &positions {
            let p = n - 1 - k;
            let x = Gf256::alpha_pow(p);
            let x_inv = x.inverse();
            let num = x * eval_low(&omega, x_inv);
            let den = eval_low(&psi_prime, x_inv);
            if den.is_zero() {
                return Err(RsError::TooManyErrors);
            }
            codeword[k] ^= (num / den).value();
        }

        // Re-verify.
        let check = self.syndromes(codeword);
        if check.iter().any(|s| !s.is_zero()) {
            return Err(RsError::TooManyErrors);
        }

        let corrected_erasures = positions.iter().filter(|p| erasure_set.contains(p)).count();
        Ok(DecodeReport {
            corrected_errors: positions.len() - corrected_erasures,
            corrected_erasures,
        })
    }

    /// Syndrome vector `S_j = r(α^j)`, lowest index first.
    fn syndromes(&self, codeword: &[u8]) -> Vec<Gf256> {
        (0..self.nroots)
            .map(|j| {
                let x = Gf256::alpha_pow(j);
                codeword
                    .iter()
                    .fold(Gf256::ZERO, |acc, &b| acc * x + Gf256::new(b))
            })
            .collect()
    }
}

/// Berlekamp–Massey over `synd` (lowest index first), returning the error
/// locator polynomial lowest-degree-first (`λ₀ = 1`).
fn berlekamp_massey(synd: &[Gf256]) -> Result<Vec<Gf256>, RsError> {
    let mut lambda = vec![Gf256::ONE];
    let mut prev = vec![Gf256::ONE];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut prev_delta = Gf256::ONE;

    for i in 0..synd.len() {
        let mut delta = synd[i];
        for j in 1..=l.min(lambda.len() - 1) {
            delta += lambda[j] * synd[i - j];
        }
        if delta.is_zero() {
            m += 1;
        } else if 2 * l <= i {
            let saved = lambda.clone();
            lambda = poly_sub_shifted(&lambda, delta / prev_delta, m, &prev);
            l = i + 1 - l;
            prev = saved;
            prev_delta = delta;
            m = 1;
        } else {
            lambda = poly_sub_shifted(&lambda, delta / prev_delta, m, &prev);
            m += 1;
        }
    }
    while lambda.len() > 1 && lambda.last() == Some(&Gf256::ZERO) {
        lambda.pop();
    }
    if lambda.len() - 1 != l {
        return Err(RsError::TooManyErrors);
    }
    Ok(lambda)
}

/// `a - scale·x^shift·b` for lowest-first polynomials (char 2: minus is plus).
fn poly_sub_shifted(a: &[Gf256], scale: Gf256, shift: usize, b: &[Gf256]) -> Vec<Gf256> {
    let mut out = a.to_vec();
    let needed = shift + b.len();
    if out.len() < needed {
        out.resize(needed, Gf256::ZERO);
    }
    for (i, &c) in b.iter().enumerate() {
        out[shift + i] += scale * c;
    }
    out
}

/// Product of two lowest-first polynomials.
fn poly_mul_low(a: &[Gf256], b: &[Gf256]) -> Vec<Gf256> {
    let mut out = vec![Gf256::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Product modulo x^`modulus`, zero-padded to exactly `modulus` coefficients.
fn poly_mul_mod(a: &[Gf256], b: &[Gf256], modulus: usize) -> Vec<Gf256> {
    let mut out = poly_mul_low(a, b);
    out.resize(modulus, Gf256::ZERO);
    out
}

/// Evaluation of a lowest-first polynomial.
fn eval_low(p: &[Gf256], x: Gf256) -> Gf256 {
    p.iter().rev().fold(Gf256::ZERO, |acc, &c| acc * x + c)
}

/// Formal derivative of a lowest-first polynomial (char 2).
fn derivative_low(p: &[Gf256]) -> Vec<Gf256> {
    if p.len() <= 1 {
        return vec![Gf256::ZERO];
    }
    (1..p.len())
        .map(|i| if i % 2 == 1 { p[i] } else { Gf256::ZERO })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn encode_appends_parity() {
        let rs = ReedSolomon::new(8).unwrap();
        let data = sample_data(32, 1);
        let cw = rs.encode(&data);
        assert_eq!(cw.len(), 40);
        assert_eq!(&cw[..32], &data[..]);
    }

    #[test]
    fn clean_codeword_decodes_unchanged() {
        let rs = ReedSolomon::new(8).unwrap();
        let data = sample_data(100, 2);
        let mut cw = rs.encode(&data);
        let report = rs.decode(&mut cw, &[]).unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(&cw[..100], &data[..]);
    }

    #[test]
    fn corrects_up_to_capacity_errors() {
        let rs = ReedSolomon::new(16).unwrap();
        let data = sample_data(120, 3);
        for nerr in 1..=8 {
            let mut cw = rs.encode(&data);
            let len = cw.len();
            for e in 0..nerr {
                cw[e * 13 % len] ^= 0x3c + e as u8;
            }
            let report = rs.decode(&mut cw, &[]).unwrap();
            assert_eq!(report.corrected_errors, nerr, "nerr {nerr}");
            assert_eq!(&cw[..120], &data[..]);
        }
    }

    #[test]
    fn rejects_more_than_capacity_errors() {
        let rs = ReedSolomon::new(8).unwrap();
        let data = sample_data(64, 4);
        let mut cw = rs.encode(&data);
        // 5 errors with t = 4: must not silently mis-correct.
        for e in 0..5 {
            cw[e * 7] ^= 0xa1 + e as u8;
        }
        assert!(rs.decode(&mut cw, &[]).is_err());
    }

    #[test]
    fn corrects_full_erasure_budget() {
        let rs = ReedSolomon::new(8).unwrap();
        let data = sample_data(60, 5);
        let mut cw = rs.encode(&data);
        let erasures: Vec<usize> = (0..8).map(|i| i * 5).collect();
        for &e in &erasures {
            cw[e] = 0;
        }
        let report = rs.decode(&mut cw, &erasures).unwrap();
        assert_eq!(&cw[..60], &data[..]);
        // Erasures whose stored value happened to be 0 already need no fix,
        // so only count the ones actually repaired.
        assert!(report.total() <= 8);
    }

    #[test]
    fn corrects_mixed_errors_and_erasures() {
        // 2e + f <= nroots: with nroots = 8, 2 errors + 4 erasures = 8.
        let rs = ReedSolomon::new(8).unwrap();
        let data = sample_data(80, 6);
        let mut cw = rs.encode(&data);
        let erasures = [3usize, 17, 31, 45];
        for &e in &erasures {
            cw[e] ^= 0xff;
        }
        cw[60] ^= 0x01;
        cw[70] ^= 0x80;
        let report = rs.decode(&mut cw, &erasures).unwrap();
        assert_eq!(&cw[..80], &data[..]);
        assert_eq!(report.corrected_erasures, 4);
        assert_eq!(report.corrected_errors, 2);
    }

    #[test]
    fn erasures_in_parity_region_corrected() {
        let rs = ReedSolomon::new(8).unwrap();
        let data = sample_data(40, 7);
        let mut cw = rs.encode(&data);
        let last = cw.len() - 1;
        cw[last] ^= 0x42;
        let report = rs.decode(&mut cw, &[last]).unwrap();
        assert_eq!(report.corrected_erasures, 1);
        assert_eq!(&cw[..40], &data[..]);
    }

    #[test]
    fn duplicate_erasure_indices_tolerated() {
        let rs = ReedSolomon::new(8).unwrap();
        let data = sample_data(40, 8);
        let mut cw = rs.encode(&data);
        cw[5] ^= 0x10;
        let report = rs.decode(&mut cw, &[5, 5, 5]).unwrap();
        assert_eq!(report.total(), 1);
        assert_eq!(&cw[..40], &data[..]);
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(ReedSolomon::new(0).is_err());
        assert!(ReedSolomon::new(255).is_err());
        assert!(ReedSolomon::new(254).is_ok());
    }

    #[test]
    fn message_too_long_rejected() {
        let rs = ReedSolomon::new(8).unwrap();
        assert!(matches!(
            rs.try_encode(&vec![0u8; 248]),
            Err(RsError::MessageTooLong { .. })
        ));
        assert!(rs.try_encode(&vec![0u8; 247]).is_ok());
    }

    #[test]
    fn bad_erasure_index_rejected() {
        let rs = ReedSolomon::new(4).unwrap();
        let mut cw = rs.encode(&sample_data(10, 9));
        assert!(matches!(
            rs.decode(&mut cw, &[99]),
            Err(RsError::BadErasure { index: 99, .. })
        ));
    }

    #[test]
    fn burst_error_within_capacity() {
        let rs = ReedSolomon::new(16).unwrap();
        let data = sample_data(200, 10);
        let mut cw = rs.encode(&data);
        for byte in &mut cw[50..58] {
            *byte = !*byte;
        }
        rs.decode(&mut cw, &[]).unwrap();
        assert_eq!(&cw[..200], &data[..]);
    }

    #[test]
    fn max_length_codeword() {
        let rs = ReedSolomon::new(32).unwrap();
        let data = sample_data(223, 11);
        let mut cw = rs.encode(&data);
        assert_eq!(cw.len(), 255);
        for i in 0..16 {
            cw[i * 15] ^= 0x77;
        }
        rs.decode(&mut cw, &[]).unwrap();
        assert_eq!(&cw[..223], &data[..]);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            RsError::BadParameters { nroots: 0 },
            RsError::MessageTooLong {
                data_len: 9,
                max: 3,
            },
            RsError::BadErasure { index: 1, len: 1 },
            RsError::TooManyErrors,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
