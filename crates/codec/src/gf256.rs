//! Arithmetic in GF(2⁸), the symbol field of the sector Reed–Solomon code.
//!
//! Field: GF(2)\[x\] / (x⁸ + x⁴ + x³ + x² + 1), i.e. the 0x11D polynomial used
//! by CCSDS and most storage codes; α = 0x02 is primitive.
//!
//! # Examples
//!
//! ```
//! use sero_codec::gf256::Gf256;
//!
//! let a = Gf256::new(0x53);
//! assert_eq!(a * a.inverse(), Gf256::ONE);
//! let b = Gf256::new(0xCA);
//! assert_eq!((a + b) + b, a); // addition is XOR, self-inverse
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};

/// Reduction polynomial x⁸ + x⁴ + x³ + x² + 1 (0x11D).
const POLY: u16 = 0x11D;

/// Number of nonzero field elements.
const ORDER: usize = 255;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(ORDER) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate the exp table so products of logs never need reduction.
        for i in ORDER..512 {
            exp[i] = exp[i - ORDER];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2⁸).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The primitive element α = 0x02.
    pub const ALPHA: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    pub fn new(value: u8) -> Gf256 {
        Gf256(value)
    }

    /// The byte representation of the element.
    pub fn value(self) -> u8 {
        self.0
    }

    /// True for the additive identity.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// α raised to `power` (mod the field order).
    pub fn alpha_pow(power: usize) -> Gf256 {
        Gf256(tables().exp[power % ORDER])
    }

    /// Discrete logarithm base α.
    ///
    /// # Panics
    ///
    /// Panics for the zero element, which has no logarithm.
    pub fn log(self) -> usize {
        assert!(!self.is_zero(), "zero has no discrete logarithm");
        tables().log[self.0 as usize] as usize
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics for the zero element.
    pub fn inverse(self) -> Gf256 {
        assert!(!self.is_zero(), "zero has no inverse");
        let t = tables();
        Gf256(t.exp[ORDER - t.log[self.0 as usize] as usize])
    }

    /// `self` raised to `exp` (non-negative exponent).
    pub fn pow(self, exp: usize) -> Gf256 {
        if self.is_zero() {
            return if exp == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        let t = tables();
        let log = t.log[self.0 as usize] as usize;
        Gf256(t.exp[(log * exp) % ORDER])
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Gf256 {
        Gf256(value)
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // GF(2^8) addition IS carry-less xor; the operator mix is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    // GF(2^8) addition IS carry-less xor; the operator mix is intentional.
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    // Characteristic 2: subtraction is addition, hence the `+`.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        self + rhs
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.is_zero() || rhs.is_zero() {
            return Gf256::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[idx])
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    // Field division is multiplication by the inverse; the `*` is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Gf256) -> Gf256 {
        self * rhs.inverse()
    }
}

/// Polynomial over GF(2⁸), highest-degree coefficient first.
///
/// Used by the Reed–Solomon encoder/decoder; exposed publicly because the
/// decoder's intermediate polynomials (syndrome, locator, evaluator) are
/// useful in tests and teaching tools.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly(pub Vec<Gf256>);

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly(vec![Gf256::ZERO])
    }

    /// Builds a polynomial from byte coefficients, highest degree first.
    pub fn from_bytes(bytes: &[u8]) -> Poly {
        Poly(bytes.iter().map(|&b| Gf256::new(b)).collect())
    }

    /// Degree of the polynomial (0 for constants, including zero).
    pub fn degree(&self) -> usize {
        let lead = self.0.iter().position(|c| !c.is_zero());
        match lead {
            Some(i) => self.0.len() - 1 - i,
            None => 0,
        }
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        self.0.iter().fold(Gf256::ZERO, |acc, &c| acc * x + c)
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = vec![Gf256::ZERO; self.0.len() + other.0.len() - 1];
        for (i, &a) in self.0.iter().enumerate() {
            for (j, &b) in other.0.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly(out)
    }

    /// Polynomial sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.0.len().max(other.0.len());
        let mut out = vec![Gf256::ZERO; n];
        for (i, &c) in self.0.iter().enumerate() {
            out[n - self.0.len() + i] += c;
        }
        for (i, &c) in other.0.iter().enumerate() {
            out[n - other.0.len() + i] += c;
        }
        Poly(out)
    }

    /// Multiplies every coefficient by `scalar`.
    pub fn scale(&self, scalar: Gf256) -> Poly {
        Poly(self.0.iter().map(|&c| c * scalar).collect())
    }

    /// Removes leading zero coefficients (never shrinks below length 1).
    pub fn normalized(mut self) -> Poly {
        while self.0.len() > 1 && self.0[0].is_zero() {
            self.0.remove(0);
        }
        self
    }

    /// Formal derivative; in characteristic 2 the even-power terms vanish.
    pub fn derivative(&self) -> Poly {
        let n = self.0.len();
        if n <= 1 {
            return Poly::zero();
        }
        let mut out = Vec::with_capacity(n - 1);
        for (i, &c) in self.0.iter().enumerate().take(n - 1) {
            let power = n - 1 - i; // degree of this term
            if power % 2 == 1 {
                out.push(c);
            } else {
                out.push(Gf256::ZERO);
            }
        }
        Poly(out).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        let a = Gf256::new(0xb4);
        let b = Gf256::new(0x1f);
        assert_eq!((a + b).value(), 0xb4 ^ 0x1f);
        assert_eq!(a + b + b, a);
        assert_eq!(a - b, a + b);
    }

    #[test]
    fn mul_identity_and_zero() {
        for v in 0u8..=255 {
            let x = Gf256::new(v);
            assert_eq!(x * Gf256::ONE, x);
            assert_eq!(x * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1u8..=255 {
            let x = Gf256::new(v);
            assert_eq!(x * x.inverse(), Gf256::ONE, "value {v:#x}");
        }
    }

    #[test]
    fn multiplication_commutative_associative() {
        let samples = [0x02u8, 0x1d, 0x80, 0xff, 0x53];
        for &a in &samples {
            for &b in &samples {
                let (x, y) = (Gf256::new(a), Gf256::new(b));
                assert_eq!(x * y, y * x);
                for &c in &samples {
                    let z = Gf256::new(c);
                    assert_eq!((x * y) * z, x * (y * z));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        for a in [3u8, 77, 200] {
            for b in [5u8, 99, 250] {
                for c in [7u8, 123, 255] {
                    let (x, y, z) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                    assert_eq!(x * (y + z), x * y + x * z);
                }
            }
        }
    }

    #[test]
    fn alpha_generates_field() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..255 {
            seen.insert(Gf256::alpha_pow(i).value());
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn pow_and_log_agree() {
        for v in 1u8..=255 {
            let x = Gf256::new(v);
            assert_eq!(Gf256::alpha_pow(x.log()), x);
        }
        assert_eq!(Gf256::new(5).pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(3), Gf256::ZERO);
    }

    #[test]
    fn known_products_for_0x11d() {
        // x^7 · x = x^8 ≡ x^4 + x^3 + x^2 + 1 = 0x1D under the 0x11D poly.
        assert_eq!(Gf256::new(0x80) * Gf256::new(0x02), Gf256::new(0x1D));
        assert_eq!(Gf256::alpha_pow(8), Gf256::new(0x1D));
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = Gf256::ZERO.inverse();
    }

    #[test]
    fn poly_eval_horner() {
        // p(x) = x^2 + 1 over GF(256): p(α) = α² + 1.
        let p = Poly(vec![Gf256::ONE, Gf256::ZERO, Gf256::ONE]);
        let expected = Gf256::ALPHA * Gf256::ALPHA + Gf256::ONE;
        assert_eq!(p.eval(Gf256::ALPHA), expected);
    }

    #[test]
    fn poly_mul_matches_manual() {
        // (x + 1)(x + 1) = x² + 1 in characteristic 2.
        let p = Poly(vec![Gf256::ONE, Gf256::ONE]);
        let sq = p.mul(&p);
        assert_eq!(sq, Poly(vec![Gf256::ONE, Gf256::ZERO, Gf256::ONE]));
    }

    #[test]
    fn poly_degree_ignores_leading_zeros() {
        let p = Poly(vec![Gf256::ZERO, Gf256::ZERO, Gf256::ONE, Gf256::ONE]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.normalized().0.len(), 2);
    }

    #[test]
    fn poly_derivative_char2() {
        // d/dx (x³ + x² + x + 1) = 3x² + 2x + 1 = x² + 1 in char 2.
        let p = Poly(vec![Gf256::ONE, Gf256::ONE, Gf256::ONE, Gf256::ONE]);
        let d = p.derivative();
        assert_eq!(d, Poly(vec![Gf256::ONE, Gf256::ZERO, Gf256::ONE]));
    }
}
