//! X-ray diffraction simulation — Figures 8 and 9 of the paper.
//!
//! The paper uses two XRD modes to show what annealing does to the film:
//!
//! * **Low angle** (Figure 8): the Co/Pt bilayer periodicity produces a
//!   superlattice reflection near 2θ ≈ 8°; after a 700 °C anneal the peak
//!   disappears — direct evidence that the interfaces have mixed.
//! * **High angle** (Figure 9): the annealed sample grows a strong
//!   fcc Co–Pt (111) reflection at 2θ ≈ 41.7°, showing a crystal phase has
//!   formed (with tilted easy axes, so perpendicular anisotropy cannot
//!   return).
//!
//! We model kinematic diffraction: Bragg's law positions the peaks, an
//! N-slit interference function shapes the superlattice reflection (with
//! amplitude scaled by interface quality), and a Scherrer-broadened Gaussian
//! shapes the crystalline peak (with amplitude scaled by crystalline
//! fraction). Intensities are in arbitrary units, as in the paper.
//!
//! # Examples
//!
//! ```
//! use sero_media::film::CoPtFilm;
//! use sero_media::xrd::Diffractometer;
//!
//! let xrd = Diffractometer::cu_kalpha();
//! let scan = xrd.low_angle_scan(&CoPtFilm::as_grown());
//! let (angle, _) = scan.strongest_peak_in(5.0, 11.0).unwrap();
//! assert!((angle - 7.4).abs() < 1.0); // the paper's "around 8 degrees"
//! ```

use crate::film::CoPtFilm;
use core::f64::consts::PI;

/// d-spacing of the fcc Co–Pt (111) plane in Ångström, placing the
/// Figure 9 peak at 2θ ≈ 41.7° under Cu Kα.
pub const COPT_111_D_ANGSTROM: f64 = 2.163;

/// A powder/thin-film diffractometer with a fixed wavelength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diffractometer {
    wavelength_angstrom: f64,
    step_deg: f64,
}

/// A recorded 2θ scan.
#[derive(Debug, Clone, PartialEq)]
pub struct XrdScan {
    /// Scattering angles 2θ in degrees.
    pub two_theta_deg: Vec<f64>,
    /// Reflected intensity in arbitrary units.
    pub intensity: Vec<f64>,
}

impl Diffractometer {
    /// Cu Kα radiation (λ = 1.5406 Å), 0.02° steps — the workhorse lab
    /// configuration the paper's plots come from.
    pub fn cu_kalpha() -> Diffractometer {
        Diffractometer {
            wavelength_angstrom: 1.5406,
            step_deg: 0.02,
        }
    }

    /// Custom wavelength (Å) and step (degrees).
    ///
    /// # Panics
    ///
    /// Panics on non-positive wavelength or step.
    pub fn new(wavelength_angstrom: f64, step_deg: f64) -> Diffractometer {
        assert!(
            wavelength_angstrom > 0.0 && step_deg > 0.0,
            "bad diffractometer"
        );
        Diffractometer {
            wavelength_angstrom,
            step_deg,
        }
    }

    /// X-ray wavelength in Ångström.
    pub fn wavelength_angstrom(&self) -> f64 {
        self.wavelength_angstrom
    }

    /// Predicted superlattice peak position (first order) for `film`, in
    /// degrees 2θ — Bragg's law on the bilayer period.
    pub fn superlattice_angle_deg(&self, film: &CoPtFilm) -> f64 {
        let lambda = self.wavelength_angstrom;
        let d = film.bilayer_period_nm() * 10.0; // nm → Å
        2.0 * (lambda / (2.0 * d)).asin().to_degrees()
    }

    /// Predicted fcc Co–Pt (111) peak position in degrees 2θ.
    pub fn copt_111_angle_deg(&self) -> f64 {
        2.0 * (self.wavelength_angstrom / (2.0 * COPT_111_D_ANGSTROM))
            .asin()
            .to_degrees()
    }

    /// Low-angle scan, 2θ ∈ [2°, 14°] (Figure 8).
    pub fn low_angle_scan(&self, film: &CoPtFilm) -> XrdScan {
        self.scan(2.0, 14.0, |two_theta| {
            self.low_angle_intensity(film, two_theta)
        })
    }

    /// High-angle scan, 2θ ∈ [30°, 55°] (Figure 9).
    pub fn high_angle_scan(&self, film: &CoPtFilm) -> XrdScan {
        self.scan(30.0, 55.0, |two_theta| {
            self.high_angle_intensity(film, two_theta)
        })
    }

    fn scan(&self, from: f64, to: f64, f: impl Fn(f64) -> f64) -> XrdScan {
        let steps = ((to - from) / self.step_deg).round() as usize;
        let mut two_theta = Vec::with_capacity(steps + 1);
        let mut intensity = Vec::with_capacity(steps + 1);
        for i in 0..=steps {
            let tt = from + i as f64 * self.step_deg;
            two_theta.push(tt);
            intensity.push(f(tt));
        }
        XrdScan {
            two_theta_deg: two_theta,
            intensity,
        }
    }

    /// Momentum transfer q = 4π sin θ / λ in Å⁻¹.
    fn q(&self, two_theta_deg: f64) -> f64 {
        4.0 * PI * (two_theta_deg / 2.0).to_radians().sin() / self.wavelength_angstrom
    }

    fn low_angle_intensity(&self, film: &CoPtFilm, two_theta_deg: f64) -> f64 {
        let q = self.q(two_theta_deg);
        let q_min = self.q(2.0);
        // Fresnel-like reflectivity decay (arbitrary units, 1e6 at 2°).
        let background = 1.0e6 * (q_min / q).powi(4);

        // N-bilayer interference: |sin(NqΛ/2) / sin(qΛ/2)|² / N², scaled by
        // the squared interface contrast (mixing washes the contrast out).
        let lambda_bilayer = film.bilayer_period_nm() * 10.0; // Å
        let n = film.bilayers() as f64;
        let half = q * lambda_bilayer / 2.0;
        let slit = {
            let s = half.sin();
            if s.abs() < 1e-9 {
                1.0
            } else {
                let ratio = (n * half).sin() / s;
                (ratio * ratio) / (n * n)
            }
        };
        let contrast = film.interface_quality().powi(2);
        // Roughness damping grows as interfaces smear.
        let sigma = 1.0 + 3.0 * (1.0 - film.interface_quality()); // Å
        let damping = (-q * q * sigma * sigma).exp();
        background * (1.0 + 400.0 * contrast * slit * damping)
    }

    fn high_angle_intensity(&self, film: &CoPtFilm, two_theta_deg: f64) -> f64 {
        // Diffuse amorphous hump from the disordered stack.
        let hump = 120.0 * gaussian(two_theta_deg, 40.0, 6.0);

        // fcc Co-Pt (111): amplitude follows the crystalline fraction,
        // width follows Scherrer's equation with grains growing as the
        // phase develops.
        let x = film.crystalline_fraction();
        let peak_angle = self.copt_111_angle_deg();
        let grain_nm = 2.0 + 18.0 * x;
        let theta = (peak_angle / 2.0).to_radians();
        let fwhm_rad = 0.9 * (self.wavelength_angstrom / 10.0) / (grain_nm * theta.cos());
        let fwhm_deg = fwhm_rad.to_degrees();
        let sigma = (fwhm_deg / 2.3548).max(self.step_deg);
        let crystal = 4000.0 * x * gaussian(two_theta_deg, peak_angle, sigma);

        30.0 + hump + crystal // 30 = detector floor
    }
}

fn gaussian(x: f64, mu: f64, sigma: f64) -> f64 {
    (-(x - mu) * (x - mu) / (2.0 * sigma * sigma)).exp()
}

impl XrdScan {
    /// Global intensity maximum within [`from`, `to`] degrees, as
    /// `(two_theta, intensity)`.
    pub fn strongest_peak_in(&self, from: f64, to: f64) -> Option<(f64, f64)> {
        self.two_theta_deg
            .iter()
            .zip(self.intensity.iter())
            .filter(|(&tt, _)| tt >= from && tt <= to)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&tt, &i)| (tt, i))
    }

    /// Ratio of the strongest intensity inside the window to the linear
    /// background interpolated between the window edges. A flat scan gives
    /// ≈ 1; a real reflection gives ≫ 1. Used to decide "the peak has
    /// disappeared" exactly as one reads Figure 8.
    pub fn peak_contrast(&self, from: f64, to: f64) -> f64 {
        let (peak_tt, peak_i) = match self.strongest_peak_in(from, to) {
            Some(p) => p,
            None => return 1.0,
        };
        let edge = |target: f64| -> f64 {
            self.two_theta_deg
                .iter()
                .zip(self.intensity.iter())
                .min_by(|a, b| (a.0 - target).abs().total_cmp(&(b.0 - target).abs()))
                .map(|(_, &i)| i)
                .unwrap_or(1.0)
        };
        let (i0, i1) = (edge(from), edge(to));
        let t = (peak_tt - from) / (to - from);
        let background = i0 * (1.0 - t) + i1 * t;
        if background <= 0.0 {
            return 1.0;
        }
        peak_i / background
    }

    /// Number of sample points in the scan.
    pub fn len(&self) -> usize {
        self.two_theta_deg.len()
    }

    /// True when the scan holds no points.
    pub fn is_empty(&self) -> bool {
        self.two_theta_deg.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superlattice_angle_matches_paper() {
        // The paper reads a peak "around 8 degrees" and derives 0.6 nm
        // layers; with 0.6 + 0.6 nm bilayers the first-order reflection
        // sits at 2θ ≈ 7.4°.
        let xrd = Diffractometer::cu_kalpha();
        let angle = xrd.superlattice_angle_deg(&CoPtFilm::as_grown());
        assert!((angle - 7.36).abs() < 0.1, "angle {angle}");
    }

    #[test]
    fn copt_111_angle_is_41_7() {
        let xrd = Diffractometer::cu_kalpha();
        let angle = xrd.copt_111_angle_deg();
        assert!((angle - 41.7).abs() < 0.15, "angle {angle}");
    }

    #[test]
    fn figure8_as_grown_shows_peak_annealed_does_not() {
        let xrd = Diffractometer::cu_kalpha();
        let as_grown = xrd.low_angle_scan(&CoPtFilm::as_grown());
        let annealed = xrd.low_angle_scan(&CoPtFilm::as_grown().annealed(700.0));

        let grown_contrast = as_grown.peak_contrast(5.5, 9.5);
        let annealed_contrast = annealed.peak_contrast(5.5, 9.5);
        assert!(grown_contrast > 5.0, "as-grown contrast {grown_contrast}");
        assert!(
            annealed_contrast < 1.5,
            "annealed contrast {annealed_contrast}"
        );

        // And the surviving peak is at the right angle.
        let (angle, _) = as_grown.strongest_peak_in(5.5, 9.5).unwrap();
        assert!((angle - 7.4).abs() < 0.5, "peak at {angle}");
    }

    #[test]
    fn figure9_annealed_grows_crystal_peak() {
        let xrd = Diffractometer::cu_kalpha();
        let as_grown = xrd.high_angle_scan(&CoPtFilm::as_grown());
        let annealed = xrd.high_angle_scan(&CoPtFilm::as_grown().annealed(700.0));

        let grown_contrast = as_grown.peak_contrast(40.0, 43.5);
        let annealed_contrast = annealed.peak_contrast(40.0, 43.5);
        assert!(
            annealed_contrast > 5.0,
            "annealed contrast {annealed_contrast}"
        );
        assert!(grown_contrast < 2.0, "as-grown contrast {grown_contrast}");

        let (angle, _) = annealed.strongest_peak_in(40.0, 43.5).unwrap();
        assert!((angle - 41.7).abs() < 0.3, "crystal peak at {angle}");
    }

    #[test]
    fn crystal_peak_sharpens_with_grain_growth() {
        // Scherrer: larger grains → narrower peak. Compare widths at half
        // max between a mildly and a fully crystallised film.
        let xrd = Diffractometer::cu_kalpha();
        let width = |film: &CoPtFilm| -> f64 {
            let scan = xrd.high_angle_scan(film);
            let (_, peak) = scan.strongest_peak_in(40.0, 43.5).unwrap();
            let half = peak / 2.0;
            let above: Vec<f64> = scan
                .two_theta_deg
                .iter()
                .zip(scan.intensity.iter())
                .filter(|(&tt, &i)| tt > 40.0 && tt < 43.5 && i > half)
                .map(|(&tt, _)| tt)
                .collect();
            above.last().unwrap_or(&0.0) - above.first().unwrap_or(&0.0)
        };
        let partial = CoPtFilm::as_grown().annealed(655.0);
        let full = CoPtFilm::as_grown().annealed(800.0);
        assert!(partial.crystalline_fraction() > 0.2);
        assert!(width(&full) < width(&partial));
    }

    #[test]
    fn monotone_peak_decay_with_temperature() {
        let xrd = Diffractometer::cu_kalpha();
        let contrasts: Vec<f64> = [25.0, 500.0, 620.0, 660.0, 700.0]
            .iter()
            .map(|&t| {
                xrd.low_angle_scan(&CoPtFilm::as_grown().annealed(t))
                    .peak_contrast(5.5, 9.5)
            })
            .collect();
        for w in contrasts.windows(2) {
            assert!(
                w[1] <= w[0] + 0.2,
                "contrast rose after anneal: {contrasts:?}"
            );
        }
    }

    #[test]
    fn scan_shape() {
        let xrd = Diffractometer::cu_kalpha();
        let scan = xrd.low_angle_scan(&CoPtFilm::as_grown());
        assert_eq!(scan.len(), scan.intensity.len());
        assert!(!scan.is_empty());
        assert!(scan.intensity.iter().all(|&i| i.is_finite() && i >= 0.0));
    }

    #[test]
    #[should_panic(expected = "bad diffractometer")]
    fn bad_setup_panics() {
        Diffractometer::new(0.0, 0.02);
    }
}
