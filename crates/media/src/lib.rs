//! Patterned magnetic medium simulator — the physics substrate of the SERO
//! tamper-evident storage stack (FAST 2008 reproduction).
//!
//! The paper's medium is a regular matrix of Co/Pt multilayer dots with
//! perpendicular easy axes, read and written by a micro scanning probe
//! array. Its headline physical result is that precise local heating
//! destroys a dot's multilayer interfaces irreversibly, flipping the easy
//! axis in-plane — turning the dot into a permanent, physically
//! unforgeable mark. This crate simulates everything the paper measures or
//! assumes about that medium:
//!
//! * [`geometry`] — the dot matrix and the §6 capacity arithmetic
//!   (100 nm pitch ⇒ 10 Gbit/cm² = 65 Gbit/inch²).
//! * [`dot`] / [`medium`] — the Figure 2 tri-state dot (0/1/H with H
//!   absorbing), packed dense enough to simulate file-system-sized media.
//! * [`film`] — Co/Pt interface-mixing kinetics behind Figure 7's K(T).
//! * [`torque`] — the torque-magnetometry pipeline the paper used to
//!   *measure* Figure 7 (1350 kA/m field, Fourier extraction).
//! * [`xrd`] — low- and high-angle diffraction producing Figures 8 and 9.
//! * [`thermal`] — the §7 neighbour-disturb model of the `ewb` heat pulse.
//! * [`mfm`] — the Figure 6 cantilever read channel, whose `Weak`
//!   detections turn heated dots into ECC erasures.
//!
//! # Examples
//!
//! ```
//! use sero_media::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build a medium, store a bit, destroy the dot, observe the evidence.
//! let mut medium = Medium::new(Geometry::new(32, 32, 100.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! medium.write_mag(100, true);
//! ThermalModel::well_designed(100.0).heat_dot(&mut medium, 100, &mut rng);
//! assert!(medium.is_heated(100));
//! assert_eq!(ReadChannel::default().detect(&medium, 100, &mut rng), Detection::Weak);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod film;
pub mod forensics;
pub mod geometry;
pub mod medium;
pub mod mfm;
pub mod thermal;
pub mod torque;
pub mod xrd;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::dot::DotState;
    pub use crate::film::CoPtFilm;
    pub use crate::geometry::Geometry;
    pub use crate::medium::Medium;
    pub use crate::mfm::{Detection, ReadChannel};
    pub use crate::thermal::{HeatOutcome, ThermalModel};
    pub use crate::torque::TorqueMagnetometer;
    pub use crate::xrd::Diffractometer;
}

#[cfg(test)]
mod proptests {
    use crate::dot::{DotArray, DotState};
    use proptest::prelude::*;

    /// Operations of the Figure 2 state machine.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Mwb(bool),
        Ewb,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![any::<bool>().prop_map(Op::Mwb), Just(Op::Ewb),]
    }

    proptest! {
        /// FIG2 invariant: H is absorbing. Once a dot is heated, no
        /// operation sequence ever returns it to a magnetic state.
        #[test]
        fn heated_state_is_absorbing(ops in proptest::collection::vec(op_strategy(), 1..64)) {
            let mut dots = DotArray::new(1);
            let mut heated_seen = false;
            for op in ops {
                match op {
                    Op::Mwb(bit) => { dots.write_mag(0, bit); }
                    Op::Ewb => { dots.heat(0); heated_seen = true; }
                }
                if heated_seen {
                    prop_assert_eq!(dots.state(0), DotState::Heated);
                }
            }
        }

        /// Without ewb, the dot always reflects the last magnetic write.
        #[test]
        fn magnetic_state_tracks_last_write(bits in proptest::collection::vec(any::<bool>(), 1..64)) {
            let mut dots = DotArray::new(1);
            for &bit in &bits {
                dots.write_mag(0, bit);
            }
            let expect = if *bits.last().unwrap() { DotState::Up } else { DotState::Down };
            prop_assert_eq!(dots.state(0), expect);
        }

        /// The heated counter equals the number of distinct heated dots for
        /// any operation interleaving.
        #[test]
        fn heated_count_is_exact(targets in proptest::collection::vec(0u64..32, 0..128)) {
            let mut dots = DotArray::new(32);
            let mut reference = std::collections::HashSet::new();
            for t in targets {
                dots.heat(t);
                reference.insert(t);
            }
            prop_assert_eq!(dots.heated_count(), reference.len() as u64);
        }
    }
}
