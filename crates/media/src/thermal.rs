//! Thermal model of the electrical write — §7's neighbour-disturb analysis.
//!
//! The paper envisages heating a dot "by passing a current from the probe
//! tip to the dot" and flags the key reliability risk: "the effect of
//! heating one dot on the neighbouring dots … the magnetic state, or even
//! the write-ability of the adjacent dot could be affected". It also gives
//! the mitigation: "by properly designing the thermal properties of the dot
//! and the substrate, most of the heat can be conducted away into the
//! substrate, rather than dissipating away laterally".
//!
//! We model one `ewb` pulse as a radial Gaussian temperature field around
//! the target dot. The lateral spread σ encodes the thermal design quality:
//! a well-engineered substrate sinks heat vertically (small σ); a poor one
//! lets it diffuse sideways (large σ). Neighbours are:
//!
//! * **destroyed** when their peak temperature exceeds the film's interface
//!   mixing threshold (they become `H` too — collateral damage), or
//! * **disturbed** when it exceeds the magnetic disturb threshold: their
//!   stored bit is randomised but the dot remains writable (thermal
//!   erasure).
//!
//! Experiment EXP-THERM sweeps σ and shows why the Manchester layout's
//! "at most one heated neighbour" spacing matters.
//!
//! # Examples
//!
//! ```
//! use sero_media::geometry::Geometry;
//! use sero_media::medium::Medium;
//! use sero_media::thermal::ThermalModel;
//! use rand::SeedableRng;
//!
//! let mut medium = Medium::new(Geometry::new(8, 8, 100.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let model = ThermalModel::well_designed(100.0);
//! let outcome = model.heat_dot(&mut medium, 27, &mut rng);
//! assert!(outcome.target_heated);
//! assert!(outcome.destroyed_neighbours.is_empty()); // good design
//! ```

use crate::film::CoPtFilm;
use crate::medium::Medium;
use rand::Rng;

/// Ambient temperature of the operating device, °C.
pub const AMBIENT_C: f64 = 25.0;

/// Temperature above which a neighbour's *magnetic state* may flip even
/// though its multilayer survives (thermally assisted reversal), °C.
pub const DISTURB_THRESHOLD_C: f64 = 250.0;

/// Outcome of one thermally modelled `ewb` pulse.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeatOutcome {
    /// Whether the target dot transitioned to `H` (false if it already was).
    pub target_heated: bool,
    /// Neighbours whose multilayer was also destroyed (collateral `H`).
    pub destroyed_neighbours: Vec<u64>,
    /// Neighbours whose magnetic bit was randomised by the heat pulse.
    pub disturbed_neighbours: Vec<u64>,
}

impl HeatOutcome {
    /// True when the pulse affected only its target.
    pub fn is_clean(&self) -> bool {
        self.destroyed_neighbours.is_empty() && self.disturbed_neighbours.is_empty()
    }
}

/// A Gaussian tip-heating model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    peak_temp_c: f64,
    lateral_sigma_nm: f64,
    destruction_temp_c: f64,
}

impl ThermalModel {
    /// A well-designed thermal stack for the given dot pitch: heat sinks
    /// into the substrate and the nearest neighbour stays below the disturb
    /// threshold.
    pub fn well_designed(pitch_nm: f64) -> ThermalModel {
        ThermalModel::new(750.0, pitch_nm * 0.35)
    }

    /// A marginal design: nearest neighbours get disturbed but survive.
    pub fn marginal(pitch_nm: f64) -> ThermalModel {
        ThermalModel::new(750.0, pitch_nm * 0.75)
    }

    /// A poor design: heat pools laterally instead of sinking into the
    /// substrate, so the spot runs hotter *and* wider — nearest neighbours
    /// are destroyed outright.
    pub fn poorly_designed(pitch_nm: f64) -> ThermalModel {
        ThermalModel::new(1200.0, pitch_nm * 1.1)
    }

    /// A model with explicit tip peak temperature (°C) and lateral Gaussian
    /// spread (nm).
    ///
    /// # Panics
    ///
    /// Panics when the peak temperature cannot destroy even the target dot,
    /// or on non-positive spread.
    pub fn new(peak_temp_c: f64, lateral_sigma_nm: f64) -> ThermalModel {
        let destruction = CoPtFilm::destruction_temperature_c();
        assert!(
            peak_temp_c > destruction,
            "tip peak {peak_temp_c} °C cannot destroy the dot (needs > {destruction:.0} °C)"
        );
        assert!(lateral_sigma_nm > 0.0, "lateral spread must be positive");
        ThermalModel {
            peak_temp_c,
            lateral_sigma_nm,
            destruction_temp_c: destruction,
        }
    }

    /// Tip peak temperature, °C.
    pub fn peak_temp_c(&self) -> f64 {
        self.peak_temp_c
    }

    /// Lateral Gaussian spread, nm.
    pub fn lateral_sigma_nm(&self) -> f64 {
        self.lateral_sigma_nm
    }

    /// Temperature reached at `distance_nm` from the tip centre.
    pub fn temperature_at(&self, distance_nm: f64) -> f64 {
        let rise = self.peak_temp_c - AMBIENT_C;
        AMBIENT_C
            + rise * (-(distance_nm * distance_nm) / (2.0 * self.lateral_sigma_nm.powi(2))).exp()
    }

    /// Radius inside which dots are destroyed, nm.
    pub fn destruction_radius_nm(&self) -> f64 {
        self.radius_for(self.destruction_temp_c)
    }

    /// Radius inside which magnetic states are disturbed, nm.
    pub fn disturb_radius_nm(&self) -> f64 {
        self.radius_for(DISTURB_THRESHOLD_C)
    }

    fn radius_for(&self, temp_c: f64) -> f64 {
        let rise = self.peak_temp_c - AMBIENT_C;
        let needed = temp_c - AMBIENT_C;
        if needed >= rise {
            return 0.0;
        }
        self.lateral_sigma_nm * (2.0 * (rise / needed).ln()).sqrt()
    }

    /// Performs a physically modelled `ewb` on `medium` dot `target`.
    ///
    /// The target is heated; every neighbour within the destruction radius
    /// is heated too; every neighbour within the disturb radius has its
    /// magnetic bit randomised.
    pub fn heat_dot<R: Rng + ?Sized>(
        &self,
        medium: &mut Medium,
        target: u64,
        rng: &mut R,
    ) -> HeatOutcome {
        let mut outcome = HeatOutcome {
            target_heated: medium.heat(target),
            ..HeatOutcome::default()
        };

        let disturb_radius = self.disturb_radius_nm();
        let geometry = *medium.geometry();
        for neighbour in geometry.neighbours_within(target, disturb_radius) {
            let temp = self.temperature_at(geometry.distance_nm(target, neighbour));
            if temp >= self.destruction_temp_c {
                if medium.heat(neighbour) {
                    outcome.destroyed_neighbours.push(neighbour);
                }
            } else if temp >= DISTURB_THRESHOLD_C && !medium.is_heated(neighbour) {
                medium.write_mag(neighbour, rng.random());
                outcome.disturbed_neighbours.push(neighbour);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medium() -> Medium {
        Medium::new(Geometry::new(9, 9, 100.0))
    }

    #[test]
    fn well_designed_pulse_is_clean() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..m.dot_count() {
            m.write_mag(i, true);
        }
        let model = ThermalModel::well_designed(100.0);
        let centre = m.geometry().index(4, 4);
        let outcome = model.heat_dot(&mut m, centre, &mut rng);
        assert!(outcome.target_heated);
        assert!(outcome.is_clean(), "outcome {outcome:?}");
        // All 80 other dots still hold their bit.
        let intact = (0..m.dot_count())
            .filter(|&i| i != centre)
            .filter(|&i| m.state(i) == crate::dot::DotState::Up)
            .count();
        assert_eq!(intact, 80);
    }

    #[test]
    fn marginal_design_disturbs_but_preserves_writability() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..m.dot_count() {
            m.write_mag(i, true);
        }
        let model = ThermalModel::marginal(100.0);
        let centre = m.geometry().index(4, 4);
        let outcome = model.heat_dot(&mut m, centre, &mut rng);
        assert!(!outcome.disturbed_neighbours.is_empty());
        assert!(outcome.destroyed_neighbours.is_empty());
        // Disturbed dots are still writable.
        for &n in &outcome.disturbed_neighbours {
            assert!(m.write_mag(n, true));
        }
    }

    #[test]
    fn poor_design_destroys_neighbours() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(3);
        let model = ThermalModel::poorly_designed(100.0);
        let centre = m.geometry().index(4, 4);
        let outcome = model.heat_dot(&mut m, centre, &mut rng);
        assert!(
            outcome.destroyed_neighbours.len() >= 4,
            "poor design should take out the von Neumann neighbours: {outcome:?}"
        );
        for &n in &outcome.destroyed_neighbours {
            assert!(m.is_heated(n));
        }
    }

    #[test]
    fn temperature_profile_monotone() {
        let model = ThermalModel::well_designed(100.0);
        assert!((model.temperature_at(0.0) - model.peak_temp_c()).abs() < 1e-9);
        let temps: Vec<f64> = (0..10)
            .map(|i| model.temperature_at(i as f64 * 25.0))
            .collect();
        for w in temps.windows(2) {
            assert!(w[1] < w[0]);
        }
        // Far away: ambient.
        assert!((model.temperature_at(1e6) - AMBIENT_C).abs() < 1e-6);
    }

    #[test]
    fn radii_ordering() {
        let model = ThermalModel::marginal(100.0);
        assert!(model.destruction_radius_nm() < model.disturb_radius_nm());
        // Destruction radius under half a pitch keeps writes safe.
        let good = ThermalModel::well_designed(100.0);
        assert!(good.destruction_radius_nm() < 100.0);
    }

    #[test]
    fn reheating_target_reports_not_newly_heated() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(4);
        let model = ThermalModel::well_designed(100.0);
        let first = model.heat_dot(&mut m, 0, &mut rng);
        assert!(first.target_heated);
        let second = model.heat_dot(&mut m, 0, &mut rng);
        assert!(!second.target_heated);
    }

    #[test]
    fn edge_dots_do_not_panic() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(5);
        let model = ThermalModel::poorly_designed(100.0);
        for corner in [0, 8, 72, 80] {
            model.heat_dot(&mut m, corner, &mut rng);
        }
        assert!(m.heated_count() >= 4);
    }

    #[test]
    #[should_panic(expected = "cannot destroy")]
    fn cold_tip_rejected() {
        ThermalModel::new(400.0, 35.0);
    }
}
