//! Medium geometry: the regular dot matrix and its capacity arithmetic.
//!
//! The paper's §6 gives the geometry ladder for the Twente µSPAM medium:
//! a 200 nm period is demonstrated, 150 nm realised in an improved setup,
//! and a 100 nm period (50 nm dots, 50 nm spacing) "should be achievable",
//! giving 10 Gbit/cm² (= 65 Gbit/inch²). §1 sizes the device at "the order
//! of 1 Terabit". The TAB-CAP experiment regenerates those numbers from
//! this module.
//!
//! # Examples
//!
//! ```
//! use sero_media::geometry::Geometry;
//!
//! let geom = Geometry::new(64, 64, 100.0);
//! assert_eq!(geom.dot_count(), 4096);
//! assert!((geom.areal_density_gbit_per_cm2() - 10.0).abs() < 1e-9);
//! ```

use core::fmt;

/// Square-centimetres per square-inch.
const CM2_PER_INCH2: f64 = 2.54 * 2.54;

/// A dot-matrix geometry: `rows × cols` dots at a fixed pitch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    rows: u32,
    cols: u32,
    pitch_nm: f64,
    dot_diameter_nm: f64,
}

/// Error produced by [`Geometry::try_new`] for degenerate matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadGeometryError;

impl fmt::Display for BadGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("geometry needs nonzero rows, cols and positive pitch")
    }
}

impl std::error::Error for BadGeometryError {}

impl Geometry {
    /// Creates a geometry with dots of half the pitch in diameter (the
    /// paper's 50 nm dot / 50 nm spacing split).
    ///
    /// # Panics
    ///
    /// Panics on zero rows/cols or non-positive pitch; use
    /// [`Geometry::try_new`] for a fallible variant.
    pub fn new(rows: u32, cols: u32, pitch_nm: f64) -> Geometry {
        Geometry::try_new(rows, cols, pitch_nm).expect("valid geometry")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`BadGeometryError`] on zero rows/cols or non-positive,
    /// non-finite pitch.
    pub fn try_new(rows: u32, cols: u32, pitch_nm: f64) -> Result<Geometry, BadGeometryError> {
        if rows == 0 || cols == 0 || pitch_nm <= 0.0 || !pitch_nm.is_finite() {
            return Err(BadGeometryError);
        }
        Ok(Geometry {
            rows,
            cols,
            pitch_nm,
            dot_diameter_nm: pitch_nm / 2.0,
        })
    }

    /// Number of dot rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of dot columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Dot period in nanometres.
    pub fn pitch_nm(&self) -> f64 {
        self.pitch_nm
    }

    /// Dot diameter in nanometres.
    pub fn dot_diameter_nm(&self) -> f64 {
        self.dot_diameter_nm
    }

    /// Total number of dots (= raw bit capacity).
    pub fn dot_count(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Linear index of the dot at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics when the coordinates lie outside the matrix.
    pub fn index(&self, row: u32, col: u32) -> u64 {
        assert!(
            row < self.rows && col < self.cols,
            "dot coordinate out of range"
        );
        row as u64 * self.cols as u64 + col as u64
    }

    /// Row/column of a linear dot index.
    ///
    /// # Panics
    ///
    /// Panics when the index lies outside the matrix.
    pub fn coords(&self, index: u64) -> (u32, u32) {
        assert!(index < self.dot_count(), "dot index out of range");
        (
            (index / self.cols as u64) as u32,
            (index % self.cols as u64) as u32,
        )
    }

    /// Physical position of a dot centre in nanometres.
    pub fn position_nm(&self, index: u64) -> (f64, f64) {
        let (r, c) = self.coords(index);
        (c as f64 * self.pitch_nm, r as f64 * self.pitch_nm)
    }

    /// Euclidean distance between two dot centres in nanometres.
    pub fn distance_nm(&self, a: u64, b: u64) -> f64 {
        let (ax, ay) = self.position_nm(a);
        let (bx, by) = self.position_nm(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Indices of dots within `radius_nm` of `index`, excluding itself.
    pub fn neighbours_within(&self, index: u64, radius_nm: f64) -> Vec<u64> {
        let (row, col) = self.coords(index);
        let span = (radius_nm / self.pitch_nm).ceil() as i64;
        let mut out = Vec::new();
        for dr in -span..=span {
            for dc in -span..=span {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let r = row as i64 + dr;
                let c = col as i64 + dc;
                if r < 0 || c < 0 || r >= self.rows as i64 || c >= self.cols as i64 {
                    continue;
                }
                let candidate = self.index(r as u32, c as u32);
                if self.distance_nm(index, candidate) <= radius_nm {
                    out.push(candidate);
                }
            }
        }
        out
    }

    /// Areal density in Gbit/cm² — one dot per pitch².
    pub fn areal_density_gbit_per_cm2(&self) -> f64 {
        let dots_per_cm = 1.0e7 / self.pitch_nm;
        dots_per_cm * dots_per_cm / 1.0e9
    }

    /// Areal density in Gbit/inch².
    pub fn areal_density_gbit_per_inch2(&self) -> f64 {
        self.areal_density_gbit_per_cm2() * CM2_PER_INCH2
    }

    /// Medium area in cm² for this matrix.
    pub fn area_cm2(&self) -> f64 {
        let w = self.cols as f64 * self.pitch_nm / 1.0e7;
        let h = self.rows as f64 * self.pitch_nm / 1.0e7;
        w * h
    }

    /// Medium area in cm² required for `bits` at this pitch — the §1
    /// "order of 1 Terabit" sizing.
    pub fn area_cm2_for_bits(pitch_nm: f64, bits: f64) -> f64 {
        let density = 1.0e14 / (pitch_nm * pitch_nm); // bits per cm²
        bits / density
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_density_ladder() {
        // §6: a 100 nm period gives 10 Gbit/cm² = 65 Gbit/inch².
        let g = Geometry::new(8, 8, 100.0);
        assert!((g.areal_density_gbit_per_cm2() - 10.0).abs() < 1e-9);
        let inch = g.areal_density_gbit_per_inch2();
        assert!((inch - 64.516).abs() < 0.01, "got {inch}");
        assert!(inch.round() == 65.0);

        // Demonstrated 200 nm: 4x sparser.
        let g200 = Geometry::new(8, 8, 200.0);
        assert!((g200.areal_density_gbit_per_cm2() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn terabit_sizing() {
        // 1 Tbit at 100 nm pitch needs 100 cm² of medium.
        let area = Geometry::area_cm2_for_bits(100.0, 1e12);
        assert!((area - 100.0).abs() < 1e-6);
        // At 50 nm pitch, 25 cm².
        let area = Geometry::area_cm2_for_bits(50.0, 1e12);
        assert!((area - 25.0).abs() < 1e-6);
    }

    #[test]
    fn index_coords_round_trip() {
        let g = Geometry::new(7, 11, 150.0);
        for idx in 0..g.dot_count() {
            let (r, c) = g.coords(idx);
            assert_eq!(g.index(r, c), idx);
        }
    }

    #[test]
    fn positions_and_distance() {
        let g = Geometry::new(4, 4, 100.0);
        assert_eq!(g.position_nm(0), (0.0, 0.0));
        assert_eq!(g.position_nm(5), (100.0, 100.0));
        let d = g.distance_nm(0, 5);
        assert!((d - 100.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn neighbours_within_radius() {
        let g = Geometry::new(5, 5, 100.0);
        let centre = g.index(2, 2);
        let four = g.neighbours_within(centre, 100.0);
        assert_eq!(four.len(), 4); // von Neumann neighbourhood
        let eight = g.neighbours_within(centre, 150.0);
        assert_eq!(eight.len(), 8); // Moore neighbourhood
                                    // Corners see fewer neighbours.
        assert_eq!(g.neighbours_within(0, 100.0).len(), 2);
    }

    #[test]
    fn area_math() {
        let g = Geometry::new(1000, 1000, 100.0);
        // 1000 dots * 100 nm = 0.1 mm = 0.01 cm per side.
        assert!((g.area_cm2() - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn bad_geometry_rejected() {
        assert!(Geometry::try_new(0, 4, 100.0).is_err());
        assert!(Geometry::try_new(4, 0, 100.0).is_err());
        assert!(Geometry::try_new(4, 4, 0.0).is_err());
        assert!(Geometry::try_new(4, 4, -1.0).is_err());
        assert!(Geometry::try_new(4, 4, f64::NAN).is_err());
        assert!(!format!("{BadGeometryError}").is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coords_panic() {
        Geometry::new(2, 2, 100.0).index(2, 0);
    }
}
