//! Forensic magnetic imaging — §8 "Forensics".
//!
//! The paper's last line of defence against the ultimate adversary: "We
//! are confident that even a skilled focused ion beam (FIB) operator would
//! find it difficult to reconstruct a perfect out-of-plane dot … Using
//! magnetic imaging techniques, a forensics team would probably have no
//! difficulty identifying a reconstructed out-of-plane dot from an
//! original out-of-plane dot."
//!
//! [`MagneticImager`] models a spin-stand / MFM imaging pass over a dot
//! range: each FIB-reconstructed dot is flagged with high (configurable)
//! probability per pass, and passes are independent, so repeated imaging
//! drives the miss rate to zero.
//!
//! # Examples
//!
//! ```
//! use sero_media::forensics::MagneticImager;
//! use sero_media::geometry::Geometry;
//! use sero_media::medium::Medium;
//! use rand::SeedableRng;
//!
//! let mut medium = Medium::new(Geometry::new(8, 8, 100.0));
//! medium.heat(5);
//! medium.fib_reconstruct(5, true); // the adversary rebuilds the dot
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let report = MagneticImager::default().inspect(&medium, 0..64, &mut rng);
//! assert_eq!(report.reconstructed_found, vec![5]);
//! ```

use crate::medium::Medium;
use rand::Rng;

/// Result of one imaging pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImagingReport {
    /// Dots identified as FIB reconstructions.
    pub reconstructed_found: Vec<u64>,
    /// Dots inspected.
    pub dots_inspected: u64,
}

impl ImagingReport {
    /// True when the pass found any reconstruction scar.
    pub fn found_tampering(&self) -> bool {
        !self.reconstructed_found.is_empty()
    }
}

/// A forensic magnetic imaging instrument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagneticImager {
    /// Per-pass probability of identifying a reconstructed dot.
    detection_probability: f64,
}

impl Default for MagneticImager {
    /// The paper's "probably no difficulty": 98 % per pass.
    fn default() -> MagneticImager {
        MagneticImager {
            detection_probability: 0.98,
        }
    }
}

impl MagneticImager {
    /// An imager with an explicit per-pass detection probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < p <= 1.0`.
    pub fn with_sensitivity(p: f64) -> MagneticImager {
        assert!(p > 0.0 && p <= 1.0, "probability in (0, 1]");
        MagneticImager {
            detection_probability: p,
        }
    }

    /// Images dots in `range`, flagging reconstruction scars.
    pub fn inspect<R: Rng + ?Sized>(
        &self,
        medium: &Medium,
        range: core::ops::Range<u64>,
        rng: &mut R,
    ) -> ImagingReport {
        let mut report = ImagingReport::default();
        for idx in range {
            report.dots_inspected += 1;
            if medium.is_reconstructed(idx) && rng.random_bool(self.detection_probability) {
                report.reconstructed_found.push(idx);
            }
        }
        report
    }

    /// Images `range` in `passes` independent passes, unioning findings —
    /// how a real investigation beats per-pass misses.
    pub fn inspect_repeatedly<R: Rng + ?Sized>(
        &self,
        medium: &Medium,
        range: core::ops::Range<u64>,
        passes: u32,
        rng: &mut R,
    ) -> ImagingReport {
        let mut found = std::collections::BTreeSet::new();
        let mut inspected = 0;
        for _ in 0..passes {
            let pass = self.inspect(medium, range.clone(), rng);
            inspected = pass.dots_inspected;
            found.extend(pass.reconstructed_found);
        }
        ImagingReport {
            reconstructed_found: found.into_iter().collect(),
            dots_inspected: inspected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medium_with_reconstructions(n: u64) -> Medium {
        let mut m = Medium::new(Geometry::new(16, 16, 100.0));
        for i in 0..n {
            m.heat(i * 3);
            m.fib_reconstruct(i * 3, i % 2 == 0);
        }
        m
    }

    #[test]
    fn reconstruction_restores_magnetic_function() {
        // The adversary really does regain a working dot…
        let mut m = Medium::new(Geometry::new(4, 4, 100.0));
        let mut rng = StdRng::seed_from_u64(2);
        m.heat(3);
        assert!(m.is_heated(3));
        m.fib_reconstruct(3, true);
        assert!(!m.is_heated(3));
        assert!(m.read_mag(3, &mut rng));
        assert!(m.write_mag(3, false));
        assert_eq!(m.heated_count(), 0);
    }

    #[test]
    fn imaging_finds_the_scar() {
        // …but the scar is physically there.
        let m = medium_with_reconstructions(8);
        let mut rng = StdRng::seed_from_u64(3);
        let report = MagneticImager::default().inspect_repeatedly(&m, 0..256, 3, &mut rng);
        assert_eq!(report.reconstructed_found.len(), 8);
        assert!(report.found_tampering());
    }

    #[test]
    fn clean_medium_images_clean() {
        let mut m = Medium::new(Geometry::new(8, 8, 100.0));
        m.heat(5); // ordinary heat is not a reconstruction
        let mut rng = StdRng::seed_from_u64(4);
        let report = MagneticImager::default().inspect(&m, 0..64, &mut rng);
        assert!(!report.found_tampering());
        assert_eq!(report.dots_inspected, 64);
    }

    #[test]
    fn repeated_passes_beat_per_pass_misses() {
        let m = medium_with_reconstructions(20);
        let mut rng = StdRng::seed_from_u64(5);
        let weak = MagneticImager::with_sensitivity(0.4);
        let one_pass = weak.inspect(&m, 0..256, &mut rng).reconstructed_found.len();
        let many_pass = weak
            .inspect_repeatedly(&m, 0..256, 20, &mut rng)
            .reconstructed_found
            .len();
        assert!(many_pass >= one_pass);
        // Per-dot miss probability after 20 passes at 40 %: 0.6^20 ≈ 4e-5.
        assert_eq!(many_pass, 20, "twenty passes at 40% find everything");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_sensitivity_panics() {
        MagneticImager::with_sensitivity(0.0);
    }
}
