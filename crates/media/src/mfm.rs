//! Magnetic Force Microscopy read channel — §6 / Figure 6 of the paper.
//!
//! The µSPAM reads with the MFM principle: a magnetic tip on a cantilever is
//! attracted or repelled by the stray field of each dot, and the cantilever
//! deflection is sensed capacitively. An out-of-plane dot produces a clear
//! positive or negative peak (Figure 1, top); a heated dot's in-plane
//! moment produces almost no out-of-plane stray field, so its peak
//! disappears (Figure 1, bottom).
//!
//! The channel model: `signal = polarity·A + leakage + noise`, where
//! heated dots have zero polarity and only a small random in-plane leakage.
//! The detector thresholds the signal and reports [`Detection::Weak`] when
//! the magnitude is ambiguous — which is how heated dots inside magnetic
//! data areas surface as *erasures* for the Reed–Solomon decoder ("an
//! electrically written bit in the data … appears as a read error", §5.1).
//!
//! # Examples
//!
//! ```
//! use sero_media::geometry::Geometry;
//! use sero_media::medium::Medium;
//! use sero_media::mfm::{Detection, ReadChannel};
//! use rand::SeedableRng;
//!
//! let mut medium = Medium::new(Geometry::new(4, 4, 100.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! medium.write_mag(0, true);
//! medium.heat(1);
//! let channel = ReadChannel::default();
//! assert_eq!(channel.detect(&medium, 0, &mut rng), Detection::One);
//! assert_eq!(channel.detect(&medium, 1, &mut rng), Detection::Weak);
//! ```

use crate::dot::DotState;
use crate::medium::Medium;
use rand::Rng;

/// Outcome of thresholding one dot's read-back signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detection {
    /// Clear negative peak — logical 0.
    Zero,
    /// Clear positive peak — logical 1.
    One,
    /// No reliable peak: a heated dot or a noise casualty. Surfaces as an
    /// erasure to the sector ECC.
    Weak,
}

impl Detection {
    /// The detected logical bit, if unambiguous.
    pub fn bit(self) -> Option<bool> {
        match self {
            Detection::Zero => Some(false),
            Detection::One => Some(true),
            Detection::Weak => None,
        }
    }
}

/// An MFM cantilever read channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadChannel {
    /// Nominal peak amplitude of an out-of-plane dot (arbitrary units).
    amplitude: f64,
    /// RMS additive Gaussian noise.
    noise_rms: f64,
    /// Residual out-of-plane leakage of a destroyed (in-plane) dot.
    heated_leakage: f64,
    /// Decision threshold: |signal| below this reports [`Detection::Weak`].
    threshold: f64,
}

impl Default for ReadChannel {
    /// A channel with ~26 dB peak SNR, comfortably separating the three
    /// signal classes.
    fn default() -> ReadChannel {
        ReadChannel {
            amplitude: 1.0,
            noise_rms: 0.05,
            heated_leakage: 0.08,
            threshold: 0.5,
        }
    }
}

impl ReadChannel {
    /// A custom channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold < amplitude` and the noise terms are
    /// non-negative.
    pub fn new(amplitude: f64, noise_rms: f64, heated_leakage: f64, threshold: f64) -> ReadChannel {
        assert!(amplitude > 0.0 && threshold > 0.0 && threshold < amplitude);
        assert!(noise_rms >= 0.0 && heated_leakage >= 0.0);
        ReadChannel {
            amplitude,
            noise_rms,
            heated_leakage,
            threshold,
        }
    }

    /// Peak signal-to-noise ratio in dB.
    pub fn snr_db(&self) -> f64 {
        20.0 * (self.amplitude / self.noise_rms.max(1e-12)).log10()
    }

    /// The raw cantilever signal for dot `index`.
    pub fn sense<R: Rng + ?Sized>(&self, medium: &Medium, index: u64, rng: &mut R) -> f64 {
        let base = match medium.state(index) {
            DotState::Up => self.amplitude,
            DotState::Down => -self.amplitude,
            DotState::Heated => {
                // In-plane moment: tiny residual out-of-plane component with
                // random sign, far below threshold.
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                sign * self.heated_leakage * rng.random::<f64>()
            }
        };
        base + gaussian_noise(rng, self.noise_rms)
    }

    /// Senses and thresholds dot `index`.
    pub fn detect<R: Rng + ?Sized>(&self, medium: &Medium, index: u64, rng: &mut R) -> Detection {
        let signal = self.sense(medium, index, rng);
        if signal >= self.threshold {
            Detection::One
        } else if signal <= -self.threshold {
            Detection::Zero
        } else {
            Detection::Weak
        }
    }

    /// Reads a run of dots, returning detections in order. The probe array
    /// layer builds sector reads from this.
    pub fn detect_run<R: Rng + ?Sized>(
        &self,
        medium: &Medium,
        range: core::ops::Range<u64>,
        rng: &mut R,
    ) -> Vec<Detection> {
        range.map(|i| self.detect(medium, i, rng)).collect()
    }

    /// Direct in-plane heat sensing — available only on elliptic-dot media
    /// (§3: "read the in-plane magnetic signal directly, however, this
    /// requires carefully constructed elliptic dots").
    ///
    /// A destroyed elliptic dot carries its full moment along the track
    /// axis, producing a strong in-plane signal; an intact perpendicular
    /// dot produces almost none. One read, no write-back — five times
    /// cheaper than the `erb` protocol. Returns `None` on circular media,
    /// where the in-plane direction of a destroyed dot is unknowable.
    pub fn sense_heat_in_plane<R: Rng + ?Sized>(
        &self,
        medium: &Medium,
        index: u64,
        rng: &mut R,
    ) -> Option<bool> {
        if medium.shape() != crate::medium::DotShape::Elliptic {
            return None;
        }
        let base = match medium.state(index) {
            DotState::Heated => 0.85 * self.amplitude,
            // Intact dots leak a little in-plane component through tilt.
            _ => self.heated_leakage,
        };
        let signal = base + gaussian_noise(rng, self.noise_rms);
        Some(signal >= self.threshold)
    }
}

/// Box–Muller Gaussian sample with standard deviation `sigma`.
fn gaussian_noise<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medium() -> Medium {
        Medium::new(Geometry::new(8, 8, 100.0))
    }

    #[test]
    fn clean_bits_detected_reliably() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(11);
        let ch = ReadChannel::default();
        for i in 0..m.dot_count() {
            m.write_mag(i, i % 2 == 0);
        }
        let mut errors = 0;
        for _ in 0..20 {
            for i in 0..m.dot_count() {
                match ch.detect(&m, i, &mut rng).bit() {
                    Some(bit) if bit == (i % 2 == 0) => {}
                    _ => errors += 1,
                }
            }
        }
        // 26 dB SNR with threshold at half amplitude: error rate is
        // essentially the Gaussian tail at 10 sigma.
        assert_eq!(errors, 0);
    }

    #[test]
    fn heated_dots_read_weak() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(12);
        let ch = ReadChannel::default();
        m.heat(7);
        let weak = (0..200)
            .filter(|_| ch.detect(&m, 7, &mut rng) == Detection::Weak)
            .count();
        assert!(
            weak >= 198,
            "heated dot produced a peak {}/200 times",
            200 - weak
        );
    }

    #[test]
    fn noisy_channel_degrades_gracefully() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(13);
        // 6 dB channel: noise rms half the amplitude.
        let ch = ReadChannel::new(1.0, 0.5, 0.08, 0.5);
        m.write_mag(0, true);
        let mut weak = 0;
        let mut wrong = 0;
        for _ in 0..1000 {
            match ch.detect(&m, 0, &mut rng) {
                Detection::One => {}
                Detection::Weak => weak += 1,
                Detection::Zero => wrong += 1,
            }
        }
        assert!(weak > 50, "a 6 dB channel must show erasures: {weak}");
        assert!(wrong < weak, "hard errors should be rarer than erasures");
    }

    #[test]
    fn detect_run_orders_results() {
        let mut m = medium();
        let mut rng = StdRng::seed_from_u64(14);
        let ch = ReadChannel::default();
        m.write_mag(0, true);
        m.write_mag(1, false);
        m.heat(2);
        let run = ch.detect_run(&m, 0..3, &mut rng);
        assert_eq!(run[0], Detection::One);
        assert_eq!(run[1], Detection::Zero);
        assert_eq!(run[2], Detection::Weak);
    }

    #[test]
    fn snr_reported() {
        assert!((ReadChannel::default().snr_db() - 26.0).abs() < 0.1);
    }

    #[test]
    fn in_plane_sensing_needs_elliptic_dots() {
        use crate::film::CoPtFilm;
        use crate::medium::DotShape;
        let mut rng = StdRng::seed_from_u64(21);
        let ch = ReadChannel::default();

        let circular = Medium::new(Geometry::new(4, 4, 100.0));
        assert_eq!(ch.sense_heat_in_plane(&circular, 0, &mut rng), None);

        let mut elliptic = Medium::with_shape(
            Geometry::new(4, 4, 150.0),
            CoPtFilm::as_grown(),
            DotShape::Elliptic,
        );
        elliptic.write_mag(0, true);
        elliptic.heat(1);
        let mut wrong = 0;
        for _ in 0..200 {
            if ch.sense_heat_in_plane(&elliptic, 0, &mut rng) != Some(false) {
                wrong += 1;
            }
            if ch.sense_heat_in_plane(&elliptic, 1, &mut rng) != Some(true) {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 0, "direct sensing should be clean at 26 dB");
    }

    #[test]
    #[should_panic]
    fn threshold_above_amplitude_panics() {
        ReadChannel::new(1.0, 0.1, 0.1, 1.5);
    }
}
