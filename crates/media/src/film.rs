//! The Co/Pt multilayer film and its response to annealing.
//!
//! §7 of the paper: the dots are stacks of ultra-thin Co (magnetic) and Pt
//! (non-magnetic) layers, each under 1 nm. The many Co–Pt interfaces force
//! the easy axis of magnetisation perpendicular to the film. Above a
//! critical temperature the interfaces mix irreversibly; the perpendicular
//! interface anisotropy is destroyed and the easy axis rotates back
//! in-plane. At still higher temperatures an fcc Co–Pt (111) crystal phase
//! grows — but its easy axes are *tilted*, so crystallisation cannot restore
//! the perpendicular property (the paper's Figure 9 discussion).
//!
//! The measured behaviour this module reproduces (paper Figure 7):
//! K ≈ 80 kJ/m³ as grown, maintained up to 500 °C, collapsing above 600 °C.
//!
//! # Examples
//!
//! ```
//! use sero_media::film::CoPtFilm;
//!
//! let film = CoPtFilm::as_grown();
//! assert!(film.is_perpendicular());
//! let cooked = film.annealed(700.0);
//! assert!(!cooked.is_perpendicular()); // irreversibly destroyed
//! ```

use core::fmt;

/// Interface-mixing midpoint: the anneal temperature (°C) at which half the
/// interface anisotropy is lost. Chosen so K is flat to 500 °C and collapses
/// above 600 °C, matching Figure 7.
pub const MIXING_MIDPOINT_C: f64 = 645.0;

/// Width (°C) of the interface-mixing transition.
pub const MIXING_WIDTH_C: f64 = 16.0;

/// Crystallisation midpoint (°C) for the fcc Co–Pt (111) phase of Figure 9.
pub const CRYSTALLISATION_MIDPOINT_C: f64 = 660.0;

/// Width (°C) of the crystallisation transition.
pub const CRYSTALLISATION_WIDTH_C: f64 = 22.0;

/// Interface anisotropy contribution of a pristine film, kJ/m³.
const K_INTERFACE_MAX: f64 = 88.0;

/// Shape (demagnetising) penalty pulling the easy axis in-plane, kJ/m³.
const K_SHAPE: f64 = 8.0;

/// A Co/Pt multilayer film sample.
///
/// `interface_quality` ∈ [0, 1] tracks how sharp the Co–Pt interfaces still
/// are; `crystalline_fraction` ∈ [0, 1] tracks how much fcc Co–Pt has grown.
/// Both evolve irreversibly under [`CoPtFilm::anneal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoPtFilm {
    co_thickness_nm: f64,
    pt_thickness_nm: f64,
    bilayers: u32,
    interface_quality: f64,
    crystalline_fraction: f64,
    ms_ka_per_m: f64,
}

impl Default for CoPtFilm {
    fn default() -> CoPtFilm {
        CoPtFilm::as_grown()
    }
}

impl fmt::Display for CoPtFilm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[Co({:.1} nm)/Pt({:.1} nm)]x{} Q={:.3} X={:.3}",
            self.co_thickness_nm,
            self.pt_thickness_nm,
            self.bilayers,
            self.interface_quality,
            self.crystalline_fraction
        )
    }
}

impl CoPtFilm {
    /// The paper's film: ~0.6 nm layers (from the low-angle XRD peak at
    /// 2θ ≈ 8°), tens of layers, sharp interfaces, no crystal phase.
    pub fn as_grown() -> CoPtFilm {
        CoPtFilm {
            co_thickness_nm: 0.6,
            pt_thickness_nm: 0.6,
            bilayers: 20,
            interface_quality: 1.0,
            crystalline_fraction: 0.0,
            ms_ka_per_m: 300.0,
        }
    }

    /// A film with custom layer thicknesses (nm) and bilayer count.
    ///
    /// # Panics
    ///
    /// Panics on non-positive thicknesses or zero bilayers.
    pub fn with_layers(co_nm: f64, pt_nm: f64, bilayers: u32) -> CoPtFilm {
        assert!(
            co_nm > 0.0 && pt_nm > 0.0 && bilayers > 0,
            "degenerate film"
        );
        CoPtFilm {
            co_thickness_nm: co_nm,
            pt_thickness_nm: pt_nm,
            bilayers,
            ..CoPtFilm::as_grown()
        }
    }

    /// Bilayer period Λ in nanometres — sets the low-angle XRD peak.
    pub fn bilayer_period_nm(&self) -> f64 {
        self.co_thickness_nm + self.pt_thickness_nm
    }

    /// Number of bilayers in the stack.
    pub fn bilayers(&self) -> u32 {
        self.bilayers
    }

    /// Total film thickness in nanometres.
    pub fn total_thickness_nm(&self) -> f64 {
        self.bilayer_period_nm() * self.bilayers as f64
    }

    /// Remaining interface sharpness, 1.0 = pristine.
    pub fn interface_quality(&self) -> f64 {
        self.interface_quality
    }

    /// Fraction of the film converted to the fcc Co–Pt phase.
    pub fn crystalline_fraction(&self) -> f64 {
        self.crystalline_fraction
    }

    /// Saturation magnetisation in kA/m.
    pub fn ms_ka_per_m(&self) -> f64 {
        self.ms_ka_per_m
    }

    /// Equilibrium interface quality after holding at `temp_c` — the
    /// sigmoidal mixing isotherm.
    pub fn equilibrium_quality(temp_c: f64) -> f64 {
        1.0 / (1.0 + ((temp_c - MIXING_MIDPOINT_C) / MIXING_WIDTH_C).exp())
    }

    /// Equilibrium crystalline fraction after holding at `temp_c`.
    pub fn equilibrium_crystallinity(temp_c: f64) -> f64 {
        1.0 / (1.0 + ((CRYSTALLISATION_MIDPOINT_C - temp_c) / CRYSTALLISATION_WIDTH_C).exp())
    }

    /// Anneals the film at `temp_c` (one standard treatment).
    ///
    /// Both structural changes are irreversible: quality only decreases,
    /// crystallinity only increases, regardless of the order of anneals.
    pub fn anneal(&mut self, temp_c: f64) {
        self.interface_quality = self
            .interface_quality
            .min(Self::equilibrium_quality(temp_c));
        self.crystalline_fraction = self
            .crystalline_fraction
            .max(Self::equilibrium_crystallinity(temp_c));
    }

    /// Returns an annealed copy (builder-style convenience).
    pub fn annealed(mut self, temp_c: f64) -> CoPtFilm {
        self.anneal(temp_c);
        self
    }

    /// Effective perpendicular anisotropy K in kJ/m³ — what the torque
    /// magnetometer of Figure 7 measures. Positive K means the easy axis is
    /// perpendicular (out-of-plane); negative means it has fallen in-plane.
    pub fn anisotropy_kj_per_m3(&self) -> f64 {
        K_INTERFACE_MAX * self.interface_quality - K_SHAPE
    }

    /// True while the film still supports perpendicular recording.
    pub fn is_perpendicular(&self) -> bool {
        self.anisotropy_kj_per_m3() > 0.0
    }

    /// The lowest anneal temperature (°C) that destroys perpendicular
    /// anisotropy, found by bisection on the equilibrium isotherm. The
    /// thermal model uses this as the dot-destruction threshold.
    pub fn destruction_temperature_c() -> f64 {
        let target = K_SHAPE / K_INTERFACE_MAX; // quality at K = 0
        let (mut lo, mut hi) = (MIXING_MIDPOINT_C - 300.0, MIXING_MIDPOINT_C + 300.0);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if Self::equilibrium_quality(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_grown_matches_paper() {
        let film = CoPtFilm::as_grown();
        let k = film.anisotropy_kj_per_m3();
        assert!(
            (k - 80.0).abs() < 0.5,
            "as-grown K = {k}, paper says 80 kJ/m³"
        );
        assert!(film.is_perpendicular());
        assert_eq!(film.crystalline_fraction(), 0.0);
    }

    #[test]
    fn k_maintained_to_500c() {
        // Figure 7: "This value is maintained up to an annealing
        // temperature of 500 °C."
        for t in [100.0, 200.0, 300.0, 400.0, 500.0] {
            let k = CoPtFilm::as_grown().annealed(t).anisotropy_kj_per_m3();
            assert!(k > 75.0, "K({t}) = {k} should stay near 80");
        }
    }

    #[test]
    fn k_collapses_above_600c() {
        // Figure 7: "Above 600 °C the value of K drops dramatically."
        let k600 = CoPtFilm::as_grown().annealed(600.0).anisotropy_kj_per_m3();
        let k650 = CoPtFilm::as_grown().annealed(650.0).anisotropy_kj_per_m3();
        let k700 = CoPtFilm::as_grown().annealed(700.0).anisotropy_kj_per_m3();
        assert!(k600 > 50.0, "600 °C not yet collapsed: {k600}");
        assert!(k650 < k600 / 2.0, "650 °C should be well down: {k650}");
        assert!(
            k700 < 0.0,
            "700 °C destroys perpendicular anisotropy: {k700}"
        );
    }

    #[test]
    fn annealing_is_irreversible() {
        let mut film = CoPtFilm::as_grown();
        film.anneal(700.0);
        let destroyed_k = film.anisotropy_kj_per_m3();
        // A later low-temperature treatment cannot heal the interfaces.
        film.anneal(100.0);
        assert_eq!(film.anisotropy_kj_per_m3(), destroyed_k);
        assert!(!film.is_perpendicular());
    }

    #[test]
    fn anneal_order_does_not_matter_for_extremes() {
        let a = CoPtFilm::as_grown().annealed(400.0).annealed(700.0);
        let b = CoPtFilm::as_grown().annealed(700.0).annealed(400.0);
        assert!((a.anisotropy_kj_per_m3() - b.anisotropy_kj_per_m3()).abs() < 1e-9);
        assert!((a.crystalline_fraction() - b.crystalline_fraction()).abs() < 1e-9);
    }

    #[test]
    fn crystallisation_grows_with_temperature() {
        // Figure 9: the fcc CoPt (111) peak appears in the 700 °C sample.
        let x25 = CoPtFilm::as_grown().crystalline_fraction();
        let x600 = CoPtFilm::as_grown().annealed(600.0).crystalline_fraction();
        let x700 = CoPtFilm::as_grown().annealed(700.0).crystalline_fraction();
        assert!(x25 < 0.01);
        assert!(x600 < 0.2);
        assert!(x700 > 0.7);
    }

    #[test]
    fn crystallisation_cannot_restore_perpendicularity() {
        // §7: the fct/fcc phase has tilted easy axes, "So there is no risk
        // that after excessive heating the perpendicular anisotropy can be
        // restored by crystallisation."
        let film = CoPtFilm::as_grown().annealed(900.0);
        assert!(film.crystalline_fraction() > 0.99);
        assert!(!film.is_perpendicular());
    }

    #[test]
    fn destruction_temperature_is_between_600_and_700() {
        let t = CoPtFilm::destruction_temperature_c();
        assert!(t > 600.0 && t < 700.0, "destruction at {t} °C");
        // Annealing just above destroys, just below does not.
        assert!(!CoPtFilm::as_grown().annealed(t + 5.0).is_perpendicular());
        assert!(CoPtFilm::as_grown().annealed(t - 5.0).is_perpendicular());
    }

    #[test]
    fn bilayer_period_matches_xrd_inference() {
        // The paper infers ~0.6 nm layers from the 8° low-angle peak.
        let film = CoPtFilm::as_grown();
        assert!((film.bilayer_period_nm() - 1.2).abs() < 1e-12);
        assert!((film.total_thickness_nm() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn custom_layers() {
        let film = CoPtFilm::with_layers(0.4, 0.8, 15);
        assert!((film.bilayer_period_nm() - 1.2).abs() < 1e-12);
        assert_eq!(film.bilayers(), 15);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_film_panics() {
        CoPtFilm::with_layers(0.0, 0.6, 10);
    }

    #[test]
    fn display_nonempty() {
        assert!(!CoPtFilm::as_grown().to_string().is_empty());
    }
}
