//! Torque magnetometry — the measurement pipeline behind Figure 7.
//!
//! The paper: "The anisotropy constants were calculated by a Fourier
//! transformation of the torque curve obtained with an applied field of
//! 1350 kA/m." This module reproduces that pipeline end to end:
//!
//! 1. For each applied-field angle θ_H, find the equilibrium magnetisation
//!    angle θ minimising the free energy
//!    `E(θ) = K·sin²θ − μ₀·Ms·H·cos(θ_H − θ)`.
//! 2. The torque per unit volume exerted on the sample is
//!    `L(θ_H) = −K·sin 2θ` at equilibrium.
//! 3. Extract K as the −sin 2θ_H Fourier coefficient of the curve.
//!
//! At the paper's field (1350 kA/m ≫ the anisotropy field) the
//! magnetisation nearly follows the field and the extraction recovers K to
//! within a few per cent, which is all Figure 7 needs.
//!
//! # Examples
//!
//! ```
//! use sero_media::film::CoPtFilm;
//! use sero_media::torque::TorqueMagnetometer;
//!
//! let tm = TorqueMagnetometer::paper_setup();
//! let k = tm.measure_k(&CoPtFilm::as_grown());
//! assert!((k - 80.0).abs() < 8.0); // within measurement error of 80 kJ/m³
//! ```

use crate::film::CoPtFilm;
use core::f64::consts::PI;

/// Vacuum permeability, T·m/A.
pub const MU0: f64 = 4.0e-7 * PI;

/// A simulated torque magnetometer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TorqueMagnetometer {
    field_ka_per_m: f64,
    samples: usize,
}

/// One sampled torque curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TorqueCurve {
    /// Applied-field angles in radians, uniformly covering [0, 2π).
    pub angles_rad: Vec<f64>,
    /// Torque per unit volume at each angle, kJ/m³.
    pub torque_kj_per_m3: Vec<f64>,
}

impl TorqueMagnetometer {
    /// The paper's setup: 1350 kA/m applied field; 360 sample points.
    pub fn paper_setup() -> TorqueMagnetometer {
        TorqueMagnetometer {
            field_ka_per_m: 1350.0,
            samples: 360,
        }
    }

    /// A magnetometer with a custom field strength (kA/m) and sampling.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive field or fewer than 8 samples.
    pub fn new(field_ka_per_m: f64, samples: usize) -> TorqueMagnetometer {
        assert!(field_ka_per_m > 0.0, "field must be positive");
        assert!(samples >= 8, "need at least 8 samples for the Fourier fit");
        TorqueMagnetometer {
            field_ka_per_m,
            samples,
        }
    }

    /// Applied field in kA/m.
    pub fn field_ka_per_m(&self) -> f64 {
        self.field_ka_per_m
    }

    /// Zeeman energy scale μ₀·Ms·H in kJ/m³ for `film`.
    fn zeeman_kj_per_m3(&self, film: &CoPtFilm) -> f64 {
        // Ms in A/m × H in A/m × μ₀ → J/m³; /1000 → kJ/m³.
        MU0 * (film.ms_ka_per_m() * 1e3) * (self.field_ka_per_m * 1e3) / 1e3
    }

    /// Records a full torque curve for `film`.
    pub fn curve(&self, film: &CoPtFilm) -> TorqueCurve {
        let k = film.anisotropy_kj_per_m3();
        let zeeman = self.zeeman_kj_per_m3(film);
        let mut angles = Vec::with_capacity(self.samples);
        let mut torque = Vec::with_capacity(self.samples);
        for i in 0..self.samples {
            let theta_h = 2.0 * PI * i as f64 / self.samples as f64;
            let theta = equilibrium_angle(k, zeeman, theta_h);
            angles.push(theta_h);
            torque.push(-k * (2.0 * theta).sin());
        }
        TorqueCurve {
            angles_rad: angles,
            torque_kj_per_m3: torque,
        }
    }

    /// Measures the effective perpendicular anisotropy of `film` in kJ/m³,
    /// via the Fourier transformation of the torque curve — the paper's
    /// published method.
    pub fn measure_k(&self, film: &CoPtFilm) -> f64 {
        self.curve(film).sin2_coefficient().map_or(0.0, |b2| -b2)
    }
}

impl TorqueCurve {
    /// The coefficient of sin 2θ_H in the curve's Fourier series, or `None`
    /// for an empty curve.
    pub fn sin2_coefficient(&self) -> Option<f64> {
        if self.angles_rad.is_empty() {
            return None;
        }
        let n = self.angles_rad.len() as f64;
        let sum: f64 = self
            .angles_rad
            .iter()
            .zip(self.torque_kj_per_m3.iter())
            .map(|(&a, &t)| t * (2.0 * a).sin())
            .sum();
        Some(2.0 * sum / n)
    }

    /// Peak torque magnitude over the curve, kJ/m³.
    pub fn peak(&self) -> f64 {
        self.torque_kj_per_m3
            .iter()
            .fold(0.0f64, |m, &t| m.max(t.abs()))
    }
}

/// Equilibrium magnetisation angle for energy
/// `E(θ) = K sin²θ − Z cos(θ_H − θ)` (all in kJ/m³), found by golden-section
/// search in the basin around the field direction.
fn equilibrium_angle(k: f64, zeeman: f64, theta_h: f64) -> f64 {
    let energy = |theta: f64| k * theta.sin().powi(2) - zeeman * (theta_h - theta).cos();
    // With Z > 2K the energy is unimodal within ±π/2 of the field angle.
    let (mut lo, mut hi) = (theta_h - PI / 2.0, theta_h + PI / 2.0);
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let (mut f1, mut f2) = (energy(x1), energy(x2));
    for _ in 0..72 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = energy(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = energy(x2);
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_as_grown_k() {
        let tm = TorqueMagnetometer::paper_setup();
        let k = tm.measure_k(&CoPtFilm::as_grown());
        let truth = CoPtFilm::as_grown().anisotropy_kj_per_m3();
        let err = (k - truth).abs() / truth;
        assert!(err < 0.10, "measured {k}, truth {truth}, err {err:.3}");
    }

    #[test]
    fn measurement_tracks_annealing() {
        // The measured K must reproduce the Figure 7 staircase.
        let tm = TorqueMagnetometer::paper_setup();
        let temps = [25.0, 300.0, 400.0, 500.0, 600.0, 700.0];
        let ks: Vec<f64> = temps
            .iter()
            .map(|&t| tm.measure_k(&CoPtFilm::as_grown().annealed(t)))
            .collect();
        assert!(ks[0] > 70.0);
        assert!(ks[3] > 70.0, "500 °C maintains K: {}", ks[3]);
        assert!(ks[5] < 10.0, "700 °C collapses K: {}", ks[5]);
        // Monotone non-increasing within tolerance.
        for w in ks.windows(2) {
            assert!(
                w[1] <= w[0] + 2.0,
                "K increased after hotter anneal: {ks:?}"
            );
        }
    }

    #[test]
    fn higher_field_measures_more_accurately() {
        let film = CoPtFilm::as_grown();
        let truth = film.anisotropy_kj_per_m3();
        let low = TorqueMagnetometer::new(400.0, 360).measure_k(&film);
        let high = TorqueMagnetometer::new(4000.0, 360).measure_k(&film);
        assert!(
            (high - truth).abs() < (low - truth).abs(),
            "high-field error should shrink: low {low}, high {high}, truth {truth}"
        );
        assert!((high - truth).abs() / truth < 0.02);
    }

    #[test]
    fn torque_curve_shape() {
        let tm = TorqueMagnetometer::paper_setup();
        let curve = tm.curve(&CoPtFilm::as_grown());
        assert_eq!(curve.angles_rad.len(), 360);
        // sin 2θ symmetry: torque at θ and θ+π match.
        for i in 0..180 {
            let a = curve.torque_kj_per_m3[i];
            let b = curve.torque_kj_per_m3[i + 180];
            assert!((a - b).abs() < 1.0, "period-π symmetry violated at {i}");
        }
        // Peak torque is of order K.
        assert!(curve.peak() > 40.0 && curve.peak() < 100.0);
    }

    #[test]
    fn destroyed_film_measures_near_zero_or_negative() {
        let tm = TorqueMagnetometer::paper_setup();
        let k = tm.measure_k(&CoPtFilm::as_grown().annealed(750.0));
        assert!(k < 5.0, "destroyed film K = {k}");
    }

    #[test]
    fn empty_curve_has_no_coefficient() {
        let curve = TorqueCurve {
            angles_rad: vec![],
            torque_kj_per_m3: vec![],
        };
        assert_eq!(curve.sin2_coefficient(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_field_panics() {
        TorqueMagnetometer::new(0.0, 360);
    }
}
