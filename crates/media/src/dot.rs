//! The tri-state magnetic dot and its packed storage.
//!
//! Figure 2 of the paper defines the state machine of one bit:
//!
//! * `0` / `1` — magnetisation down / up along the perpendicular easy axis.
//!   `mwb` moves freely between these; `mrb` senses them.
//! * `H` — heated. The electrical write `ewb` destroys the multilayer
//!   interfaces, the easy axis falls in-plane, and the dot can never hold a
//!   perpendicular bit again. `H` is **absorbing**: no operation leaves it.
//!
//! Reading a heated dot magnetically "would yield a more or less random
//! result" (§3) — randomness is injected where reads happen, not stored
//! here, so the state itself stays deterministic and snapshot-friendly.
//!
//! # Examples
//!
//! ```
//! use sero_media::dot::{DotArray, DotState};
//!
//! let mut dots = DotArray::new(8);
//! dots.write_mag(3, true);
//! assert_eq!(dots.state(3), DotState::Up);
//! dots.heat(3);
//! assert_eq!(dots.state(3), DotState::Heated);
//! dots.write_mag(3, false); // no effect: H is absorbing
//! assert_eq!(dots.state(3), DotState::Heated);
//! ```

use core::fmt;

/// Physical state of a single dot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DotState {
    /// Magnetised downwards — logical 0.
    Down,
    /// Magnetised upwards — logical 1.
    Up,
    /// Irreversibly heated — the paper's `H`.
    Heated,
}

impl DotState {
    /// The logical bit stored magnetically, if any.
    pub fn magnetic_bit(self) -> Option<bool> {
        match self {
            DotState::Down => Some(false),
            DotState::Up => Some(true),
            DotState::Heated => None,
        }
    }

    /// True for the heated (destroyed) state.
    pub fn is_heated(self) -> bool {
        self == DotState::Heated
    }

    fn to_bits(self) -> u8 {
        match self {
            DotState::Down => 0b00,
            DotState::Up => 0b01,
            DotState::Heated => 0b10,
        }
    }

    fn from_bits(bits: u8) -> DotState {
        match bits & 0b11 {
            0b00 => DotState::Down,
            0b01 => DotState::Up,
            _ => DotState::Heated,
        }
    }
}

impl fmt::Display for DotState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            DotState::Down => '0',
            DotState::Up => '1',
            DotState::Heated => 'H',
        };
        write!(f, "{c}")
    }
}

impl Default for DotState {
    /// Fresh media leave the factory demagnetised; we model that as all
    /// dots down (logical 0).
    fn default() -> DotState {
        DotState::Down
    }
}

/// Densely packed array of dot states, two bits per dot.
///
/// A 2²⁰-block medium holds ~5 × 10⁹ dots; packing keeps simulations of
/// file-system-sized media in tens of megabytes.
#[derive(Clone, PartialEq, Eq)]
pub struct DotArray {
    words: Vec<u8>,
    len: u64,
    heated: u64,
}

impl fmt::Debug for DotArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DotArray")
            .field("len", &self.len)
            .field("heated", &self.heated)
            .finish()
    }
}

impl DotArray {
    /// Creates `len` dots, all in the default [`DotState::Down`] state.
    pub fn new(len: u64) -> DotArray {
        let bytes = (len as usize).div_ceil(4);
        DotArray {
            words: vec![0u8; bytes],
            len,
            heated: 0,
        }
    }

    /// Number of dots.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the array holds no dots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of heated dots (maintained incrementally).
    pub fn heated_count(&self) -> u64 {
        self.heated
    }

    /// The state of dot `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn state(&self, index: u64) -> DotState {
        assert!(index < self.len, "dot index {index} out of range");
        let byte = self.words[(index / 4) as usize];
        DotState::from_bits(byte >> ((index % 4) * 2))
    }

    fn set_state(&mut self, index: u64, state: DotState) {
        let slot = (index / 4) as usize;
        let shift = (index % 4) * 2;
        let mask = 0b11u8 << shift;
        self.words[slot] = (self.words[slot] & !mask) | (state.to_bits() << shift);
    }

    /// Magnetic write (`mwb`): sets the magnetisation direction.
    ///
    /// Has no effect on heated dots — there is no perpendicular axis left to
    /// magnetise (Figure 2 bottom: `mwb 0/1` loops on `H`). Returns whether
    /// the write took effect.
    pub fn write_mag(&mut self, index: u64, bit: bool) -> bool {
        match self.state(index) {
            DotState::Heated => false,
            _ => {
                self.set_state(index, if bit { DotState::Up } else { DotState::Down });
                true
            }
        }
    }

    /// Electrical write (`ewb`): irreversibly heats the dot.
    ///
    /// Returns `true` when the dot was newly heated, `false` when it was
    /// already heated (reheating is idempotent and harmless).
    pub fn heat(&mut self, index: u64) -> bool {
        match self.state(index) {
            DotState::Heated => false,
            _ => {
                self.set_state(index, DotState::Heated);
                self.heated += 1;
                true
            }
        }
    }

    /// Ground-truth heat inspection — what a forensic magnetic-imaging pass
    /// would reveal (§8 "Forensics").
    pub fn is_heated(&self, index: u64) -> bool {
        self.state(index).is_heated()
    }

    /// Focused-ion-beam reconstruction: physically rebuilds a destroyed
    /// dot's multilayer so it holds `bit` again — the §8 "skilled FIB
    /// operator" adversary. Returns whether the dot was heated before.
    ///
    /// This deliberately violates the Figure 2 state machine (nothing the
    /// *device* can do leaves `H`); only [`crate::medium::Medium`] exposes
    /// it, tagged so forensic imaging can find the scar.
    pub(crate) fn fib_rewrite(&mut self, index: u64, bit: bool) -> bool {
        let was_heated = self.is_heated(index);
        if was_heated {
            self.heated -= 1;
        }
        self.set_state(index, if bit { DotState::Up } else { DotState::Down });
        was_heated
    }

    /// Iterator over all dot states in index order.
    pub fn iter(&self) -> impl Iterator<Item = DotState> + '_ {
        (0..self.len).map(move |i| self.state(i))
    }

    /// Fraction of dots heated.
    pub fn heated_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.heated as f64 / self.len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_down() {
        let dots = DotArray::new(16);
        assert!(dots.iter().all(|s| s == DotState::Down));
        assert_eq!(dots.heated_count(), 0);
    }

    #[test]
    fn magnetic_writes_flip_freely() {
        let mut dots = DotArray::new(4);
        assert!(dots.write_mag(1, true));
        assert_eq!(dots.state(1), DotState::Up);
        assert!(dots.write_mag(1, false));
        assert_eq!(dots.state(1), DotState::Down);
        assert!(dots.write_mag(1, true));
        assert_eq!(dots.state(1), DotState::Up);
    }

    #[test]
    fn heat_is_absorbing() {
        let mut dots = DotArray::new(4);
        dots.write_mag(2, true);
        assert!(dots.heat(2));
        assert_eq!(dots.state(2), DotState::Heated);
        // mwb on H: no effect.
        assert!(!dots.write_mag(2, false));
        assert_eq!(dots.state(2), DotState::Heated);
        // Re-heating: idempotent, not counted twice.
        assert!(!dots.heat(2));
        assert_eq!(dots.heated_count(), 1);
    }

    #[test]
    fn heated_count_tracks() {
        let mut dots = DotArray::new(100);
        for i in (0..100).step_by(3) {
            dots.heat(i);
        }
        assert_eq!(dots.heated_count(), 34);
        assert!((dots.heated_fraction() - 0.34).abs() < 1e-12);
    }

    #[test]
    fn packing_is_independent_per_dot() {
        // Dots sharing a byte must not interfere.
        let mut dots = DotArray::new(8);
        dots.write_mag(0, true);
        dots.heat(1);
        dots.write_mag(2, true);
        dots.write_mag(3, false);
        assert_eq!(dots.state(0), DotState::Up);
        assert_eq!(dots.state(1), DotState::Heated);
        assert_eq!(dots.state(2), DotState::Up);
        assert_eq!(dots.state(3), DotState::Down);
        dots.write_mag(0, false);
        assert_eq!(dots.state(1), DotState::Heated);
        assert_eq!(dots.state(2), DotState::Up);
    }

    #[test]
    fn magnetic_bit_mapping() {
        assert_eq!(DotState::Down.magnetic_bit(), Some(false));
        assert_eq!(DotState::Up.magnetic_bit(), Some(true));
        assert_eq!(DotState::Heated.magnetic_bit(), None);
    }

    #[test]
    fn display_notation() {
        assert_eq!(DotState::Down.to_string(), "0");
        assert_eq!(DotState::Up.to_string(), "1");
        assert_eq!(DotState::Heated.to_string(), "H");
    }

    #[test]
    fn odd_sizes_work() {
        for len in [1u64, 3, 5, 7, 9, 1023] {
            let mut dots = DotArray::new(len);
            dots.heat(len - 1);
            assert_eq!(dots.heated_count(), 1);
            assert_eq!(dots.state(len - 1), DotState::Heated);
        }
        assert!(DotArray::new(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        DotArray::new(4).state(4);
    }
}
