//! The patterned medium: geometry + dot states + film physics in one unit.
//!
//! This is the object the probe device actuates over. It exposes the
//! *physical* operations only — directioned magnetic writes, magnetic reads
//! (with the Figure 2 "random result" behaviour on heated dots), and
//! irreversible heating. Protocol (bit/sector/line) layers live in
//! `sero-probe` and `sero-core`.
//!
//! # Examples
//!
//! ```
//! use sero_media::medium::Medium;
//! use sero_media::geometry::Geometry;
//! use rand::SeedableRng;
//!
//! let mut medium = Medium::new(Geometry::new(16, 16, 100.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! medium.write_mag(5, true);
//! assert_eq!(medium.read_mag(5, &mut rng), true);
//! medium.heat(5);
//! assert!(medium.is_heated(5)); // physically inspectable forever
//! ```

use crate::dot::{DotArray, DotState};
use crate::film::CoPtFilm;
use crate::geometry::Geometry;
use rand::Rng;

/// The lithographed shape of the dots.
///
/// §7 of the paper: circular dots have an easy *plane* once destroyed —
/// their in-plane magnetisation direction is unknowable, which is why
/// `erb` needs the five-step protocol. "By intentionally realising
/// elliptic dots with their long axis along the track direction, data
/// detection will be more robust" — a destroyed elliptic dot settles its
/// moment along the known track axis, so heat can be sensed *directly*
/// with one in-plane read. The price: "Since the anisotropy is low, data
/// density cannot be high however."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DotShape {
    /// Circular dots (the paper's default; highest density).
    #[default]
    Circular,
    /// Elliptic dots, long axis along the track.
    Elliptic,
}

/// A patterned magnetic medium.
#[derive(Debug, Clone)]
pub struct Medium {
    geometry: Geometry,
    dots: DotArray,
    film: CoPtFilm,
    shape: DotShape,
    /// Dots rebuilt by a focused ion beam — physically distinguishable
    /// from lithographed originals under magnetic imaging (§8).
    reconstructed: std::collections::BTreeSet<u64>,
}

impl Medium {
    /// Creates a medium of as-grown Co/Pt film over `geometry`.
    pub fn new(geometry: Geometry) -> Medium {
        Medium::with_film(geometry, CoPtFilm::as_grown())
    }

    /// Creates a medium with a specific film recipe.
    pub fn with_film(geometry: Geometry, film: CoPtFilm) -> Medium {
        Medium::with_shape(geometry, film, DotShape::Circular)
    }

    /// Creates a medium with explicit dot shape (see [`DotShape`]).
    pub fn with_shape(geometry: Geometry, film: CoPtFilm, shape: DotShape) -> Medium {
        Medium {
            dots: DotArray::new(geometry.dot_count()),
            geometry,
            film,
            shape,
            reconstructed: std::collections::BTreeSet::new(),
        }
    }

    /// The dot shape of this medium.
    pub fn shape(&self) -> DotShape {
        self.shape
    }

    /// The dot-matrix geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The film recipe of the (unheated) dots.
    pub fn film(&self) -> &CoPtFilm {
        &self.film
    }

    /// Number of dots on the medium.
    pub fn dot_count(&self) -> u64 {
        self.dots.len()
    }

    /// Number of irreversibly heated dots.
    pub fn heated_count(&self) -> u64 {
        self.dots.heated_count()
    }

    /// Fraction of the medium consumed by heating.
    pub fn heated_fraction(&self) -> f64 {
        self.dots.heated_fraction()
    }

    /// Ground-truth state of dot `index`.
    pub fn state(&self, index: u64) -> DotState {
        self.dots.state(index)
    }

    /// Magnetic write `mwb`. No effect on heated dots; returns whether the
    /// write took.
    pub fn write_mag(&mut self, index: u64, bit: bool) -> bool {
        self.dots.write_mag(index, bit)
    }

    /// Magnetic read `mrb`.
    ///
    /// Heated dots have no out-of-plane magnetisation: per Figure 2 the
    /// result is "more or less random", modelled with the caller's `rng`
    /// (keeping the medium itself deterministic and cloneable for
    /// snapshot-based tests).
    pub fn read_mag<R: Rng + ?Sized>(&self, index: u64, rng: &mut R) -> bool {
        match self.dots.state(index).magnetic_bit() {
            Some(bit) => bit,
            None => rng.random(),
        }
    }

    /// Electrical write `ewb`: destroy the dot's multilayer irreversibly.
    ///
    /// Returns whether the dot was newly heated. Thermal side effects on
    /// neighbours are modelled by [`crate::thermal`], which calls this.
    pub fn heat(&mut self, index: u64) -> bool {
        self.dots.heat(index)
    }

    /// True when dot `index` has been heated. This is the *physical*
    /// inspection the `erb` protocol approximates through magnetic
    /// operations.
    pub fn is_heated(&self, index: u64) -> bool {
        self.dots.is_heated(index)
    }

    /// §5.2 bulk-erase attack: "If done properly, this would clear all
    /// magnetically written information. However all electrically written
    /// information is still present."
    ///
    /// Every unheated dot is randomised (a degausser leaves no coherent
    /// data); heated dots are untouched.
    pub fn bulk_erase<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.dots.len() {
            if !self.dots.is_heated(i) {
                self.dots.write_mag(i, rng.random());
            }
        }
    }

    /// Heated-dot indices in `range` — the forensic scan primitive used by
    /// fsck-style recovery (§5.2) and the Figure 3 layout dump.
    pub fn heated_in(&self, range: core::ops::Range<u64>) -> Vec<u64> {
        range.filter(|&i| self.dots.is_heated(i)).collect()
    }

    /// The §8 nation-state adversary: a focused-ion-beam rebuild of dot
    /// `index` into a working magnetic dot holding `bit`.
    ///
    /// The paper judges this "difficult": the operator "would have to
    /// remove the debris of an in-plane dot first, and then deposit
    /// several thin Co and Pt layers in a sub-micron area with the correct
    /// delicate layer structure … just to reconstruct one dot" — and the
    /// rebuilt dot remains distinguishable under magnetic imaging. The
    /// simulation grants the attacker full success at the *data* level and
    /// records the physical scar for [`crate::forensics`] to find.
    pub fn fib_reconstruct(&mut self, index: u64, bit: bool) {
        self.dots.fib_rewrite(index, bit);
        self.reconstructed.insert(index);
    }

    /// Number of FIB-reconstructed dots on the medium.
    pub fn reconstructed_count(&self) -> usize {
        self.reconstructed.len()
    }

    /// Whether dot `index` carries a reconstruction scar (ground truth;
    /// the probabilistic detector lives in [`crate::forensics`]).
    pub fn is_reconstructed(&self, index: u64) -> bool {
        self.reconstructed.contains(&index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> Medium {
        Medium::new(Geometry::new(8, 8, 100.0))
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = small();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..m.dot_count() {
            let bit = i % 3 == 0;
            assert!(m.write_mag(i, bit));
            assert_eq!(m.read_mag(i, &mut rng), bit);
        }
    }

    #[test]
    fn heated_dot_reads_randomly() {
        let mut m = small();
        m.write_mag(0, true);
        m.heat(0);
        let mut rng = StdRng::seed_from_u64(42);
        let reads: Vec<bool> = (0..256).map(|_| m.read_mag(0, &mut rng)).collect();
        let ones = reads.iter().filter(|&&b| b).count();
        // Random, not stuck: expect a healthy mix.
        assert!(ones > 64 && ones < 192, "ones = {ones}");
    }

    #[test]
    fn bulk_erase_spares_heated_dots() {
        let mut m = small();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..m.dot_count() {
            m.write_mag(i, true);
        }
        for i in [1u64, 9, 17, 33] {
            m.heat(i);
        }
        m.bulk_erase(&mut rng);
        // Heated dots still identifiable.
        for i in [1u64, 9, 17, 33] {
            assert!(m.is_heated(i));
        }
        assert_eq!(m.heated_count(), 4);
        // Magnetic data is gone: the all-ones pattern did not survive.
        let survivors = (0..m.dot_count())
            .filter(|&i| !m.is_heated(i))
            .filter(|&i| m.state(i) == DotState::Up)
            .count();
        assert!(survivors < 55, "degausser left {survivors}/60 dots intact");
    }

    #[test]
    fn heated_in_finds_pattern() {
        let mut m = small();
        m.heat(10);
        m.heat(12);
        m.heat(40);
        assert_eq!(m.heated_in(0..20), vec![10, 12]);
        assert_eq!(m.heated_in(20..64), vec![40]);
    }

    #[test]
    fn film_accessible() {
        let m = small();
        assert!(m.film().is_perpendicular());
        assert_eq!(m.geometry().pitch_nm(), 100.0);
    }
}
