//! Index record schema: how the file system's metadata rides the
//! [`sero_index::MetaIndex`].
//!
//! Two key families, both well under [`sero_index::MAX_KEY_BYTES`]:
//!
//! * `d/<name>` → inode number (u64 LE). One entry per directory name;
//!   lexicographic key order makes paginated listing a range scan.
//! * `i/<ino BE>/<chunk>` → one chunk of the inode record. Big-endian
//!   inode numbers keep a file's chunks adjacent and ordered. Chunk 0
//!   starts with the total chunk count, so a point lookup of chunk 0
//!   tells the reader how many continuation keys to fetch; re-putting a
//!   shrunken record deletes the stale tail chunks.
//!
//! The inode record carries everything mount needs so that it never
//! touches inode blocks on the device: the full [`Inode`] (block
//! pointers included) plus the device locations of its main and
//! indirect blocks, which the allocator must mark as live on mount.

use crate::error::FsError;
use crate::inode::{FileKind, Inode, MAX_BLOCKS, MAX_NAME_BYTES};
use sero_core::line::Line;
use sero_index::MAX_VALUE_BYTES;

/// Upper bound on chunks per inode record. The worst-case record (64-byte
/// name, [`MAX_BLOCKS`] block pointers) is just over 1 KiB, i.e. three
/// [`MAX_VALUE_BYTES`] chunks; one spare guards the arithmetic.
pub(crate) const MAX_RECORD_CHUNKS: u8 = 4;

/// The directory key for `name`.
pub(crate) fn dir_key(name: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(2 + name.len());
    key.extend_from_slice(b"d/");
    key.extend_from_slice(name.as_bytes());
    key
}

/// The key of inode `ino`'s record chunk `chunk`.
pub(crate) fn ino_key(ino: u64, chunk: u8) -> Vec<u8> {
    let mut key = Vec::with_capacity(11);
    key.extend_from_slice(b"i/");
    key.extend_from_slice(&ino.to_be_bytes());
    key.push(chunk);
    key
}

/// A decoded inode record: the inode plus its on-device locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct InodeRecord {
    pub inode: Inode,
    /// Device block holding the inode's main block, when synced.
    pub inode_loc: Option<u64>,
    /// Device block holding the indirect block, when one exists.
    pub indirect_loc: Option<u64>,
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        None => buf.push(0),
    }
}

/// Serialises an inode record (unchunked).
pub(crate) fn encode_record(
    inode: &Inode,
    inode_loc: Option<u64>,
    indirect_loc: Option<u64>,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128 + 8 * inode.blocks.len());
    buf.extend_from_slice(&inode.ino.to_le_bytes());
    buf.extend_from_slice(&inode.size.to_le_bytes());
    buf.push(match inode.kind {
        FileKind::Regular => 1,
        FileKind::Directory => 2,
    });
    buf.extend_from_slice(&inode.link_count.to_le_bytes());
    buf.extend_from_slice(&inode.mtime.to_le_bytes());
    match inode.heated {
        Some(line) => {
            buf.extend_from_slice(&line.start().to_le_bytes());
            buf.push(line.order() as u8);
        }
        None => {
            buf.extend_from_slice(&u64::MAX.to_le_bytes());
            buf.push(0);
        }
    }
    buf.push(inode.name.len() as u8);
    buf.extend_from_slice(inode.name.as_bytes());
    put_opt_u64(&mut buf, inode_loc);
    put_opt_u64(&mut buf, indirect_loc);
    buf.extend_from_slice(&(inode.blocks.len() as u16).to_le_bytes());
    for &b in &inode.blocks {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    buf
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FsError> {
        if self.pos + n > self.buf.len() {
            return Err(FsError::Corrupt {
                reason: "inode record truncated".to_string(),
            });
        }
        let v = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(v)
    }
    fn u8(&mut self) -> Result<u8, FsError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, FsError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u64(&mut self) -> Result<u64, FsError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, FsError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(FsError::Corrupt {
                reason: format!("bad option byte {other} in inode record"),
            }),
        }
    }
}

/// Parses an inode record assembled from its chunks.
pub(crate) fn decode_record(buf: &[u8]) -> Result<InodeRecord, FsError> {
    let mut r = Cursor { buf, pos: 0 };
    let ino = r.u64()?;
    let size = r.u64()?;
    let kind = match r.u8()? {
        1 => FileKind::Regular,
        2 => FileKind::Directory,
        other => {
            return Err(FsError::Corrupt {
                reason: format!("unknown file kind {other} in inode record"),
            })
        }
    };
    let link_count = r.u16()?;
    let mtime = r.u64()?;
    let heated_start = r.u64()?;
    let heated_order = r.u8()?;
    let heated = if heated_start == u64::MAX {
        None
    } else {
        Some(
            Line::new(heated_start, heated_order as u32).map_err(|e| FsError::Corrupt {
                reason: format!("inode record carries invalid line: {e}"),
            })?,
        )
    };
    let name_len = r.u8()? as usize;
    if name_len == 0 || name_len > MAX_NAME_BYTES {
        return Err(FsError::Corrupt {
            reason: format!("bad name length {name_len} in inode record"),
        });
    }
    let name = String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| FsError::Corrupt {
        reason: "inode record name is not UTF-8".to_string(),
    })?;
    let inode_loc = r.opt_u64()?;
    let indirect_loc = r.opt_u64()?;
    let n_blocks = r.u16()? as usize;
    if n_blocks > MAX_BLOCKS {
        return Err(FsError::Corrupt {
            reason: format!("inode record claims {n_blocks} blocks"),
        });
    }
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        blocks.push(r.u64()?);
    }
    Ok(InodeRecord {
        inode: Inode {
            ino,
            size,
            kind,
            link_count,
            mtime,
            heated,
            name,
            blocks,
        },
        inode_loc,
        indirect_loc,
    })
}

/// Splits a record into index-entry-sized chunks. Chunk 0 is prefixed
/// with the total chunk count.
pub(crate) fn chunk_record(record: &[u8]) -> Vec<Vec<u8>> {
    // Chunk 0 loses one byte to the count prefix; keep every chunk at
    // MAX_VALUE_BYTES or below.
    let first_payload = (MAX_VALUE_BYTES - 1).min(record.len());
    let rest = &record[first_payload..];
    let n_rest = rest.len().div_ceil(MAX_VALUE_BYTES);
    let total = 1 + n_rest;
    assert!(total <= MAX_RECORD_CHUNKS as usize, "record chunk overflow");
    let mut chunks = Vec::with_capacity(total);
    let mut first = Vec::with_capacity(1 + first_payload);
    first.push(total as u8);
    first.extend_from_slice(&record[..first_payload]);
    chunks.push(first);
    for part in rest.chunks(MAX_VALUE_BYTES) {
        chunks.push(part.to_vec());
    }
    chunks
}

/// Reassembles a record from chunk values fetched in chunk order. The
/// caller passes exactly the chunks announced by chunk 0's count byte.
pub(crate) fn assemble_record(chunks: &[Vec<u8>]) -> Result<Vec<u8>, FsError> {
    let first = chunks.first().ok_or_else(|| FsError::Corrupt {
        reason: "inode record has no chunk 0".to_string(),
    })?;
    let total = *first.first().ok_or_else(|| FsError::Corrupt {
        reason: "inode record chunk 0 is empty".to_string(),
    })? as usize;
    if total == 0 || total > MAX_RECORD_CHUNKS as usize || chunks.len() != total {
        return Err(FsError::Corrupt {
            reason: format!(
                "inode record announces {total} chunks, found {}",
                chunks.len()
            ),
        });
    }
    let mut out = first[1..].to_vec();
    for chunk in &chunks[1..] {
        out.extend_from_slice(chunk);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inode(blocks: usize) -> Inode {
        let mut inode = Inode::new(42, "audit/ledger-2008.db", FileKind::Regular);
        inode.size = (blocks * 512) as u64;
        inode.mtime = 77;
        inode.blocks = (1000..1000 + blocks as u64).collect();
        inode
    }

    #[test]
    fn record_round_trips_through_chunks() {
        for blocks in [0, 1, NDIRECT_PLUS] {
            let mut inode = sample_inode(blocks);
            if blocks > 0 {
                inode.heated = Some(Line::new(64, 3).unwrap());
            }
            let record = encode_record(&inode, Some(65), blocks.gt(&49).then_some(66));
            let chunks = chunk_record(&record);
            assert!(chunks.iter().all(|c| c.len() <= MAX_VALUE_BYTES));
            let assembled = assemble_record(&chunks).unwrap();
            assert_eq!(assembled, record);
            let decoded = decode_record(&assembled).unwrap();
            assert_eq!(decoded.inode, inode);
            assert_eq!(decoded.inode_loc, Some(65));
        }
    }
    const NDIRECT_PLUS: usize = MAX_BLOCKS;

    #[test]
    fn max_record_needs_at_most_three_chunks() {
        let mut inode = sample_inode(MAX_BLOCKS);
        inode.name = "n".repeat(MAX_NAME_BYTES);
        let record = encode_record(&inode, Some(u64::MAX - 1), Some(u64::MAX - 2));
        let chunks = chunk_record(&record);
        assert!(chunks.len() <= 3);
        assert!(chunks.len() < MAX_RECORD_CHUNKS as usize);
    }

    #[test]
    fn keys_are_ordered_and_bounded() {
        assert!(dir_key("a") < dir_key("b"));
        assert!(ino_key(1, 0) < ino_key(1, 1));
        assert!(
            ino_key(1, 255) < ino_key(2, 0),
            "BE inos keep chunks adjacent"
        );
        assert!(dir_key(&"x".repeat(MAX_NAME_BYTES)).len() <= sero_index::MAX_KEY_BYTES);
        assert_eq!(ino_key(7, 2).len(), 11);
    }

    #[test]
    fn corrupt_records_are_typed_errors() {
        let inode = sample_inode(3);
        let mut record = encode_record(&inode, None, None);
        assert!(decode_record(&record[..record.len() - 4]).is_err());
        record[16] = 9; // file kind byte
        assert!(matches!(
            decode_record(&record),
            Err(FsError::Corrupt { .. })
        ));
        assert!(assemble_record(&[]).is_err());
        assert!(assemble_record(&[vec![3, 0], vec![0]]).is_err());
    }
}
