//! fsck-style recovery of heated files from the bare medium.
//!
//! §5.2 of the paper: "Assume that the attacker clears the directory
//! structure, then a fsck style scan of the medium would definitely
//! recover (albeit slowly) all the heated files." This module is that
//! scan. It needs *no* checkpoint, no directory, and no in-memory state:
//! heated lines are found physically (their hash blocks are
//! self-describing), each line's second block is parsed as an inode (the
//! name is embedded there), and the data blocks are read back and
//! verified against the heated hash.
//!
//! # Examples
//!
//! ```
//! use sero_fs::fs::{FsConfig, SeroFs};
//! use sero_fs::alloc::WriteClass;
//! use sero_fs::fsck;
//! use sero_core::device::SeroDevice;
//!
//! let mut fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default())?;
//! fs.create("evidence.log", b"2008-01-01 transfer 1M", WriteClass::Archival)?;
//! fs.heat("evidence.log", vec![], 0)?;
//!
//! // The attacker destroys every mutable structure…
//! let mut dev = fs.into_device();
//! // …but the heated file is still recoverable, verified, by name.
//! let recovered = fsck::recover_heated_files(&mut dev)?;
//! assert_eq!(recovered.len(), 1);
//! assert_eq!(recovered[0].name, "evidence.log");
//! assert_eq!(recovered[0].data, b"2008-01-01 transfer 1M");
//! assert!(recovered[0].intact);
//! # Ok::<(), sero_fs::error::FsError>(())
//! ```

use crate::error::FsError;
use crate::inode::Inode;
use sero_core::device::{contiguous_runs, SeroDevice};
use sero_core::line::Line;
use sero_probe::sector::SECTOR_DATA_BYTES;

/// A heated file pulled off the bare medium.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredFile {
    /// Name embedded in the recovered inode.
    pub name: String,
    /// Inode number.
    pub ino: u64,
    /// File contents (truncated to the recorded size).
    pub data: Vec<u8>,
    /// The protecting line.
    pub line: Line,
    /// Whether the line verified intact against its heated hash.
    pub intact: bool,
}

/// Scans the whole device and recovers every heated file.
///
/// Lines that carry a valid hash payload but no parseable inode are
/// skipped (they may be application lines heated through the raw device
/// API rather than file-system files).
///
/// # Errors
///
/// Only infrastructure failures; unreadable data blocks mark the file
/// `intact = false` with whatever bytes could be salvaged.
pub fn recover_heated_files(dev: &mut SeroDevice) -> Result<Vec<RecoveredFile>, FsError> {
    dev.rebuild_registry().map_err(FsError::Device)?;
    let records: Vec<_> = dev.heated_lines().cloned().collect();
    let mut out = Vec::new();

    for record in records {
        let line = record.line;
        if line.data_len() < 1 {
            continue;
        }
        // Block start+1 should hold the inode.
        let inode_sector = match dev.probe_mut().mrs(line.start() + 1) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let (mut inode, indirect_ptr) = match Inode::decode(&inode_sector.data) {
            Ok(x) => x,
            Err(_) => continue, // not a file-system line
        };
        if let Some(ptr) = indirect_ptr {
            if let Ok(ind) = dev.probe_mut().mrs(ptr) {
                let total = (inode.size as usize).div_ceil(SECTOR_DATA_BYTES);
                let _ = inode.attach_indirect(&ind.data, total);
            }
        }

        // Heated file data is contiguous inside its line, so the raw reads
        // collapse into (usually) one extent transfer per file.
        let mut data = Vec::with_capacity(inode.blocks.len() * SECTOR_DATA_BYTES);
        let mut readable = true;
        for (start, count) in contiguous_runs(&inode.blocks) {
            // An out-of-range pointer in a crafted/damaged inode makes the
            // whole extent invalid — salvage what was read so far rather
            // than aborting the recovery of every other file.
            let extent = dev
                .probe_mut()
                .read_blocks_with(start, count, |_, sector| match sector {
                    Ok(sector) => {
                        data.extend_from_slice(&sector.data);
                        true
                    }
                    Err(_) => {
                        readable = false;
                        false
                    }
                });
            if extent.is_err() {
                readable = false;
            }
            if !readable {
                break;
            }
        }
        data.truncate(inode.size as usize);

        let intact = readable
            && dev
                .verify_line(line)
                .map(|o| o.is_intact())
                .unwrap_or(false);
        out.push(RecoveredFile {
            name: inode.name.clone(),
            ino: inode.ino,
            data,
            line,
            intact,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::WriteClass;
    use crate::fs::{FsConfig, SeroFs};
    use rand::SeedableRng;

    fn setup() -> SeroFs {
        SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default()).unwrap()
    }

    #[test]
    fn recovers_multiple_files_after_total_metadata_loss() {
        let mut fs = setup();
        for i in 0..3 {
            let name = format!("audit-{i}.log");
            let data = vec![i as u8 + 1; 700 + i * 512];
            fs.create(&name, &data, WriteClass::Archival).unwrap();
            fs.heat(&name, vec![], i as u64).unwrap();
        }
        fs.create("scratch", b"unheated", WriteClass::Normal)
            .unwrap();

        // Attacker wipes the checkpoint region.
        let mut dev = fs.into_device();
        for b in 0..16 {
            dev.probe_mut().mws(b, &[0u8; 512]).unwrap();
        }

        let mut recovered = recover_heated_files(&mut dev).unwrap();
        recovered.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(recovered.len(), 3, "only the heated files survive");
        for (i, r) in recovered.iter().enumerate() {
            assert_eq!(r.name, format!("audit-{i}.log"));
            assert_eq!(r.data, vec![i as u8 + 1; 700 + i * 512]);
            assert!(r.intact);
        }
    }

    #[test]
    fn recovery_flags_tampered_files() {
        let mut fs = setup();
        fs.create("ledger", &[7u8; 1024], WriteClass::Archival)
            .unwrap();
        let line = fs.heat("ledger", vec![], 0).unwrap();
        let mut dev = fs.into_device();
        // Attacker rewrites a protected data block through the raw device.
        dev.probe_mut().mws(line.start() + 2, &[0u8; 512]).unwrap();
        let recovered = recover_heated_files(&mut dev).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(!recovered[0].intact, "tampering must be flagged");
    }

    #[test]
    fn recovery_survives_bulk_erase() {
        // §5.2: bulk erasure clears magnetic data, so file *contents* are
        // gone — but the heated hash blocks still prove what existed.
        let mut fs = setup();
        fs.create("contract", &[3u8; 2048], WriteClass::Archival)
            .unwrap();
        fs.heat("contract", vec![], 0).unwrap();
        let mut dev = fs.into_device();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        dev.probe_mut().medium_mut().bulk_erase(&mut rng);

        let mut fresh = dev.clone();
        let scan = fresh.rebuild_registry().unwrap();
        assert_eq!(scan.lines_found, 1, "heated line still discoverable");
        // The recovered file will not verify (data destroyed), but the
        // evidence that a heated line existed is intact.
        let recovered = recover_heated_files(&mut fresh).unwrap();
        for r in &recovered {
            assert!(!r.intact);
        }
    }

    #[test]
    fn crafted_out_of_range_inode_does_not_abort_recovery() {
        // A real heated file plus a raw heated line whose "inode" block
        // carries pointers far outside the device. Recovery must salvage
        // the crafted entry as tampered (or skip it) without erroring, and
        // still return the real file intact.
        let mut fs = setup();
        fs.create("real.log", &[5u8; 1024], WriteClass::Archival)
            .unwrap();
        fs.heat("real.log", vec![], 0).unwrap();

        let line = sero_core::line::Line::new(256, 2).unwrap();
        for pba in line.data_blocks() {
            fs.device_mut().write_block(pba, &[0u8; 512]).unwrap();
        }
        let mut evil = Inode::new(77, "evil", crate::inode::FileKind::Regular);
        evil.size = 512;
        evil.blocks = vec![u64::MAX - 7];
        let (encoded, _) = evil.encode(None).unwrap();
        fs.device_mut()
            .write_block(line.start() + 1, &encoded)
            .unwrap();
        fs.device_mut().heat_line(line, vec![], 1).unwrap();

        let mut dev = fs.into_device();
        let recovered = recover_heated_files(&mut dev).unwrap();
        let real = recovered
            .iter()
            .find(|r| r.name == "real.log")
            .expect("real file recovered despite the crafted inode");
        assert!(real.intact);
        assert_eq!(real.data, vec![5u8; 1024]);
        if let Some(evil) = recovered.iter().find(|r| r.name == "evil") {
            assert!(!evil.intact, "out-of-range pointers cannot verify");
        }
    }

    #[test]
    fn non_fs_lines_skipped_gracefully() {
        let mut fs = setup();
        fs.create("file", b"data", WriteClass::Normal).unwrap();
        // Heat a raw device line that is not a file (no inode layout).
        let line = sero_core::line::Line::new(256, 2).unwrap();
        for pba in line.data_blocks() {
            fs.device_mut().write_block(pba, &[9u8; 512]).unwrap();
        }
        fs.device_mut().heat_line(line, vec![], 0).unwrap();
        let mut dev = fs.into_device();
        let recovered = recover_heated_files(&mut dev).unwrap();
        assert!(recovered.is_empty(), "raw lines are not files");
    }
}
