//! Inodes: one 512-byte block per file, with an optional indirect block.
//!
//! The inode embeds the file's *name* as well as its block pointers. The
//! name is redundant with the directory — deliberately so: §5.2 of the
//! paper argues that after an attacker "clears the directory structure, …
//! a fsck style scan of the medium would definitely recover (albeit
//! slowly) all the heated files". Our fsck does exactly that, and the
//! embedded name is what lets recovered files keep their identity.
//!
//! Heated files record their protecting line in the inode, so the verify
//! path needs no external index.
//!
//! # Examples
//!
//! ```
//! use sero_fs::inode::{FileKind, Inode};
//!
//! let inode = Inode::new(7, "ledger.db", FileKind::Regular);
//! let (main, indirect) = inode.encode(None)?;
//! let (decoded, indirect_ptr) = Inode::decode(&main)?;
//! assert_eq!(decoded.name, "ledger.db");
//! assert_eq!(indirect_ptr, None);
//! assert!(indirect.is_none());
//! # Ok::<(), sero_fs::error::FsError>(())
//! ```

use crate::error::FsError;
use sero_core::line::Line;
use sero_probe::sector::SECTOR_DATA_BYTES;

/// Inode magic ("SINO" in a hex dump).
pub const INODE_MAGIC: u32 = 0x53494E4F;

/// Maximum file-name bytes embedded in an inode.
pub const MAX_NAME_BYTES: usize = 64;

/// Direct block pointers per inode.
pub const NDIRECT: usize = 49;

/// Pointers in an indirect block.
pub const INDIRECT_PTRS: usize = SECTOR_DATA_BYTES / 8;

/// Maximum data blocks per file.
pub const MAX_BLOCKS: usize = NDIRECT + INDIRECT_PTRS;

/// Maximum file size in bytes.
pub const MAX_FILE_BYTES: usize = MAX_BLOCKS * SECTOR_DATA_BYTES;

/// What an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// An ordinary file.
    Regular,
    /// The directory file (reserved for future hierarchical layouts).
    Directory,
}

impl FileKind {
    fn to_byte(self) -> u8 {
        match self {
            FileKind::Regular => 1,
            FileKind::Directory => 2,
        }
    }

    fn from_byte(b: u8) -> Result<FileKind, FsError> {
        match b {
            1 => Ok(FileKind::Regular),
            2 => Ok(FileKind::Directory),
            other => Err(FsError::Corrupt {
                reason: format!("unknown file kind {other}"),
            }),
        }
    }
}

/// An in-memory inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number.
    pub ino: u64,
    /// File size in bytes.
    pub size: u64,
    /// File kind.
    pub kind: FileKind,
    /// Hard-link count (§5.2: `ln` on a heated file would have to bump
    /// this, which is tamper-evident).
    pub link_count: u16,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
    /// The protecting heated line, if the file has been heated.
    pub heated: Option<Line>,
    /// The file's name (embedded for fsck recovery).
    pub name: String,
    /// Data block addresses, in file order.
    pub blocks: Vec<u64>,
}

impl Inode {
    /// A fresh empty inode.
    pub fn new(ino: u64, name: &str, kind: FileKind) -> Inode {
        Inode {
            ino,
            size: 0,
            kind,
            link_count: 1,
            mtime: 0,
            heated: None,
            name: name.to_string(),
            blocks: Vec::new(),
        }
    }

    /// Number of 512-byte blocks the file occupies.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// True when the pointer list spills into an indirect block.
    pub fn needs_indirect(&self) -> bool {
        self.blocks.len() > NDIRECT
    }

    /// Serialises the inode. When [`Inode::needs_indirect`], the caller
    /// must supply the address where the indirect block will live, and the
    /// second returned sector holds the spilled pointers.
    ///
    /// # Errors
    ///
    /// [`FsError::BadName`] for empty/oversized names,
    /// [`FsError::FileTooLarge`] past [`MAX_BLOCKS`], and
    /// [`FsError::Corrupt`] when an indirect address is needed but missing.
    pub fn encode(
        &self,
        indirect_addr: Option<u64>,
    ) -> Result<([u8; SECTOR_DATA_BYTES], Option<[u8; SECTOR_DATA_BYTES]>), FsError> {
        let name_bytes = self.name.as_bytes();
        if name_bytes.is_empty() || name_bytes.len() > MAX_NAME_BYTES {
            return Err(FsError::BadName {
                name: self.name.clone(),
            });
        }
        if self.blocks.len() > MAX_BLOCKS {
            return Err(FsError::FileTooLarge {
                size: self.blocks.len() * SECTOR_DATA_BYTES,
                max: MAX_FILE_BYTES,
            });
        }
        if self.needs_indirect() && indirect_addr.is_none() {
            return Err(FsError::Corrupt {
                reason: "indirect block address required".to_string(),
            });
        }

        let mut main = [0u8; SECTOR_DATA_BYTES];
        let mut w = Writer::new(&mut main);
        w.u32(INODE_MAGIC);
        w.u64(self.ino);
        w.u64(self.size);
        w.u8(self.kind.to_byte());
        w.u16(self.link_count);
        w.u64(self.mtime);
        match self.heated {
            Some(line) => {
                w.u64(line.start());
                w.u8(line.order() as u8);
            }
            None => {
                w.u64(u64::MAX);
                w.u8(0);
            }
        }
        w.u8(name_bytes.len() as u8);
        w.bytes_padded(name_bytes, MAX_NAME_BYTES);
        w.u16(self.blocks.len() as u16);
        w.u64(if self.needs_indirect() {
            indirect_addr.unwrap_or(0)
        } else {
            0
        });
        for &b in self.blocks.iter().take(NDIRECT) {
            w.u64(b);
        }

        let indirect = if self.needs_indirect() {
            let mut ind = [0u8; SECTOR_DATA_BYTES];
            let mut wi = Writer::new(&mut ind);
            for &b in self.blocks.iter().skip(NDIRECT) {
                wi.u64(b);
            }
            Some(ind)
        } else {
            None
        };
        Ok((main, indirect))
    }

    /// Decodes an inode's main block. For files with indirect pointers the
    /// returned inode holds only the direct blocks; feed the indirect block
    /// to [`Inode::attach_indirect`]. The second value is the indirect
    /// block's address, when one exists.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] for bad magic, kinds, names, or lines.
    pub fn decode(main: &[u8; SECTOR_DATA_BYTES]) -> Result<(Inode, Option<u64>), FsError> {
        let mut r = Reader::new(main);
        if r.u32() != INODE_MAGIC {
            return Err(FsError::Corrupt {
                reason: "bad inode magic".to_string(),
            });
        }
        let ino = r.u64();
        let size = r.u64();
        let kind = FileKind::from_byte(r.u8())?;
        let link_count = r.u16();
        let mtime = r.u64();
        let heated_start = r.u64();
        let heated_order = r.u8();
        let heated = if heated_start == u64::MAX {
            None
        } else {
            Some(
                Line::new(heated_start, heated_order as u32).map_err(|e| FsError::Corrupt {
                    reason: format!("inode carries invalid line: {e}"),
                })?,
            )
        };
        let name_len = r.u8() as usize;
        if name_len == 0 || name_len > MAX_NAME_BYTES {
            return Err(FsError::Corrupt {
                reason: format!("bad inode name length {name_len}"),
            });
        }
        let name_raw = r.bytes(MAX_NAME_BYTES);
        let name =
            String::from_utf8(name_raw[..name_len].to_vec()).map_err(|_| FsError::Corrupt {
                reason: "inode name is not UTF-8".to_string(),
            })?;
        let n_blocks = r.u16() as usize;
        if n_blocks > MAX_BLOCKS {
            return Err(FsError::Corrupt {
                reason: format!("inode claims {n_blocks} blocks"),
            });
        }
        let indirect_ptr = r.u64();
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks.min(NDIRECT) {
            blocks.push(r.u64());
        }
        let inode = Inode {
            ino,
            size,
            kind,
            link_count,
            mtime,
            heated,
            name,
            blocks,
        };
        let needs = n_blocks > NDIRECT;
        Ok((inode, needs.then_some(indirect_ptr)))
    }

    /// Appends the pointers stored in an indirect block.
    ///
    /// `expected_total` is the block count recorded in the main inode.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the count disagrees.
    pub fn attach_indirect(
        &mut self,
        indirect: &[u8; SECTOR_DATA_BYTES],
        expected_total: usize,
    ) -> Result<(), FsError> {
        if expected_total > MAX_BLOCKS || expected_total < self.blocks.len() {
            return Err(FsError::Corrupt {
                reason: "inconsistent indirect block count".to_string(),
            });
        }
        let spill = expected_total - NDIRECT.min(self.blocks.len());
        let mut r = Reader::new(indirect);
        for _ in 0..spill {
            self.blocks.push(r.u64());
        }
        Ok(())
    }
}

struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    fn new(buf: &'a mut [u8]) -> Writer<'a> {
        Writer { buf, pos: 0 }
    }
    fn u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }
    fn u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }
    fn u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }
    fn u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }
    fn bytes_padded(&mut self, data: &[u8], width: usize) {
        self.buf[self.pos..self.pos + data.len()].copy_from_slice(data);
        self.pos += width;
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }
    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().expect("2"));
        self.pos += 2;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4"));
        self.pos += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8"));
        self.pos += 8;
        v
    }
    fn bytes(&mut self, n: usize) -> &'a [u8] {
        let v = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_file() {
        let mut inode = Inode::new(42, "report.txt", FileKind::Regular);
        inode.size = 1000;
        inode.mtime = 777;
        inode.blocks = vec![10, 11, 12];
        let (main, ind) = inode.encode(None).unwrap();
        assert!(ind.is_none());
        let (decoded, ptr) = Inode::decode(&main).unwrap();
        assert_eq!(ptr, None);
        assert_eq!(decoded, inode);
    }

    #[test]
    fn round_trip_heated_file() {
        let mut inode = Inode::new(7, "ledger", FileKind::Regular);
        inode.heated = Some(Line::new(64, 3).unwrap());
        inode.blocks = vec![66, 67];
        let (main, _) = inode.encode(None).unwrap();
        let (decoded, _) = Inode::decode(&main).unwrap();
        assert_eq!(decoded.heated, Some(Line::new(64, 3).unwrap()));
    }

    #[test]
    fn round_trip_indirect_file() {
        let mut inode = Inode::new(9, "big.bin", FileKind::Regular);
        inode.blocks = (100..100 + 80).collect();
        inode.size = 80 * 512;
        let (main, ind) = inode.encode(Some(5000)).unwrap();
        let ind = ind.expect("indirect block present");
        let (mut decoded, ptr) = Inode::decode(&main).unwrap();
        assert_eq!(ptr, Some(5000));
        assert_eq!(decoded.blocks.len(), NDIRECT);
        decoded.attach_indirect(&ind, 80).unwrap();
        assert_eq!(decoded.blocks, inode.blocks);
    }

    #[test]
    fn max_blocks_round_trip() {
        let mut inode = Inode::new(1, "max", FileKind::Regular);
        inode.blocks = (0..MAX_BLOCKS as u64).collect();
        let (main, ind) = inode.encode(Some(9)).unwrap();
        let (mut decoded, _) = Inode::decode(&main).unwrap();
        decoded.attach_indirect(&ind.unwrap(), MAX_BLOCKS).unwrap();
        assert_eq!(decoded.blocks.len(), MAX_BLOCKS);
    }

    #[test]
    fn too_many_blocks_rejected() {
        let mut inode = Inode::new(1, "huge", FileKind::Regular);
        inode.blocks = (0..MAX_BLOCKS as u64 + 1).collect();
        assert!(matches!(
            inode.encode(Some(9)),
            Err(FsError::FileTooLarge { .. })
        ));
    }

    #[test]
    fn indirect_without_address_rejected() {
        let mut inode = Inode::new(1, "big", FileKind::Regular);
        inode.blocks = (0..(NDIRECT as u64) + 1).collect();
        assert!(inode.encode(None).is_err());
    }

    #[test]
    fn bad_names_rejected() {
        let inode = Inode::new(1, "", FileKind::Regular);
        assert!(matches!(inode.encode(None), Err(FsError::BadName { .. })));
        let long = "x".repeat(MAX_NAME_BYTES + 1);
        let inode = Inode::new(1, &long, FileKind::Regular);
        assert!(inode.encode(None).is_err());
    }

    #[test]
    fn garbage_block_rejected() {
        let garbage = [0x5au8; SECTOR_DATA_BYTES];
        assert!(matches!(
            Inode::decode(&garbage),
            Err(FsError::Corrupt { .. })
        ));
    }

    #[test]
    fn directory_kind_round_trips() {
        let inode = Inode::new(0, "/", FileKind::Directory);
        let (main, _) = inode.encode(None).unwrap();
        let (decoded, _) = Inode::decode(&main).unwrap();
        assert_eq!(decoded.kind, FileKind::Directory);
    }

    #[test]
    fn utf8_names_round_trip() {
        let inode = Inode::new(3, "データ.db", FileKind::Regular);
        let (main, _) = inode.encode(None).unwrap();
        let (decoded, _) = Inode::decode(&main).unwrap();
        assert_eq!(decoded.name, "データ.db");
    }
}
