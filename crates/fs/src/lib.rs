//! SERO-aware log-structured file system — §4 of the FAST 2008 paper.
//!
//! The paper's file-system requirements, mapped to modules:
//!
//! | paper claim (§4) | module |
//! |---|---|
//! | cluster writes LFS-style; cluster heat-candidates for **bimodal** segments | [`alloc`] |
//! | heated lines are immovable; the cleaner skips heated segments | [`cleaner`] |
//! | heat a file in place, never copy it again | [`fs::SeroFs::heat`] |
//! | `rm`/`ln` on heated files is refused / tamper-evident | [`fs::SeroFs::remove`] |
//! | a cleared directory is recoverable by a medium scan | [`fsck`] |
//!
//! # Examples
//!
//! ```
//! use sero_fs::prelude::*;
//! use sero_core::device::SeroDevice;
//!
//! let mut fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default())?;
//! fs.create("wal.log", b"begin; commit;", WriteClass::Normal)?;
//! fs.write("wal.log", b"begin; commit; begin;", WriteClass::Normal)?;
//! assert_eq!(fs.read("wal.log")?.len(), 21);
//! # Ok::<(), sero_fs::error::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cleaner;
pub mod concurrent;
pub mod error;
pub mod fs;
pub mod fsck;
pub mod inode;
mod meta;
pub mod retention;
pub mod serve;

pub use concurrent::ConcurrentFs;
pub use error::FsError;
pub use fs::{FsConfig, SeroFs};

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::alloc::{ClusterPolicy, WriteClass};
    pub use crate::cleaner::CleanStats;
    pub use crate::concurrent::ConcurrentFs;
    pub use crate::error::FsError;
    pub use crate::fs::{FileInfo, FsConfig, FsStats, SeroFs};
    pub use crate::fsck::{recover_heated_files, RecoveredFile};
    pub use crate::inode::{FileKind, Inode};
}

#[cfg(test)]
mod tests {
    use crate::alloc::{ClusterPolicy, WriteClass};
    use crate::error::FsError;
    use crate::fs::{FsConfig, SeroFs};
    use sero_core::device::SeroDevice;

    fn fresh(blocks: u64) -> SeroFs {
        SeroFs::format(SeroDevice::with_blocks(blocks), FsConfig::default()).unwrap()
    }

    #[test]
    fn scrub_covers_all_heated_files_and_finds_tampering() {
        use sero_core::scrub::ScrubConfig;

        let mut fs = fresh(512);
        for i in 0..4 {
            let name = format!("ledger-{i}");
            fs.create(&name, &[i as u8 + 1; 1500], WriteClass::Archival)
                .unwrap();
            fs.heat(&name, vec![], i as u64).unwrap();
        }
        let report = fs.scrub(&ScrubConfig::with_workers(2)).unwrap();
        assert_eq!(report.summary.lines, 4);
        assert_eq!(report.summary.intact, 4);
        assert!(report.summary.is_clean());

        // An attacker rewrites one protected file's data through the raw
        // probe; the next scrub names the line.
        let line = fs.stat("ledger-2").unwrap().heated.unwrap();
        fs.device_mut()
            .probe_mut()
            .mws(line.start() + 2, &[0u8; 512])
            .unwrap();
        let report = fs.scrub(&ScrubConfig::with_workers(2)).unwrap();
        assert_eq!(report.summary.tampered, 1);
        assert_eq!(report.tampered_lines().next().unwrap().line, line);
    }

    #[test]
    fn remount_uses_incremental_registry_scan() {
        let mut fs = fresh(512);
        fs.create("frozen", &[9u8; 4000], WriteClass::Archival)
            .unwrap();
        fs.heat("frozen", vec![], 1).unwrap();
        fs.sync().unwrap();
        let dev = fs.into_device();
        // The registry survives in the device handed to mount, so the
        // incremental scan skips the heated line's blocks.
        let erb_before = dev.probe().counters().erb;
        let fs = SeroFs::mount(dev).unwrap();
        let rescan_cost = fs.device().probe().counters().erb - erb_before;

        // A cold mount (registry wiped) must scan everything.
        let mut cold_dev = fs.into_device();
        cold_dev.forget_registry();
        let erb_before = cold_dev.probe().counters().erb;
        let mut fs = SeroFs::mount(cold_dev).unwrap();
        let cold_cost = fs.device().probe().counters().erb - erb_before;
        assert!(
            rescan_cost < cold_cost,
            "incremental {rescan_cost} erb should beat cold {cold_cost} erb"
        );
        assert_eq!(fs.read("frozen").unwrap(), vec![9u8; 4000]);
        assert!(fs.verify("frozen").unwrap().is_intact());
    }

    #[test]
    fn incremental_scrub_chases_refused_writes_and_new_heats() {
        use sero_core::scrub::{ScrubConfig, ScrubMode};

        let mut fs = fresh(512);
        for i in 0..3 {
            let name = format!("vault-{i}");
            fs.create(&name, &[i as u8 + 1; 1200], WriteClass::Archival)
                .unwrap();
            fs.heat(&name, vec![], i as u64).unwrap();
        }
        let full = fs.scrub(&ScrubConfig::with_workers(2)).unwrap();
        assert_eq!((full.summary.lines, full.summary.epoch), (3, 1));

        // Quiet archive: the routine incremental pass verifies nothing.
        let idle = fs.scrub_incremental().unwrap();
        assert_eq!(idle.summary.mode, ScrubMode::Incremental);
        assert_eq!((idle.summary.lines, idle.summary.skipped), (0, 3));

        // A refused overwrite of a frozen file flags its line…
        assert!(matches!(
            fs.write("vault-1", b"rewrite", WriteClass::Normal),
            Err(FsError::ReadOnlyFile { .. })
        ));
        // …and a freshly heated file joins the delta.
        fs.create("new-vault", &[7u8; 800], WriteClass::Archival)
            .unwrap();
        fs.heat("new-vault", vec![], 9).unwrap();

        let delta = fs.scrub_incremental().unwrap();
        assert_eq!(delta.summary.lines, 2, "flagged + newly heated only");
        assert_eq!(delta.summary.skipped, 2);
        assert!(delta.summary.is_clean());
        let verified: Vec<_> = delta.outcomes.iter().map(|l| l.line).collect();
        assert!(verified.contains(&fs.stat("vault-1").unwrap().heated.unwrap()));
        assert!(verified.contains(&fs.stat("new-vault").unwrap().heated.unwrap()));
    }

    #[test]
    fn create_read_round_trip() {
        let mut fs = fresh(256);
        let data: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        fs.create("blob", &data, WriteClass::Normal).unwrap();
        assert_eq!(fs.read("blob").unwrap(), data);
        assert_eq!(fs.stat("blob").unwrap().size, 3000);
        assert_eq!(fs.stat("blob").unwrap().blocks, 6);
    }

    #[test]
    fn empty_file_round_trip() {
        let mut fs = fresh(256);
        fs.create("empty", b"", WriteClass::Normal).unwrap();
        assert_eq!(fs.read("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overwrite_updates_content_and_frees_blocks() {
        let mut fs = fresh(256);
        fs.create("f", &[1u8; 2048], WriteClass::Normal).unwrap();
        let free_before = fs.free_blocks();
        fs.write("f", &[2u8; 512], WriteClass::Normal).unwrap();
        assert_eq!(fs.read("f").unwrap(), vec![2u8; 512]);
        // Old blocks are dead, not free, until the cleaner runs.
        assert!(fs.free_blocks() < free_before);
        fs.run_cleaner(usize::MAX).unwrap();
        assert!(fs.free_blocks() >= free_before + 3);
    }

    #[test]
    fn duplicate_and_missing_names() {
        let mut fs = fresh(256);
        fs.create("a", b"1", WriteClass::Normal).unwrap();
        assert!(matches!(
            fs.create("a", b"2", WriteClass::Normal),
            Err(FsError::Exists { .. })
        ));
        assert!(matches!(fs.read("zzz"), Err(FsError::NotFound { .. })));
        assert!(matches!(
            fs.create("", b"", WriteClass::Normal),
            Err(FsError::BadName { .. })
        ));
    }

    #[test]
    fn remove_frees_space() {
        let mut fs = fresh(256);
        fs.create("tmp", &[1u8; 4096], WriteClass::Normal).unwrap();
        fs.remove("tmp").unwrap();
        assert!(!fs.exists("tmp"));
        assert!(matches!(fs.read("tmp"), Err(FsError::NotFound { .. })));
        fs.run_cleaner(usize::MAX).unwrap();
        assert_eq!(fs.stats().files_removed, 1);
    }

    #[test]
    fn heat_makes_file_immutable_and_verifiable() {
        let mut fs = fresh(256);
        fs.create("frozen", &[9u8; 1500], WriteClass::Archival)
            .unwrap();
        let line = fs.heat("frozen", b"case-41".to_vec(), 1234).unwrap();
        assert_eq!(fs.stat("frozen").unwrap().heated, Some(line));

        // Contents unchanged, still efficiently readable.
        assert_eq!(fs.read("frozen").unwrap(), vec![9u8; 1500]);

        // Immutable now.
        assert!(matches!(
            fs.write("frozen", b"x", WriteClass::Normal),
            Err(FsError::ReadOnlyFile { .. })
        ));
        assert!(matches!(
            fs.remove("frozen"),
            Err(FsError::ReadOnlyFile { .. })
        ));

        // Verifies intact; heat is idempotent.
        assert!(fs.verify("frozen").unwrap().is_intact());
        assert_eq!(fs.heat("frozen", vec![], 0).unwrap(), line);
    }

    #[test]
    fn verify_unheated_reports_not_heated() {
        let mut fs = fresh(256);
        fs.create("live", b"data", WriteClass::Normal).unwrap();
        assert!(matches!(
            fs.verify("live").unwrap(),
            sero_core::tamper::VerifyOutcome::NotHeated
        ));
    }

    #[test]
    fn heat_detects_subsequent_raw_tampering() {
        let mut fs = fresh(256);
        fs.create("books", &[4u8; 1024], WriteClass::Archival)
            .unwrap();
        let line = fs.heat("books", vec![], 0).unwrap();
        // The insider rewrites a protected block via the raw probe device.
        fs.device_mut()
            .probe_mut()
            .mws(line.start() + 2, &[0xEEu8; 512])
            .unwrap();
        let outcome = fs.verify("books").unwrap();
        assert!(outcome.is_tampered());
    }

    #[test]
    fn sync_and_mount_round_trip() {
        let mut fs = fresh(256);
        fs.create("a", &[1u8; 700], WriteClass::Normal).unwrap();
        fs.create("b", &[2u8; 100], WriteClass::Archival).unwrap();
        fs.heat("b", vec![], 77).unwrap();
        fs.sync().unwrap();

        let dev = fs.into_device();
        let mut fs2 = SeroFs::mount(dev).unwrap();
        let mut names = fs2.list();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(fs2.read("a").unwrap(), vec![1u8; 700]);
        assert_eq!(fs2.read("b").unwrap(), vec![2u8; 100]);
        assert!(fs2.stat("b").unwrap().heated.is_some());
        assert!(fs2.verify("b").unwrap().is_intact());
        // Heated file still immutable after remount.
        assert!(fs2.write("b", b"!", WriteClass::Normal).is_err());
    }

    #[test]
    fn mount_preserves_allocation_no_corruption_on_new_writes() {
        let mut fs = fresh(256);
        fs.create("old", &[5u8; 1024], WriteClass::Normal).unwrap();
        fs.sync().unwrap();
        let mut fs2 = SeroFs::mount(fs.into_device()).unwrap();
        fs2.create("new", &[6u8; 2048], WriteClass::Normal).unwrap();
        assert_eq!(fs2.read("old").unwrap(), vec![5u8; 1024]);
        assert_eq!(fs2.read("new").unwrap(), vec![6u8; 2048]);
    }

    #[test]
    fn indirect_files_survive_sync_mount() {
        let mut fs = fresh(512);
        let data: Vec<u8> = (0..60 * 512).map(|i| (i % 256) as u8).collect();
        fs.create("big", &data, WriteClass::Normal).unwrap();
        fs.sync().unwrap();
        let mut fs2 = SeroFs::mount(fs.into_device()).unwrap();
        assert_eq!(fs2.read("big").unwrap(), data);
    }

    #[test]
    fn heat_large_file_with_indirect_block() {
        let mut fs = fresh(512);
        let data: Vec<u8> = (0..55 * 512).map(|i| (i % 253) as u8).collect();
        fs.create("big", &data, WriteClass::Archival).unwrap();
        let line = fs.heat("big", vec![], 0).unwrap();
        assert!(line.len() >= 58);
        assert!(fs.verify("big").unwrap().is_intact());
        assert_eq!(fs.read("big").unwrap(), data);
    }

    #[test]
    fn cleaner_reclaims_dead_segments() {
        let mut fs = fresh(256);
        // Churn: create and delete to build garbage.
        for round in 0..6 {
            let name = format!("churn-{round}");
            fs.create(&name, &[round as u8; 4096], WriteClass::Normal)
                .unwrap();
        }
        for round in 0..6 {
            fs.remove(&format!("churn-{round}")).unwrap();
        }
        let stats = fs.run_cleaner(usize::MAX).unwrap();
        assert!(stats.blocks_reclaimed >= 48, "{stats:?}");
    }

    #[test]
    fn cleaner_compaction_preserves_data_under_space_pressure() {
        // Near-full device: interleave live files with garbage so the
        // cleaner must compact (move live blocks) with very few free
        // blocks available — the regime where an unclaimed planned target
        // could be handed out twice. Every surviving file must read back
        // byte-identical after repeated cleaning.
        let mut fs = fresh(128); // two 64-block segments, 16 checkpoint
        for i in 0..10 {
            fs.create(
                &format!("keep-{i}"),
                &[i as u8 + 1; 2048],
                WriteClass::Normal,
            )
            .unwrap();
            fs.create(&format!("gap-{i}"), &[0xEE; 2048], WriteClass::Normal)
                .unwrap();
            if i % 2 == 0 {
                fs.remove(&format!("gap-{i}")).unwrap();
            }
            let _ = fs.run_cleaner(usize::MAX);
            for j in 0..=i {
                assert_eq!(
                    fs.read(&format!("keep-{j}")).unwrap(),
                    vec![j as u8 + 1; 2048],
                    "keep-{j} corrupted after cleaning round {i}"
                );
            }
            if fs.free_blocks() < 16 {
                break;
            }
        }
    }

    #[test]
    fn failed_compaction_releases_claimed_targets() {
        use crate::alloc::BlockUse;

        // Build a victim segment with both garbage and live data, then
        // heat-damage every free block outside it so the first compaction
        // copy hits WriteDegraded. The cleaner must surface the error
        // without leaving phantom claimed targets behind.
        let mut fs = fresh(256);
        for i in 0..6 {
            fs.create(&format!("f{i}"), &[i as u8 + 1; 4096], WriteClass::Normal)
                .unwrap();
        }
        for i in 0..3 {
            fs.remove(&format!("f{i}")).unwrap();
        }
        let total = fs.device().block_count();
        for pba in 0..total {
            if fs.alloc.block_use(pba) == BlockUse::Free {
                let dot = fs.device().probe().block_first_dot(pba)
                    + sero_probe::sector::DATA_AREA_FIRST_DOT as u64;
                fs.device_mut().probe_mut().ewb(dot);
            }
        }

        let live_claims = |fs: &SeroFs| -> u64 {
            (0..total)
                .filter(|&b| fs.alloc.block_use(b).is_movable_live())
                .count() as u64
        };
        let referenced = |fs: &SeroFs| -> u64 {
            let data: usize = fs.inodes.values().map(|i| i.blocks.len()).sum();
            (data + fs.inode_loc.len() + fs.indirect_loc.len()) as u64
        };

        let before = live_claims(&fs);
        let result = fs.run_cleaner(usize::MAX);
        assert!(result.is_err(), "degraded targets must surface the error");
        assert_eq!(
            live_claims(&fs),
            before,
            "failed compaction leaked phantom claimed blocks"
        );
        assert_eq!(live_claims(&fs), referenced(&fs));
        // The live files are untouched.
        for i in 3..6 {
            assert_eq!(fs.read(&format!("f{i}")).unwrap(), vec![i as u8 + 1; 4096]);
        }
    }

    #[test]
    fn cleaner_leaves_in_flight_create_blocks_alone() {
        use crate::alloc::BlockUse;

        // Simulate the moment inside create(): a block is claimed as
        // Data{ino} but its inode is not inserted yet (and the block may
        // be unwritten). A cleaner pass over a dirty neighbourhood must
        // neither move nor free it.
        let mut fs = fresh(256);
        fs.create("real", &[7u8; 4096], WriteClass::Normal).unwrap();
        fs.create("garbage", &[0u8; 4096], WriteClass::Normal)
            .unwrap();
        fs.remove("garbage").unwrap();

        let orphan = fs.alloc.alloc_block(WriteClass::Normal).unwrap();
        fs.alloc.set_use(orphan, BlockUse::Data { ino: 4242 });

        fs.run_cleaner(usize::MAX).unwrap();
        assert_eq!(
            fs.alloc.block_use(orphan),
            BlockUse::Data { ino: 4242 },
            "in-flight block was moved or freed"
        );
        assert_eq!(fs.read("real").unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn cleaner_never_moves_heated_lines() {
        let mut fs = fresh(256);
        fs.create("pinned", &[1u8; 1024], WriteClass::Archival)
            .unwrap();
        let line = fs.heat("pinned", vec![], 0).unwrap();
        // Build and clear garbage around it.
        for i in 0..10 {
            fs.create(&format!("g{i}"), &[0u8; 2048], WriteClass::Normal)
                .unwrap();
        }
        for i in 0..10 {
            fs.remove(&format!("g{i}")).unwrap();
        }
        fs.run_cleaner(usize::MAX).unwrap();
        // The heated line is untouched and still verifies.
        assert_eq!(fs.stat("pinned").unwrap().heated, Some(line));
        assert!(fs.verify("pinned").unwrap().is_intact());
        assert_eq!(fs.read("pinned").unwrap(), vec![1u8; 1024]);
    }

    #[test]
    fn affinity_policy_yields_bimodal_segments() {
        // EXP-FS in miniature: interleave churn with archival heat under
        // both policies and compare segment purity.
        let score = |policy: ClusterPolicy| -> f64 {
            let mut fs = SeroFs::format(
                SeroDevice::with_blocks(1024),
                FsConfig {
                    segment_blocks: 64,
                    checkpoint_blocks: 16,
                    index_blocks: 0,
                    policy,
                },
            )
            .unwrap();
            for i in 0..8 {
                fs.create(&format!("live-{i}"), &[i as u8; 2048], WriteClass::Normal)
                    .unwrap();
                fs.create(&format!("arch-{i}"), &[i as u8; 1024], WriteClass::Archival)
                    .unwrap();
                fs.heat(&format!("arch-{i}"), vec![], i).unwrap();
                // Post-heat churn: live data keeps arriving, and under a
                // naive policy it lands next to the heated lines.
                fs.create(&format!("post-{i}"), &[i as u8; 2048], WriteClass::Normal)
                    .unwrap();
            }
            fs.bimodality_score()
        };
        let affinity = score(ClusterPolicy::HeatAffinity);
        let naive = score(ClusterPolicy::Naive);
        assert!(
            affinity >= naive,
            "affinity {affinity} should be at least as bimodal as naive {naive}"
        );
        assert!(
            affinity > 0.9,
            "affinity policy should keep heated segments pure: {affinity}"
        );
        assert!(naive < 0.5, "naive policy should mix segments: {naive}");
    }

    #[test]
    fn space_decreases_only_on_new_data_not_on_heat() {
        // §4.1 claim (2): "space decreases only if new data is written and
        // not when lines are heated" — modulo the hash+inode line overhead.
        let mut fs = fresh(256);
        fs.create("x", &[1u8; 4096], WriteClass::Archival).unwrap();
        fs.run_cleaner(usize::MAX).unwrap();
        let before = fs.free_blocks();
        fs.heat("x", vec![], 0).unwrap();
        fs.run_cleaner(usize::MAX).unwrap();
        let after = fs.free_blocks();
        // The 8-block data file moved into a 16-block line; net loss is
        // bounded by the line slack + hash + inode, not by a copy of the
        // whole file sticking around.
        assert!(
            before - after <= 8,
            "heat consumed {} blocks",
            before - after
        );
    }

    #[test]
    fn no_space_reported_when_full() {
        let mut fs = fresh(64); // one segment of 64 blocks, 16 checkpoint
        let r1 = fs.create("a", &[0u8; 30 * 512], WriteClass::Normal);
        assert!(r1.is_ok());
        let r2 = fs.create("b", &[0u8; 30 * 512], WriteClass::Normal);
        assert!(matches!(r2, Err(FsError::NoSpace { .. })), "{r2:?}");
    }
}
