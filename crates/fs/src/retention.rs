//! Retention management — §8 "Deletion".
//!
//! Heated data outlives every software delete, which collides with
//! regulated retention periods. The paper weighs three answers:
//!
//! 1. encrypt and discard keys — "vulnerable to attacks by a dishonest
//!    CEO" (a copied key defeats it), so not modelled as the primary path;
//! 2. a physical shred operation — implemented as
//!    [`sero_core::device::SeroDevice::shred_line`], equally CEO-vulnerable;
//! 3. **"We would advocate data to be segregated by expiry date, thus
//!    making it possible to take a device physically out of service."**
//!
//! [`RetentionPool`] implements option 3: one SERO file system per expiry
//! epoch. Records land on the device of their epoch and are heated there;
//! when an epoch expires, its *whole device* is decommissioned — the only
//! deletion that leaves nothing behind, because "the medium can safely be
//! decommissioned by the time all data has expired".
//!
//! # Examples
//!
//! ```
//! use sero_fs::retention::RetentionPool;
//!
//! let mut pool = RetentionPool::new(256);
//! pool.store("ledger-2008", b"rows...", 2015)?; // expires in 2015
//! pool.store("ledger-2009", b"rows...", 2016)?;
//! assert_eq!(pool.verify_epoch(2015)?, 1);
//! let report = pool.decommission(2015, 2016)?; // it is now 2016
//! assert_eq!(report.files_destroyed, 1);
//! assert!(pool.read("ledger-2008").is_err()); // physically gone
//! assert!(pool.read("ledger-2009").is_ok());
//! # Ok::<(), sero_fs::error::FsError>(())
//! ```

use crate::alloc::WriteClass;
use crate::error::FsError;
use crate::fs::{FsConfig, SeroFs};
use core::fmt;
use sero_core::device::SeroDevice;
use std::collections::BTreeMap;

/// Outcome of retiring an epoch's device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecommissionReport {
    /// The epoch retired.
    pub epoch: u64,
    /// Files that ceased to exist with the device.
    pub files_destroyed: usize,
    /// Heated lines that ceased to exist with the device.
    pub lines_destroyed: usize,
}

impl fmt::Display for DecommissionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {} decommissioned: {} file(s), {} heated line(s) destroyed with the medium",
            self.epoch, self.files_destroyed, self.lines_destroyed
        )
    }
}

/// A set of SERO file systems segregated by expiry epoch.
#[derive(Debug)]
pub struct RetentionPool {
    blocks_per_device: u64,
    epochs: BTreeMap<u64, SeroFs>,
    /// name → epoch directory, for cross-epoch lookup.
    names: BTreeMap<String, u64>,
}

impl RetentionPool {
    /// Creates a pool whose per-epoch devices have `blocks_per_device`
    /// blocks.
    pub fn new(blocks_per_device: u64) -> RetentionPool {
        RetentionPool {
            blocks_per_device,
            epochs: BTreeMap::new(),
            names: BTreeMap::new(),
        }
    }

    /// Epochs currently holding live devices.
    pub fn epochs(&self) -> Vec<u64> {
        self.epochs.keys().copied().collect()
    }

    /// Epochs whose retention period has passed at time `now`.
    pub fn expired(&self, now: u64) -> Vec<u64> {
        self.epochs.keys().copied().filter(|&e| e <= now).collect()
    }

    /// Stores and heats `data` under `name` on the device of
    /// `expiry_epoch`.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] for duplicate names (across all epochs — one
    /// namespace); file-system errors otherwise.
    pub fn store(&mut self, name: &str, data: &[u8], expiry_epoch: u64) -> Result<(), FsError> {
        if self.names.contains_key(name) {
            return Err(FsError::Exists {
                name: name.to_string(),
            });
        }
        let blocks = self.blocks_per_device;
        let fs = match self.epochs.entry(expiry_epoch) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => v.insert(SeroFs::format(
                SeroDevice::with_blocks(blocks),
                FsConfig::default(),
            )?),
        };
        fs.create(name, data, WriteClass::Archival)?;
        fs.heat(
            name,
            format!("expires {expiry_epoch}").into_bytes(),
            expiry_epoch,
        )?;
        self.names.insert(name.to_string(), expiry_epoch);
        Ok(())
    }

    /// Reads a record, wherever its epoch lives.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for unknown or decommissioned records.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let &epoch = self.names.get(name).ok_or_else(|| FsError::NotFound {
            name: name.to_string(),
        })?;
        let fs = self
            .epochs
            .get_mut(&epoch)
            .ok_or_else(|| FsError::NotFound {
                name: name.to_string(),
            })?;
        fs.read(name)
    }

    /// Verifies every heated record of `epoch`; returns how many are
    /// intact.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for unknown epochs.
    pub fn verify_epoch(&mut self, epoch: u64) -> Result<usize, FsError> {
        let fs = self
            .epochs
            .get_mut(&epoch)
            .ok_or_else(|| FsError::NotFound {
                name: format!("epoch {epoch}"),
            })?;
        let mut intact = 0;
        for name in fs.list() {
            if fs.verify(&name)?.is_intact() {
                intact += 1;
            }
        }
        Ok(intact)
    }

    /// Physically retires the device holding `epoch`. Refuses while the
    /// retention period still runs (`now < epoch`) — even the operator
    /// cannot shorten retention through this interface.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for unknown epochs; [`FsError::Corrupt`] when
    /// the epoch has not expired yet.
    pub fn decommission(&mut self, epoch: u64, now: u64) -> Result<DecommissionReport, FsError> {
        if !self.epochs.contains_key(&epoch) {
            return Err(FsError::NotFound {
                name: format!("epoch {epoch}"),
            });
        }
        if now < epoch {
            return Err(FsError::Corrupt {
                reason: format!(
                    "epoch {epoch} has not expired at {now}; retention forbids early destruction"
                ),
            });
        }
        let fs = self.epochs.remove(&epoch).expect("checked");
        let files: Vec<String> = fs.list();
        let lines = fs.device().stats().heated_lines;
        for name in &files {
            self.names.remove(name);
        }
        // Dropping `fs` drops the simulated medium: the shredder truck.
        Ok(DecommissionReport {
            epoch,
            files_destroyed: files.len(),
            lines_destroyed: lines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_segregate_by_epoch() {
        let mut pool = RetentionPool::new(256);
        pool.store("a-2015", b"a", 2015).unwrap();
        pool.store("b-2015", b"b", 2015).unwrap();
        pool.store("c-2020", b"c", 2020).unwrap();
        assert_eq!(pool.epochs(), vec![2015, 2020]);
        assert_eq!(pool.verify_epoch(2015).unwrap(), 2);
        assert_eq!(pool.verify_epoch(2020).unwrap(), 1);
        assert_eq!(pool.read("c-2020").unwrap(), b"c");
    }

    #[test]
    fn early_decommission_refused() {
        let mut pool = RetentionPool::new(256);
        pool.store("r", b"x", 2015).unwrap();
        assert!(pool.decommission(2015, 2014).is_err());
        assert_eq!(pool.read("r").unwrap(), b"x");
    }

    #[test]
    fn decommission_destroys_exactly_one_epoch() {
        let mut pool = RetentionPool::new(256);
        pool.store("old", b"old", 2010).unwrap();
        pool.store("new", b"new", 2030).unwrap();
        let report = pool.decommission(2010, 2020).unwrap();
        assert_eq!(report.files_destroyed, 1);
        assert_eq!(report.lines_destroyed, 1);
        assert!(matches!(pool.read("old"), Err(FsError::NotFound { .. })));
        assert_eq!(pool.read("new").unwrap(), b"new");
        assert_eq!(pool.expired(2020), Vec::<u64>::new());
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn duplicate_names_refused_across_epochs() {
        let mut pool = RetentionPool::new(256);
        pool.store("x", b"1", 2015).unwrap();
        assert!(matches!(
            pool.store("x", b"2", 2020),
            Err(FsError::Exists { .. })
        ));
    }

    #[test]
    fn stored_records_are_immediately_immutable() {
        let mut pool = RetentionPool::new(256);
        pool.store("rec", &vec![7u8; 2000], 2015).unwrap();
        let fs = pool.epochs.get_mut(&2015).unwrap();
        assert!(fs.write("rec", b"doctored", WriteClass::Normal).is_err());
        assert!(fs.remove("rec").is_err());
    }

    #[test]
    fn expired_lists_due_epochs() {
        let mut pool = RetentionPool::new(256);
        pool.store("a", b"a", 2010).unwrap();
        pool.store("b", b"b", 2020).unwrap();
        pool.store("c", b"c", 2030).unwrap();
        assert_eq!(pool.expired(2025), vec![2010, 2020]);
        assert_eq!(pool.expired(2005), Vec::<u64>::new());
    }
}
