//! The SERO log-structured file system.
//!
//! §4 of the paper asks "what properties a high performance,
//! tamper-evident file system should have so that it can serve a SERO
//! device" and answers with an LFS-style design: cluster writes, cluster
//! *heat-candidates*, never copy heated lines, and let the hash machinery
//! provide tamper evidence. [`SeroFs`] implements that design:
//!
//! * Files are written log-style into segments through the
//!   [`Allocator`]'s clustering policy.
//! * [`SeroFs::heat`] relocates a file into a fresh aligned line
//!   (hash ‖ inode ‖ data), heats it, and the file becomes immutable —
//!   its blocks can never again be moved, so placement happened exactly
//!   once, in the right place ("lines are heated in the right place,
//!   avoiding the need to copy them").
//! * The cleaner (see [`crate::cleaner`]) reclaims dead blocks but skips
//!   heated segments.
//! * A checkpoint region persists the directory and inode map;
//!   [`crate::fsck`] recovers heated files even with the checkpoint
//!   destroyed.
//!
//! # Examples
//!
//! ```
//! use sero_fs::fs::{FsConfig, SeroFs};
//! use sero_fs::alloc::WriteClass;
//! use sero_core::device::SeroDevice;
//!
//! let dev = SeroDevice::with_blocks(256);
//! let mut fs = SeroFs::format(dev, FsConfig::default())?;
//! fs.create("trial-balance.csv", b"assets,1000", WriteClass::Archival)?;
//! let line = fs.heat("trial-balance.csv", b"2008 audit".to_vec(), 0)?;
//! assert!(fs.verify("trial-balance.csv")?.is_intact());
//! assert_eq!(fs.read("trial-balance.csv")?, b"assets,1000");
//! assert!(line.len() >= 4);
//! # Ok::<(), sero_fs::error::FsError>(())
//! ```

use crate::alloc::{Allocator, BlockUse, ClusterPolicy, WriteClass};
use crate::error::FsError;
use crate::inode::{FileKind, Inode, MAX_BLOCKS, MAX_FILE_BYTES, MAX_NAME_BYTES, NDIRECT};
use sero_codec::crc32::crc32;
use sero_core::device::{LoadProbe, ScrubStateRestore, SeroDevice};
use sero_core::fleet::{
    FleetConfig, FleetMemberState, FleetProgress, FleetScheduler, FleetSliceOutcome,
};
use sero_core::line::{Line, MAX_ORDER};
use sero_core::sched::{
    SchedConfig, SchedProgress, SchedState, ScrubScheduler, SliceOutcome, SliceTrace,
};
use sero_core::scrub::{scrub_device, ScrubConfig, ScrubReport};
use sero_core::tamper::VerifyOutcome;
use sero_probe::sector::SECTOR_DATA_BYTES;
use std::collections::BTreeMap;

/// Checkpoint magic ("SCKP").
const CHECKPOINT_MAGIC: u32 = 0x53434B50;

/// File-system configuration, persisted in the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsConfig {
    /// Blocks per segment.
    pub segment_blocks: u64,
    /// Blocks reserved for the checkpoint (must fit one segment).
    pub checkpoint_blocks: u64,
    /// Allocation clustering policy.
    pub policy: ClusterPolicy,
}

impl Default for FsConfig {
    fn default() -> FsConfig {
        FsConfig {
            segment_blocks: 64,
            checkpoint_blocks: 16,
            policy: ClusterPolicy::HeatAffinity,
        }
    }
}

/// Aggregate operation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Files created.
    pub files_created: u64,
    /// Files removed.
    pub files_removed: u64,
    /// Data blocks written (excluding cleaner traffic).
    pub blocks_written: u64,
    /// Data blocks read.
    pub blocks_read: u64,
    /// Files heated.
    pub heats: u64,
    /// Cleaner invocations.
    pub cleaner_runs: u64,
    /// Live blocks the cleaner copied.
    pub cleaner_copied: u64,
    /// Dead blocks the cleaner reclaimed.
    pub cleaner_reclaimed: u64,
    /// Segments the cleaner skipped because heat pinned them.
    pub cleaner_skipped_heated: u64,
}

/// Metadata returned by [`SeroFs::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// Inode number.
    pub ino: u64,
    /// Size in bytes.
    pub size: u64,
    /// Protecting line, when heated.
    pub heated: Option<Line>,
    /// Number of data blocks.
    pub blocks: usize,
    /// Modification time.
    pub mtime: u64,
    /// True when the file system is in degraded mode (quarantined blocks
    /// on the device): reads and verification are served, writes refused.
    pub degraded: bool,
}

/// The SERO-aware log-structured file system.
#[derive(Debug, Clone)]
pub struct SeroFs {
    pub(crate) dev: SeroDevice,
    pub(crate) config: FsConfig,
    pub(crate) alloc: Allocator,
    pub(crate) inodes: BTreeMap<u64, Inode>,
    /// ino → block address of the inode's main block on the device.
    pub(crate) inode_loc: BTreeMap<u64, u64>,
    /// ino → block address of the inode's indirect block, if written.
    pub(crate) indirect_loc: BTreeMap<u64, u64>,
    pub(crate) directory: BTreeMap<String, u64>,
    pub(crate) next_ino: u64,
    pub(crate) stats: FsStats,
    /// What [`SeroFs::mount`] restored from the checkpoint's persisted
    /// scrub state (`None` for a freshly formatted fs or a v1 checkpoint).
    pub(crate) scrub_restore: Option<ScrubStateRestore>,
    /// The scrub pass driven through the command API
    /// ([`SeroFs::handle`](crate::serve)), when one has been started.
    pub(crate) service_scrub: Option<ScrubScheduler>,
}

impl SeroFs {
    /// Formats `dev` with a fresh, empty file system.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] for nonsensical configurations; device errors
    /// while writing the initial checkpoint.
    pub fn format(dev: SeroDevice, config: FsConfig) -> Result<SeroFs, FsError> {
        if config.segment_blocks == 0
            || dev.block_count() % config.segment_blocks != 0
            || config.checkpoint_blocks > config.segment_blocks
            || config.checkpoint_blocks == 0
        {
            return Err(FsError::Corrupt {
                reason: "configuration does not tile the device".to_string(),
            });
        }
        let alloc = Allocator::new(
            dev.block_count(),
            config.segment_blocks,
            config.checkpoint_blocks,
            config.policy,
        );
        let mut fs = SeroFs {
            dev,
            config,
            alloc,
            inodes: BTreeMap::new(),
            inode_loc: BTreeMap::new(),
            indirect_loc: BTreeMap::new(),
            directory: BTreeMap::new(),
            next_ino: 1,
            stats: FsStats::default(),
            scrub_restore: None,
            service_scrub: None,
        };
        fs.write_checkpoint()?;
        Ok(fs)
    }

    /// Mounts an existing file system, reconstructing all in-memory state
    /// from the checkpoint, the inode blocks, and a physical scan for
    /// heated lines.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the checkpoint or an inode fails to parse.
    pub fn mount(mut dev: SeroDevice) -> Result<SeroFs, FsError> {
        let (config, next_ino, inode_loc, directory, scrub_state) =
            Self::read_checkpoint(&mut dev)?;
        let mut alloc = Allocator::new(
            dev.block_count(),
            config.segment_blocks,
            config.checkpoint_blocks,
            config.policy,
        );

        // Physical truth first: rediscover heated lines. The incremental
        // path skips blocks of lines the registry already knows, so a
        // remount of a long-lived device scans only the WMRM remainder.
        dev.refresh_registry()?;
        let records: Vec<_> = dev.heated_lines().cloned().collect();
        for record in &records {
            alloc.pin_line(record.line);
            alloc.set_use(record.line.hash_block(), BlockUse::HashBlock);
        }

        // Restore the persisted scrub bookkeeping (checkpoint v2): the
        // rediscovered lines start with `verified_epoch == 0`, which would
        // force the next incremental scrub into a full pass; the imported
        // state marks everything the last completed pass covered, so a
        // remount resumes with the same delta it had before detach. A
        // record that fails validation (e.g. written by a newer format
        // version) is "no usable state", never a mount failure — the data
        // stays accessible and the next pass simply runs full.
        let scrub_restore = scrub_state.and_then(|state| dev.import_scrub_state(&state).ok());

        // Load inodes and mark their blocks.
        let mut inodes = BTreeMap::new();
        let mut indirect_loc = BTreeMap::new();
        for (&ino, &block) in &inode_loc {
            let sector = dev.probe_mut().mrs(block).map_err(|e| FsError::Corrupt {
                reason: format!("inode block {block} unreadable: {e}"),
            })?;
            let (mut inode, indirect_ptr) = Inode::decode(&sector.data)?;
            let total = {
                // decode() returns direct prefix only; recover the count.
                let declared = inode.blocks.len();
                if let Some(ptr) = indirect_ptr {
                    // re-read count from size? The encoding stores n_blocks
                    // explicitly; decode kept only the direct prefix, so
                    // fetch the indirect block and extend.
                    let ind = dev.probe_mut().mrs(ptr).map_err(|e| FsError::Corrupt {
                        reason: format!("indirect block {ptr} unreadable: {e}"),
                    })?;
                    let n = (inode.size as usize).div_ceil(SECTOR_DATA_BYTES);
                    inode.attach_indirect(&ind.data, n)?;
                    indirect_loc.insert(ino, ptr);
                    alloc.set_use(ptr, BlockUse::Indirect { ino });
                    n
                } else {
                    declared
                }
            };
            debug_assert_eq!(inode.blocks.len(), total.max(inode.blocks.len()));
            alloc.set_use(block, BlockUse::InodeBlock { ino });
            for &b in &inode.blocks {
                alloc.set_use(b, BlockUse::Data { ino });
            }
            inodes.insert(ino, inode);
        }

        Ok(SeroFs {
            dev,
            config,
            alloc,
            inodes,
            inode_loc,
            indirect_loc,
            directory,
            next_ino,
            stats: FsStats::default(),
            scrub_restore,
            service_scrub: None,
        })
    }

    // --- accessors --------------------------------------------------------

    /// The underlying SERO device.
    pub fn device(&self) -> &SeroDevice {
        &self.dev
    }

    /// Mutable device access — the §5 threat model's raw interface, for
    /// attack drills and experiments only. Application code should go
    /// through the typed operations or the [`SeroFs::handle`] command
    /// API; mutating the device underneath the file system bypasses
    /// allocator and directory bookkeeping (that being the point, for
    /// attack modelling).
    pub fn device_mut(&mut self) -> &mut SeroDevice {
        &mut self.dev
    }

    /// Consumes the file system, returning the device (for remount tests).
    pub fn into_device(self) -> SeroDevice {
        self.dev
    }

    /// Operation statistics.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> FsConfig {
        self.config
    }

    /// Free blocks available for new data.
    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }

    /// Names of all files.
    pub fn list(&self) -> Vec<String> {
        self.directory.keys().cloned().collect()
    }

    /// True when `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.directory.contains_key(name)
    }

    /// Per-segment heated fractions — the §4.1 bimodality measurement.
    pub fn segment_heated_fractions(&self) -> Vec<f64> {
        self.alloc
            .segments()
            .iter()
            .map(|s| s.heated_fraction())
            .collect()
    }

    /// Number of segments containing at least one heated block.
    pub fn heat_touched_segments(&self) -> usize {
        self.alloc
            .segments()
            .iter()
            .filter(|s| s.heated > 0)
            .count()
    }

    /// Number of *mixed* segments: segments carrying both heated lines and
    /// live rewritable data. Mixed segments are what defeat the paper's
    /// bimodality — the cleaner must visit them for their live data yet can
    /// never fully reclaim them.
    pub fn mixed_segments(&self) -> usize {
        self.alloc
            .segments()
            .iter()
            .filter(|s| s.heated > 0 && s.live > 0)
            .count()
    }

    /// Bimodality score in [0, 1]: the fraction of heat-touched segments
    /// that are *pure* (no live rewritable data alongside the heat). 1.0
    /// is the paper's ideal — "only mostly heated segments and mostly
    /// unheated segments".
    pub fn bimodality_score(&self) -> f64 {
        let touched = self.heat_touched_segments();
        if touched == 0 {
            return 1.0;
        }
        1.0 - self.mixed_segments() as f64 / touched as f64
    }

    /// Live movable blocks currently sitting in heat-touched segments.
    /// This is exactly the traffic the cleaner will eventually have to
    /// copy *because* heat and live data share segments — the bandwidth
    /// §4.1's bimodality is designed to save.
    pub fn stranded_live_blocks(&self) -> u64 {
        self.alloc
            .segments()
            .iter()
            .filter(|s| s.heated > 0)
            .map(|s| s.live)
            .sum()
    }

    /// Metadata for `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn stat(&self, name: &str) -> Result<FileInfo, FsError> {
        let inode = self.lookup(name)?;
        Ok(FileInfo {
            ino: inode.ino,
            size: inode.size,
            heated: inode.heated,
            blocks: inode.blocks.len(),
            mtime: inode.mtime,
            degraded: self.is_degraded(),
        })
    }

    /// True when the underlying device has quarantined blocks. In
    /// degraded mode the file system keeps serving reads, `stat`, `list`,
    /// `verify`, and scrubs, but refuses mutating operations with
    /// [`FsError::Degraded`] — an archive that can no longer write
    /// trustworthily must stay readable and auditable, never wedge.
    pub fn is_degraded(&self) -> bool {
        self.dev.is_degraded()
    }

    fn check_degraded(&mut self) -> Result<(), FsError> {
        if self.dev.is_degraded() {
            return Err(FsError::Degraded {
                quarantined_blocks: self.dev.quarantined_count(),
            });
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<&Inode, FsError> {
        let ino = self.directory.get(name).ok_or_else(|| FsError::NotFound {
            name: name.to_string(),
        })?;
        self.inodes.get(ino).ok_or_else(|| FsError::Corrupt {
            reason: format!("directory names ino {ino} with no inode"),
        })
    }

    // --- data path ---------------------------------------------------------

    fn alloc_block_or_clean(&mut self, class: WriteClass) -> Result<u64, FsError> {
        if let Some(b) = self.alloc.alloc_block(class) {
            return Ok(b);
        }
        self.run_cleaner(usize::MAX)?;
        self.alloc.alloc_block(class).ok_or(FsError::NoSpace {
            needed: 1,
            free: self.alloc.free_blocks(),
        })
    }

    fn write_data_blocks(
        &mut self,
        data: &[u8],
        class: WriteClass,
        ino: u64,
    ) -> Result<Vec<u64>, FsError> {
        let n = data.len().div_ceil(SECTOR_DATA_BYTES).max(1);
        // Allocate (and claim) all targets first, then push the data
        // through the batch write path: the allocator clusters, so most
        // files land as one or two contiguous extents and pay one seek
        // each. Claiming at allocation time matters — an unclaimed block
        // is still `Free` to the allocator's wrap-around sweep.
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let block = self.alloc_block_or_clean(class)?;
            self.alloc.set_use(block, BlockUse::Data { ino });
            blocks.push(block);
        }
        let mut sectors = Vec::with_capacity(n);
        for chunk_idx in 0..n {
            let mut sector = [0u8; SECTOR_DATA_BYTES];
            let from = chunk_idx * SECTOR_DATA_BYTES;
            let to = ((chunk_idx + 1) * SECTOR_DATA_BYTES).min(data.len());
            if from < data.len() {
                sector[..to - from].copy_from_slice(&data[from..to]);
            }
            sectors.push(sector);
        }
        self.dev.write_blocks(&blocks, &sectors)?;
        self.stats.blocks_written += n as u64;
        Ok(blocks)
    }

    /// Creates `name` with `data`, using `class` as the §4.1 clustering
    /// hint, and returns the inode number.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`], [`FsError::BadName`],
    /// [`FsError::FileTooLarge`], [`FsError::NoSpace`], device errors.
    pub fn create(&mut self, name: &str, data: &[u8], class: WriteClass) -> Result<u64, FsError> {
        self.check_degraded()?;
        if name.is_empty() || name.len() > MAX_NAME_BYTES {
            return Err(FsError::BadName {
                name: name.to_string(),
            });
        }
        if self.directory.contains_key(name) {
            return Err(FsError::Exists {
                name: name.to_string(),
            });
        }
        if data.len() > MAX_FILE_BYTES {
            return Err(FsError::FileTooLarge {
                size: data.len(),
                max: MAX_FILE_BYTES,
            });
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        let blocks = self.write_data_blocks(data, class, ino)?;
        let mut inode = Inode::new(ino, name, FileKind::Regular);
        inode.size = data.len() as u64;
        inode.blocks = blocks;
        self.inodes.insert(ino, inode);
        self.directory.insert(name.to_string(), ino);
        self.stats.files_created += 1;
        Ok(ino)
    }

    /// Reads the full contents of `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`]; device errors (an unreadable block of a
    /// heated file is tamper evidence — surfaced by [`SeroFs::verify`]).
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let (blocks, size) = {
            let inode = self.lookup(name)?;
            (inode.blocks.clone(), inode.size as usize)
        };
        let sectors = self.dev.read_blocks(&blocks)?;
        self.stats.blocks_read += blocks.len() as u64;
        let mut out = Vec::with_capacity(blocks.len() * SECTOR_DATA_BYTES);
        for sector in &sectors {
            out.extend_from_slice(sector);
        }
        out.truncate(size);
        Ok(out)
    }

    /// Overwrites `name` with `data`.
    ///
    /// # Errors
    ///
    /// [`FsError::ReadOnlyFile`] for heated files — "once an area has been
    /// heated, it can no longer be rewritten with impunity" (§8). The
    /// refused line is flagged on the device so the next incremental scrub
    /// re-verifies it: an overwrite attempt on frozen data is exactly the
    /// activity a scrub should chase.
    pub fn write(&mut self, name: &str, data: &[u8], class: WriteClass) -> Result<(), FsError> {
        self.check_degraded()?;
        let ino = {
            let inode = self.lookup(name)?;
            if let Some(line) = inode.heated {
                self.dev.flag_line(line);
                return Err(FsError::ReadOnlyFile {
                    name: name.to_string(),
                    line,
                });
            }
            inode.ino
        };
        if data.len() > MAX_FILE_BYTES {
            return Err(FsError::FileTooLarge {
                size: data.len(),
                max: MAX_FILE_BYTES,
            });
        }
        let new_blocks = self.write_data_blocks(data, class, ino)?;
        let inode = self.inodes.get_mut(&ino).expect("looked up");
        let old_blocks = std::mem::replace(&mut inode.blocks, new_blocks);
        inode.size = data.len() as u64;
        inode.mtime += 1;
        for b in old_blocks {
            self.alloc.set_use(b, BlockUse::Dead);
        }
        Ok(())
    }

    /// Removes `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::ReadOnlyFile`] for heated files: §5.2 — `rm` "implies
    /// writing the inode, which will be tamper-evident", so the protocol
    /// refuses outright and flags the line for the next incremental scrub.
    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        self.check_degraded()?;
        let ino = {
            let inode = self.lookup(name)?;
            if let Some(line) = inode.heated {
                self.dev.flag_line(line);
                return Err(FsError::ReadOnlyFile {
                    name: name.to_string(),
                    line,
                });
            }
            inode.ino
        };
        let inode = self.inodes.remove(&ino).expect("looked up");
        for b in inode.blocks {
            self.alloc.set_use(b, BlockUse::Dead);
        }
        if let Some(loc) = self.inode_loc.remove(&ino) {
            self.alloc.set_use(loc, BlockUse::Dead);
        }
        if let Some(loc) = self.indirect_loc.remove(&ino) {
            self.alloc.set_use(loc, BlockUse::Dead);
        }
        self.directory.remove(name);
        self.stats.files_removed += 1;
        Ok(())
    }

    // --- heat & verify ------------------------------------------------------

    /// Heats `name`: relocates the file into a fresh aligned line laid out
    /// as `hash ‖ inode ‖ [indirect] ‖ data`, heats the line, and marks the
    /// file immutable. Returns the line. Idempotent for already-heated
    /// files.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when no aligned line can be found even after
    /// cleaning; device errors from the heat protocol.
    pub fn heat(&mut self, name: &str, metadata: Vec<u8>, timestamp: u64) -> Result<Line, FsError> {
        let ino = {
            let inode = self.lookup(name)?;
            if let Some(line) = inode.heated {
                return Ok(line); // idempotent (and safe while degraded)
            }
            inode.ino
        };
        self.check_degraded()?;
        let (old_blocks, size, needs_indirect) = {
            let inode = &self.inodes[&ino];
            (
                inode.blocks.clone(),
                inode.size,
                inode.blocks.len() > NDIRECT,
            )
        };

        // Line layout: hash + inode + (indirect) + data.
        let total = 2 + needs_indirect as u64 + old_blocks.len() as u64;
        let order = (64 - (total - 1).leading_zeros()).max(1);
        if order > MAX_ORDER {
            return Err(FsError::FileTooLarge {
                size: size as usize,
                max: MAX_FILE_BYTES,
            });
        }
        let line = match self.alloc.alloc_line(order, WriteClass::Archival) {
            Some(l) => l,
            None => {
                self.run_cleaner(usize::MAX)?;
                self.alloc
                    .alloc_line(order, WriteClass::Archival)
                    .ok_or(FsError::NoSpace {
                        needed: 1 << order,
                        free: self.alloc.free_blocks(),
                    })?
            }
        };

        // Copy data into the line: batch-read the scattered source blocks,
        // batch-write the contiguous target extent.
        let inode_block = line.start() + 1;
        let indirect_block = needs_indirect.then_some(line.start() + 2);
        let data_start = line.start() + 2 + needs_indirect as u64;
        let contents = self.dev.read_blocks(&old_blocks)?;
        let new_blocks: Vec<u64> = (0..old_blocks.len() as u64)
            .map(|i| data_start + i)
            .collect();
        self.dev.write_blocks(&new_blocks, &contents)?;
        for &target in &new_blocks {
            self.alloc.set_use(target, BlockUse::Data { ino });
        }

        // Zero-fill the line's slack: the heat operation hashes every
        // block of the line, so all of them must be formatted. Slack
        // blocks are pinned by the heat and never allocatable again.
        let slack: Vec<u64> = (data_start + old_blocks.len() as u64..line.end()).collect();
        self.dev
            .write_blocks(&slack, &vec![[0u8; SECTOR_DATA_BYTES]; slack.len()])?;
        for &block in &slack {
            self.alloc.set_use(block, BlockUse::Dead);
        }

        // Write the updated inode inside the line.
        {
            let inode = self.inodes.get_mut(&ino).expect("looked up");
            inode.blocks = new_blocks;
            inode.heated = Some(line);
        }
        let inode = &self.inodes[&ino];
        let (main, indirect) = inode.encode(indirect_block)?;
        self.dev.write_block(inode_block, &main)?;
        self.alloc
            .set_use(inode_block, BlockUse::InodeBlock { ino });
        if let (Some(ind_data), Some(ind_block)) = (indirect, indirect_block) {
            self.dev.write_block(ind_block, &ind_data)?;
            self.alloc.set_use(ind_block, BlockUse::Indirect { ino });
        }

        // Burn the hash.
        self.dev.heat_line(line, metadata, timestamp)?;
        self.alloc.pin_line(line);
        self.alloc.set_use(line.hash_block(), BlockUse::HashBlock);

        // Retire the old copies and stale locations.
        for b in old_blocks {
            self.alloc.set_use(b, BlockUse::Dead);
        }
        if let Some(loc) = self.inode_loc.insert(ino, inode_block) {
            self.alloc.set_use(loc, BlockUse::Dead);
        }
        if let Some(old) = self.indirect_loc.remove(&ino) {
            self.alloc.set_use(old, BlockUse::Dead);
        }
        if let Some(ind) = indirect_block {
            self.indirect_loc.insert(ino, ind);
        }
        self.stats.heats += 1;
        Ok(line)
    }

    /// Verifies the heated line protecting `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`]; [`FsError::ReadOnlyFile`] is *not* an error
    /// here — unheated files simply return
    /// [`VerifyOutcome::NotHeated`].
    pub fn verify(&mut self, name: &str) -> Result<VerifyOutcome, FsError> {
        let line = match self.lookup(name)?.heated {
            Some(line) => line,
            None => return Ok(VerifyOutcome::NotHeated),
        };
        Ok(self.dev.verify_line(line)?)
    }

    /// Scrubs the whole device: verifies every heated line (files and raw
    /// application lines alike), sharded over parallel workers — the §5.2
    /// fsck argument made routine. Pass a [`ScrubConfig`] in
    /// [`ScrubMode::Incremental`](sero_core::scrub::ScrubMode::Incremental)
    /// to verify only the delta since the last completed pass (lines
    /// heated since then, plus lines flagged by tamper evidence or refused
    /// writes). See [`sero_core::scrub`] for the model and the report
    /// shape.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// report.
    pub fn scrub(&mut self, config: &ScrubConfig) -> Result<ScrubReport, FsError> {
        Ok(scrub_device(&mut self.dev, config)?)
    }

    /// Convenience for routine background verification under live traffic:
    /// an incremental [`SeroFs::scrub`] with the default worker count and
    /// full-pass fallback cadence.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// report.
    pub fn scrub_incremental(&mut self) -> Result<ScrubReport, FsError> {
        self.scrub(&ScrubConfig::incremental(0))
    }

    /// What [`SeroFs::mount`] restored from the checkpoint's persisted
    /// scrub state: `None` for a freshly formatted fs (or a pre-v2
    /// checkpoint), otherwise the restore counts. When lines were
    /// restored, the next [`SeroFs::scrub_incremental`] verifies only the
    /// pre-detach delta instead of falling back to a full pass.
    pub fn scrub_restore(&self) -> Option<ScrubStateRestore> {
        self.scrub_restore
    }

    /// Starts a background scrub pass over the device and returns its
    /// handle. The pass runs *cooperatively*: it makes progress only when
    /// the caller grants it a slice via [`BackgroundScrub::tick`] —
    /// typically between foreground requests — and each slice is bounded
    /// by the [`SchedConfig`] device-time budget, so foreground reads and
    /// writes preempt the scrub at every slice boundary. Pause, resume,
    /// cancel, and progress live on the handle.
    ///
    /// Call [`SeroFs::sync`] after the pass completes to persist the
    /// advanced epochs into the checkpoint; see [`sero_core::sched`] for
    /// the scheduling model.
    #[must_use = "the returned handle owns the pass; dropping it silently abandons the scrub"]
    pub fn scrub_background(&mut self, config: SchedConfig) -> BackgroundScrub {
        BackgroundScrub {
            sched: ScrubScheduler::start(&self.dev, config),
        }
    }

    /// Starts a coordinated background scrub across a *fleet* of mounted
    /// file systems and returns its handle. Passes are staggered (at most
    /// [`FleetConfig::max_concurrent`] at once), share one global
    /// device-time budget re-divided from each device's measured idle
    /// time, and suspicion-first ordering admits file systems whose
    /// devices carry flagged lines before clean peers — see
    /// [`sero_core::fleet`] for the model. `fses` order defines the
    /// member indices; pass the same slice (same order) to every
    /// [`FleetScrub::tick`].
    ///
    /// Call [`SeroFs::sync`] on each file system after its pass
    /// completes to persist the advanced epochs into its checkpoint.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] for degenerate fleet knobs (zero quantum or
    /// zero global budget).
    #[must_use = "the returned handle owns the fleet pass; dropping it silently abandons the scrub"]
    pub fn fleet_scrub(fses: &[SeroFs], config: FleetConfig) -> Result<FleetScrub, FsError> {
        let sched = FleetScheduler::start(fses.iter().map(|f| &f.dev), config).map_err(|e| {
            FsError::Corrupt {
                reason: format!("fleet scrub config rejected: {e}"),
            }
        })?;
        Ok(FleetScrub { sched })
    }

    // --- checkpoint ----------------------------------------------------------

    /// Flushes dirty inodes to the log and writes the checkpoint.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the namespace outgrows the checkpoint
    /// region; device errors.
    pub fn sync(&mut self) -> Result<(), FsError> {
        // Write every unheated inode that has no on-device home (or whose
        // cached home is stale). Heated inodes already live in their lines.
        let inos: Vec<u64> = self.inodes.keys().copied().collect();
        for ino in inos {
            let inode = &self.inodes[&ino];
            if inode.heated.is_some() && self.inode_loc.contains_key(&ino) {
                continue;
            }
            let needs_indirect = inode.blocks.len() > NDIRECT;
            let ind_block = if needs_indirect {
                Some(match self.indirect_loc.get(&ino) {
                    Some(&b) => b,
                    None => self.alloc_block_or_clean(WriteClass::Normal)?,
                })
            } else {
                None
            };
            let inode = &self.inodes[&ino];
            let (main, indirect) = inode.encode(ind_block)?;
            let main_block = match self.inode_loc.get(&ino) {
                Some(&b) if !self.alloc.is_heated(b) => b,
                _ => self.alloc_block_or_clean(WriteClass::Normal)?,
            };
            self.dev.write_block(main_block, &main)?;
            self.alloc.set_use(main_block, BlockUse::InodeBlock { ino });
            self.inode_loc.insert(ino, main_block);
            if let (Some(data), Some(block)) = (indirect, ind_block) {
                self.dev.write_block(block, &data)?;
                self.alloc.set_use(block, BlockUse::Indirect { ino });
                self.indirect_loc.insert(ino, block);
            }
        }
        self.write_checkpoint()
    }

    fn write_checkpoint(&mut self) -> Result<(), FsError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        buf.extend_from_slice(&[2u8]); // version: 2 adds the scrub-state section
        buf.extend_from_slice(&self.config.segment_blocks.to_le_bytes());
        buf.extend_from_slice(&self.config.checkpoint_blocks.to_le_bytes());
        buf.push(match self.config.policy {
            ClusterPolicy::HeatAffinity => 1,
            ClusterPolicy::Naive => 2,
        });
        buf.extend_from_slice(&self.next_ino.to_le_bytes());
        buf.extend_from_slice(&(self.inode_loc.len() as u32).to_le_bytes());
        for (&ino, &block) in &self.inode_loc {
            buf.extend_from_slice(&ino.to_le_bytes());
            buf.extend_from_slice(&block.to_le_bytes());
        }
        buf.extend_from_slice(&(self.directory.len() as u32).to_le_bytes());
        for (name, &ino) in &self.directory {
            buf.extend_from_slice(&ino.to_le_bytes());
            buf.push(name.len() as u8);
            buf.extend_from_slice(name.as_bytes());
        }
        // v2: the device's scrub bookkeeping rides the checkpoint, so a
        // remount resumes incremental scrubbing instead of a full pass.
        // The export is capped to whatever headroom the fixed checkpoint
        // region has left after the namespace — under pressure it drops
        // records (those lines just re-verify next pass) rather than
        // pushing the checkpoint past its region and failing sync.
        let capacity = (self.config.checkpoint_blocks as usize) * SECTOR_DATA_BYTES - 8;
        let scrub_budget = capacity.saturating_sub(buf.len() + 4 + 4);
        let scrub_state = self.dev.export_scrub_state_capped(scrub_budget);
        buf.extend_from_slice(&(scrub_state.len() as u32).to_le_bytes());
        buf.extend_from_slice(&scrub_state);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());

        if buf.len() > capacity {
            return Err(FsError::Corrupt {
                reason: format!(
                    "checkpoint of {} bytes exceeds region of {capacity} bytes",
                    buf.len()
                ),
            });
        }

        // Prefix with total length, then chunk into the region.
        let mut framed = Vec::with_capacity(buf.len() + 8);
        framed.extend_from_slice(&(buf.len() as u64).to_le_bytes());
        framed.extend_from_slice(&buf);
        for (i, chunk) in framed.chunks(SECTOR_DATA_BYTES).enumerate() {
            let mut sector = [0u8; SECTOR_DATA_BYTES];
            sector[..chunk.len()].copy_from_slice(chunk);
            self.dev.write_block(i as u64, &sector)?;
        }
        Ok(())
    }

    #[allow(clippy::type_complexity)]
    fn read_checkpoint(
        dev: &mut SeroDevice,
    ) -> Result<
        (
            FsConfig,
            u64,
            BTreeMap<u64, u64>,
            BTreeMap<String, u64>,
            Option<Vec<u8>>,
        ),
        FsError,
    > {
        let first = dev.read_block(0)?;
        let total = u64::from_le_bytes(first[..8].try_into().expect("8")) as usize;
        let mut framed = first[8..].to_vec();
        let mut next_block = 1u64;
        while framed.len() < total {
            framed.extend_from_slice(&dev.read_block(next_block)?);
            next_block += 1;
        }
        framed.truncate(total);
        let buf = framed;
        if buf.len() < 4 + 1 + 8 + 8 + 1 + 8 + 4 + 4 + 4 {
            return Err(FsError::Corrupt {
                reason: "checkpoint too short".to_string(),
            });
        }
        let stored_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4"));
        let body = &buf[..buf.len() - 4];
        if crc32(body) != stored_crc {
            return Err(FsError::Corrupt {
                reason: "checkpoint crc mismatch".to_string(),
            });
        }
        let mut pos = 0usize;
        let magic = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4"));
        pos += 4;
        if magic != CHECKPOINT_MAGIC {
            return Err(FsError::Corrupt {
                reason: "bad checkpoint magic".to_string(),
            });
        }
        let version = body[pos];
        if !(1..=2).contains(&version) {
            return Err(FsError::Corrupt {
                reason: format!("unknown checkpoint version {version}"),
            });
        }
        pos += 1;
        let segment_blocks = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
        pos += 8;
        let checkpoint_blocks = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
        pos += 8;
        let policy = match body[pos] {
            1 => ClusterPolicy::HeatAffinity,
            2 => ClusterPolicy::Naive,
            other => {
                return Err(FsError::Corrupt {
                    reason: format!("unknown policy byte {other}"),
                })
            }
        };
        pos += 1;
        let next_ino = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
        pos += 8;
        let n_inodes = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
        pos += 4;
        let mut inode_loc = BTreeMap::new();
        for _ in 0..n_inodes {
            let ino = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
            pos += 8;
            let block = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
            pos += 8;
            inode_loc.insert(ino, block);
        }
        let n_dirents = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
        pos += 4;
        let mut directory = BTreeMap::new();
        for _ in 0..n_dirents {
            let ino = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
            pos += 8;
            let len = body[pos] as usize;
            pos += 1;
            let name =
                String::from_utf8(body[pos..pos + len].to_vec()).map_err(|_| FsError::Corrupt {
                    reason: "directory name not UTF-8".to_string(),
                })?;
            pos += len;
            directory.insert(name, ino);
        }
        // v1 checkpoints predate persisted scrub state; their remounts
        // simply start unverified (full pass), exactly as before.
        let scrub_state = if version >= 2 {
            if pos + 4 > body.len() {
                return Err(FsError::Corrupt {
                    reason: "checkpoint scrub-state section truncated".to_string(),
                });
            }
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
            pos += 4;
            if pos + len > body.len() {
                return Err(FsError::Corrupt {
                    reason: "checkpoint scrub-state section truncated".to_string(),
                });
            }
            Some(body[pos..pos + len].to_vec())
        } else {
            None
        };
        Ok((
            FsConfig {
                segment_blocks,
                checkpoint_blocks,
                policy,
            },
            next_ino,
            inode_loc,
            directory,
            scrub_state,
        ))
    }

    /// Number of data blocks a file of `bytes` occupies (helper for sizing
    /// experiments).
    pub fn blocks_for(bytes: usize) -> usize {
        bytes.div_ceil(SECTOR_DATA_BYTES).clamp(1, MAX_BLOCKS)
    }
}

/// Handle to a background scrub pass started with
/// [`SeroFs::scrub_background`].
///
/// The handle owns the pass; the file system stays fully usable while it
/// is alive. Interleave foreground operations with
/// [`BackgroundScrub::tick`] calls and the pass drains in budget-bounded
/// slices:
///
/// ```
/// use sero_core::device::SeroDevice;
/// use sero_core::sched::SchedConfig;
/// use sero_fs::alloc::WriteClass;
/// use sero_fs::fs::{FsConfig, SeroFs};
///
/// let mut fs = SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default())?;
/// fs.create("ledger.csv", b"assets,1000", WriteClass::Archival)?;
/// fs.heat("ledger.csv", vec![], 0)?;
///
/// let mut scrub = fs.scrub_background(SchedConfig::default());
/// while !scrub.is_complete() {
///     // … serve foreground traffic here …
///     fs.read("ledger.csv")?;
///     scrub.tick(&mut fs)?; // grant the scrub one bounded slice
/// }
/// assert!(scrub.report().summary.is_clean());
/// fs.sync()?; // persist the advanced epochs into the checkpoint
/// # Ok::<(), sero_fs::error::FsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BackgroundScrub {
    sched: ScrubScheduler,
}

impl BackgroundScrub {
    /// Grants the pass one slice of device time on `fs`'s device (a no-op
    /// when paused, throttled, cancelled, or complete). See
    /// [`sero_core::sched::ScrubScheduler::run_slice`].
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// report.
    pub fn tick(&mut self, fs: &mut SeroFs) -> Result<SliceOutcome, FsError> {
        Ok(self.sched.run_slice(&mut fs.dev)?)
    }

    /// Pauses the pass between slices.
    pub fn pause(&mut self) {
        self.sched.pause();
    }

    /// Resumes a paused pass.
    pub fn resume(&mut self) {
        self.sched.resume();
    }

    /// Cancels the pass. The device's completed-pass epoch stays
    /// untouched — the unverified remainder is due in the next pass.
    pub fn cancel(&mut self) {
        self.sched.cancel();
    }

    /// Lifecycle state.
    pub fn state(&self) -> SchedState {
        self.sched.state()
    }

    /// True once the pass completed and the epoch advanced.
    pub fn is_complete(&self) -> bool {
        self.sched.is_complete()
    }

    /// Point-in-time progress counters.
    pub fn progress(&self) -> SchedProgress {
        self.sched.progress()
    }

    /// The scheduler trace: one record per slice run so far.
    pub fn trace(&self) -> &[SliceTrace] {
        self.sched.trace()
    }

    /// The pass outcomes so far as a [`ScrubReport`] (partial until
    /// complete).
    pub fn report(&self) -> ScrubReport {
        self.sched.report()
    }

    /// The underlying scheduler, for scheduling-level introspection.
    pub fn scheduler(&self) -> &ScrubScheduler {
        &self.sched
    }
}

/// Handle to a fleet-wide background scrub started with
/// [`SeroFs::fleet_scrub`].
///
/// The handle owns the fleet pass state; the file systems stay with the
/// caller and remain fully usable. Interleave foreground operations with
/// [`FleetScrub::tick`] (whole fleet, one slice per member in priority
/// order) or [`FleetScrub::tick_member`] (one file system's gap in its
/// own request loop, after a [`FleetScrub::retune`]):
///
/// ```
/// use sero_core::device::SeroDevice;
/// use sero_core::fleet::FleetConfig;
/// use sero_fs::alloc::WriteClass;
/// use sero_fs::fs::{FsConfig, SeroFs};
///
/// let mut fleet: Vec<SeroFs> = (0..2)
///     .map(|i| {
///         let mut fs =
///             SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default()).unwrap();
///         fs.create("ledger.csv", &[i as u8; 2000], WriteClass::Archival)?;
///         fs.heat("ledger.csv", vec![], 0)?;
///         Ok(fs)
///     })
///     .collect::<Result<_, sero_fs::error::FsError>>()?;
///
/// let mut scrub = SeroFs::fleet_scrub(&fleet, FleetConfig::default())?;
/// scrub.run_to_completion(&mut fleet)?;
/// assert!(scrub.is_complete());
/// for fs in &mut fleet {
///     assert_eq!(fs.device().scrub_epoch(), 1);
///     fs.sync()?; // persist the advanced epochs
/// }
/// # Ok::<(), sero_fs::error::FsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetScrub {
    sched: FleetScheduler,
}

impl FleetScrub {
    /// One fleet round over all members: samples every device's load
    /// probe, re-divides the global budget, then grants each member one
    /// slice in priority order. `fses` must be the fleet passed to
    /// [`SeroFs::fleet_scrub`], in the same order.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// member reports.
    pub fn tick(
        &mut self,
        fses: &mut [SeroFs],
    ) -> Result<Vec<(usize, FleetSliceOutcome)>, FsError> {
        assert_eq!(
            fses.len(),
            self.sched.len(),
            "tick needs the full fleet in start order"
        );
        self.retune(fses);
        let order = self.sched.priority_order().to_vec();
        let mut outcomes = Vec::with_capacity(order.len());
        for i in order {
            outcomes.push((i, self.sched.tick_member(i, &mut fses[i].dev)?));
        }
        Ok(outcomes)
    }

    /// Grants member `idx` one slice on its own file system — the shape a
    /// per-fs request loop wants: retune once per round, then tick each
    /// member in the idle gap of its own traffic.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only.
    pub fn tick_member(
        &mut self,
        idx: usize,
        fs: &mut SeroFs,
    ) -> Result<FleetSliceOutcome, FsError> {
        Ok(self.sched.tick_member(idx, &mut fs.dev)?)
    }

    /// Re-divides the global budget from the fleet's current load probes
    /// (called automatically by [`FleetScrub::tick`]).
    pub fn retune(&mut self, fses: &[SeroFs]) {
        let loads: Vec<LoadProbe> = fses.iter().map(|f| *f.dev.load_probe()).collect();
        self.sched.retune(&loads);
    }

    /// Drives the fleet to completion on otherwise-idle file systems,
    /// idling throttled or starved devices forward on their own clocks.
    ///
    /// # Errors
    ///
    /// Infrastructure failures from any member slice.
    pub fn run_to_completion(&mut self, fses: &mut [SeroFs]) -> Result<(), FsError> {
        let quantum = self.sched.config().quantum_ns;
        let mut guard = 0usize;
        while !self.is_complete() {
            guard += 1;
            assert!(guard < 1_000_000, "fleet scrub failed to converge");
            let mut progressed = false;
            for (i, outcome) in self.tick(fses)? {
                match outcome {
                    FleetSliceOutcome::Ran { .. } => progressed = true,
                    FleetSliceOutcome::Throttled { resume_at_ns } => {
                        let dev = fses[i].device_mut();
                        let now = dev.probe().clock().elapsed_ns();
                        if resume_at_ns > now {
                            dev.probe_mut().advance_clock((resume_at_ns - now) as u64);
                        }
                        progressed = true;
                    }
                    FleetSliceOutcome::Starved => {
                        fses[i].device_mut().probe_mut().advance_clock(quantum);
                        progressed = true;
                    }
                    FleetSliceOutcome::Waiting
                    | FleetSliceOutcome::Paused
                    | FleetSliceOutcome::Idle => {}
                }
            }
            if !progressed {
                return Ok(()); // everything left is paused
            }
        }
        Ok(())
    }

    /// Pauses member `idx` between slices.
    pub fn pause(&mut self, idx: usize) {
        self.sched.pause(idx);
    }

    /// Resumes a paused member.
    pub fn resume(&mut self, idx: usize) {
        self.sched.resume(idx);
    }

    /// Cancels member `idx`'s pass; its device's completed-pass epoch
    /// stays untouched and its slot frees for the next pending member.
    pub fn cancel(&mut self, idx: usize) {
        self.sched.cancel(idx);
    }

    /// True once every member completed or was cancelled.
    pub fn is_complete(&self) -> bool {
        self.sched.is_complete()
    }

    /// Lifecycle state of member `idx`.
    pub fn member_state(&self, idx: usize) -> FleetMemberState {
        self.sched.member_state(idx)
    }

    /// Fleet-wide progress totals.
    pub fn progress(&self) -> FleetProgress {
        self.sched.progress()
    }

    /// The pass report of member `idx` (`None` until admitted).
    pub fn member_report(&self, idx: usize) -> Option<ScrubReport> {
        self.sched.member_report(idx)
    }

    /// Member indices in pass-completion order.
    pub fn completion_order(&self) -> &[usize] {
        self.sched.completion_order()
    }

    /// The underlying fleet scheduler, for scheduling-level
    /// introspection (grants, priority order, peak concurrency).
    pub fn scheduler(&self) -> &FleetScheduler {
        &self.sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_core::scrub::ScrubMode;

    fn populated_fs() -> SeroFs {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::default()).unwrap();
        for i in 0..6 {
            let name = format!("frozen-{i}");
            fs.create(&name, &vec![i as u8; 3000], WriteClass::Archival)
                .unwrap();
            fs.heat(&name, vec![], 100 + i as u64).unwrap();
        }
        for i in 0..3 {
            fs.create(
                &format!("hot-{i}"),
                &vec![0xA0 + i; 2000],
                WriteClass::Normal,
            )
            .unwrap();
        }
        fs
    }

    #[test]
    fn background_scrub_interleaves_with_foreground_traffic() {
        let mut fs = populated_fs();
        let mut scrub = fs.scrub_background(SchedConfig::slice_budget(1_000_000).unwrap());
        let mut foreground_ops = 0;
        while !scrub.is_complete() {
            // Foreground keeps reading and rewriting between slices.
            fs.read("frozen-2").unwrap();
            fs.write(
                "hot-1",
                &vec![foreground_ops as u8; 2000],
                WriteClass::Normal,
            )
            .unwrap();
            foreground_ops += 1;
            scrub.tick(&mut fs).unwrap();
            assert!(foreground_ops < 1000, "scrub never completed");
        }
        let report = scrub.report();
        assert_eq!(report.summary.lines, 6);
        assert!(report.summary.is_clean());
        assert!(
            scrub.trace().len() > 1,
            "budget should force several slices"
        );
        assert_eq!(fs.device().scrub_epoch(), 1);
    }

    #[test]
    fn remount_restores_persisted_epochs_for_incremental_scrub() {
        let mut fs = populated_fs();
        // Complete a pass in the background, then persist via sync.
        let mut scrub = fs.scrub_background(SchedConfig::greedy());
        while !scrub.is_complete() {
            scrub.tick(&mut fs).unwrap();
        }
        // A post-pass delta: one new heated file, one refused write.
        fs.create("late", &[9u8; 3000], WriteClass::Archival)
            .unwrap();
        let late_line = fs.heat("late", vec![], 999).unwrap();
        let frozen_line = fs.stat("frozen-4").unwrap().heated.unwrap();
        assert!(fs
            .write("frozen-4", b"rewrite history", WriteClass::Normal)
            .is_err());
        fs.sync().unwrap();

        // Detach: drop all volatile state, remount from the bare device.
        let mut dev = fs.into_device();
        dev.forget_registry();
        let mut fs = SeroFs::mount(dev).unwrap();
        let restore = fs.scrub_restore().expect("v2 checkpoint carries state");
        // Six verified lines restored (the flagged one among them); the
        // late line's all-default record is not exported at all.
        assert_eq!(restore.restored, 6);
        assert_eq!((restore.stale, restore.unknown), (0, 0));

        // The remounted incremental pass covers exactly the pre-detach
        // delta — no full-pass fallback.
        let report = fs.scrub_incremental().unwrap();
        assert_eq!(report.summary.mode, ScrubMode::Incremental);
        assert_eq!(report.summary.lines, 2);
        assert_eq!(report.summary.skipped, 5);
        let verified: Vec<Line> = report.outcomes.iter().map(|o| o.line).collect();
        assert!(verified.contains(&late_line));
        assert!(verified.contains(&frozen_line));
    }

    #[test]
    fn fleet_scrub_covers_every_member_with_identical_evidence() {
        let mut fleet: Vec<SeroFs> = (0..3).map(|_| populated_fs()).collect();
        // Tamper one device behind the protocol's back; flag it via a
        // refused write so suspicion-first ordering sees it.
        let victim_line = fleet[2].stat("frozen-1").unwrap().heated.unwrap();
        fleet[2]
            .device_mut()
            .probe_mut()
            .mws(victim_line.start() + 2, &[0xEE; 512])
            .unwrap();
        assert!(fleet[2]
            .write("frozen-1", b"rewrite", WriteClass::Normal)
            .is_err());

        let exclusive: Vec<_> = fleet
            .clone()
            .iter_mut()
            .map(|fs| fs.scrub(&ScrubConfig::with_workers(1)).unwrap())
            .collect();

        let config = sero_core::fleet::FleetConfig {
            max_concurrent: 2,
            ..sero_core::fleet::FleetConfig::default()
        };
        let mut scrub = SeroFs::fleet_scrub(&fleet, config).unwrap();
        scrub.run_to_completion(&mut fleet).unwrap();
        assert!(scrub.is_complete());
        assert_eq!(
            scrub.completion_order()[0],
            2,
            "suspicious member's pass finishes first"
        );
        assert!(scrub.scheduler().peak_active() <= 2);
        for (i, expected) in exclusive.iter().enumerate() {
            let report = scrub.member_report(i).unwrap();
            assert_eq!(report.outcomes, expected.outcomes, "member {i}");
            assert_eq!(fleet[i].device().scrub_epoch(), 1);
        }
        assert_eq!(scrub.progress().tampered, 1);

        // Epochs persist per member through the usual sync path.
        for fs in &mut fleet {
            fs.sync().unwrap();
        }
    }

    #[test]
    fn fleet_scrub_rejects_degenerate_config() {
        let fleet = [populated_fs()];
        let bad = sero_core::fleet::FleetConfig {
            quantum_ns: 0,
            ..sero_core::fleet::FleetConfig::default()
        };
        assert!(matches!(
            SeroFs::fleet_scrub(&fleet, bad),
            Err(FsError::Corrupt { .. })
        ));
    }

    #[test]
    fn cancelled_background_pass_keeps_fs_consistent() {
        let mut fs = populated_fs();
        let mut scrub = fs.scrub_background(SchedConfig::slice_budget(1).unwrap());
        scrub.tick(&mut fs).unwrap();
        scrub.cancel();
        assert_eq!(scrub.state(), SchedState::Cancelled);
        assert_eq!(fs.device().scrub_epoch(), 0, "no completed pass");
        // A later exclusive scrub covers everything.
        let report = fs.scrub(&ScrubConfig::default()).unwrap();
        assert_eq!(report.summary.lines, 6);
    }
}
