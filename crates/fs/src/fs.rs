//! The SERO log-structured file system.
//!
//! §4 of the paper asks "what properties a high performance,
//! tamper-evident file system should have so that it can serve a SERO
//! device" and answers with an LFS-style design: cluster writes, cluster
//! *heat-candidates*, never copy heated lines, and let the hash machinery
//! provide tamper evidence. [`SeroFs`] implements that design:
//!
//! * Files are written log-style into segments through the
//!   [`Allocator`]'s clustering policy.
//! * [`SeroFs::heat`] relocates a file into a fresh aligned line
//!   (hash ‖ inode ‖ data), heats it, and the file becomes immutable —
//!   its blocks can never again be moved, so placement happened exactly
//!   once, in the right place ("lines are heated in the right place,
//!   avoiding the need to copy them").
//! * The cleaner (see [`crate::cleaner`]) reclaims dead blocks but skips
//!   heated segments.
//! * A checkpoint region persists the directory and inode map;
//!   [`crate::fsck`] recovers heated files even with the checkpoint
//!   destroyed.
//!
//! # Examples
//!
//! ```
//! use sero_fs::fs::{FsConfig, SeroFs};
//! use sero_fs::alloc::WriteClass;
//! use sero_core::device::SeroDevice;
//!
//! let dev = SeroDevice::with_blocks(256);
//! let mut fs = SeroFs::format(dev, FsConfig::default())?;
//! fs.create("trial-balance.csv", b"assets,1000", WriteClass::Archival)?;
//! let line = fs.heat("trial-balance.csv", b"2008 audit".to_vec(), 0)?;
//! assert!(fs.verify("trial-balance.csv")?.is_intact());
//! assert_eq!(fs.read("trial-balance.csv")?, b"assets,1000");
//! assert!(line.len() >= 4);
//! # Ok::<(), sero_fs::error::FsError>(())
//! ```

use crate::alloc::{Allocator, BlockUse, ClusterPolicy, WriteClass};
use crate::error::FsError;
use crate::inode::{FileKind, Inode, MAX_BLOCKS, MAX_FILE_BYTES, MAX_NAME_BYTES, NDIRECT};
use crate::meta;
use sero_codec::crc32::crc32;
use sero_core::device::{LoadProbe, ScrubStateRestore, SeroDevice};
use sero_core::fleet::{
    FleetConfig, FleetMemberState, FleetProgress, FleetScheduler, FleetSliceOutcome,
};
use sero_core::journal::{JournalError, WmrmRegion};
use sero_core::line::{Line, MAX_ORDER};
use sero_core::sched::{
    SchedConfig, SchedProgress, SchedState, ScrubScheduler, SliceOutcome, SliceTrace,
};
use sero_core::scrub::{scrub_device, ScrubConfig, ScrubReport};
use sero_core::tamper::VerifyOutcome;
use sero_index::{
    BlockStore, IndexError, IndexGeometry, IndexStats, MetaIndex, OpenReport, PAGE_BYTES,
};
use sero_probe::sector::SECTOR_DATA_BYTES;
use std::collections::{BTreeMap, BTreeSet};

/// Checkpoint magic ("SCKP").
const CHECKPOINT_MAGIC: u32 = 0x53434B50;

// One index page maps onto one device sector.
const _: () = assert!(PAGE_BYTES == SECTOR_DATA_BYTES);

/// File-system configuration, persisted in the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsConfig {
    /// Blocks per segment.
    pub segment_blocks: u64,
    /// Blocks reserved for the checkpoint (must fit one segment).
    pub checkpoint_blocks: u64,
    /// Blocks reserved, immediately after the checkpoint, for the LSM
    /// metadata index. `0` disables the index: the directory and inode
    /// map then live in the checkpoint itself (the legacy v2 layout),
    /// which caps the namespace at what `checkpoint_blocks` can hold.
    pub index_blocks: u64,
    /// Allocation clustering policy.
    pub policy: ClusterPolicy,
}

impl Default for FsConfig {
    fn default() -> FsConfig {
        FsConfig {
            segment_blocks: 64,
            checkpoint_blocks: 16,
            index_blocks: 0,
            policy: ClusterPolicy::HeatAffinity,
        }
    }
}

impl FsConfig {
    /// The default configuration with the metadata index enabled: the
    /// rest of segment 0 (48 blocks) becomes the index region, the
    /// checkpoint shrinks to superblock-scale state, and the namespace
    /// is no longer bounded by `checkpoint_blocks`. Size `index_blocks`
    /// up for large devices — the region must hold every directory
    /// entry and inode record.
    pub fn indexed() -> FsConfig {
        FsConfig {
            index_blocks: 48,
            ..FsConfig::default()
        }
    }
}

/// Aggregate operation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Files created.
    pub files_created: u64,
    /// Files removed.
    pub files_removed: u64,
    /// Data blocks written (excluding cleaner traffic).
    pub blocks_written: u64,
    /// Data blocks read.
    pub blocks_read: u64,
    /// Files heated.
    pub heats: u64,
    /// Cleaner invocations.
    pub cleaner_runs: u64,
    /// Live blocks the cleaner copied.
    pub cleaner_copied: u64,
    /// Dead blocks the cleaner reclaimed.
    pub cleaner_reclaimed: u64,
    /// Segments the cleaner skipped because heat pinned them.
    pub cleaner_skipped_heated: u64,
}

/// Metadata returned by [`SeroFs::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// Inode number.
    pub ino: u64,
    /// Size in bytes.
    pub size: u64,
    /// Protecting line, when heated.
    pub heated: Option<Line>,
    /// Number of data blocks.
    pub blocks: usize,
    /// Modification time.
    pub mtime: u64,
    /// True when the file system is in degraded mode (quarantined blocks
    /// on the device): reads and verification are served, writes refused.
    pub degraded: bool,
}

/// The SERO-aware log-structured file system.
#[derive(Debug, Clone)]
pub struct SeroFs {
    pub(crate) dev: SeroDevice,
    pub(crate) config: FsConfig,
    pub(crate) alloc: Allocator,
    pub(crate) inodes: BTreeMap<u64, Inode>,
    /// ino → block address of the inode's main block on the device.
    pub(crate) inode_loc: BTreeMap<u64, u64>,
    /// ino → block address of the inode's indirect block, if written.
    pub(crate) indirect_loc: BTreeMap<u64, u64>,
    pub(crate) directory: BTreeMap<String, u64>,
    pub(crate) next_ino: u64,
    pub(crate) stats: FsStats,
    /// What [`SeroFs::mount`] restored from the checkpoint's persisted
    /// scrub state (`None` for a freshly formatted fs or a v1 checkpoint).
    pub(crate) scrub_restore: Option<ScrubStateRestore>,
    /// The scrub pass driven through the command API
    /// ([`SeroFs::handle`](crate::serve)), when one has been started.
    pub(crate) service_scrub: Option<ScrubScheduler>,
    /// The metadata index, when the configuration reserves a region.
    pub(crate) index: Option<MetaIndex>,
    /// Write-back page cache over the index region. Index reads fill it;
    /// index writes land here and are flushed to the device by
    /// [`SeroFs::sync`], so per-operation device traffic is unchanged by
    /// the index.
    pub(crate) index_cache: BTreeMap<u64, [u8; PAGE_BYTES]>,
    /// Cached index pages not yet written to the device.
    pub(crate) index_dirty: BTreeSet<u64>,
    /// What opening the index observed at mount.
    pub(crate) index_open: Option<OpenReport>,
}

/// Adapts the reserved WMRM index region to the index's [`BlockStore`]
/// through the file system's write-back page cache.
struct FsIndexStore<'a> {
    dev: &'a mut SeroDevice,
    region: WmrmRegion,
    cache: &'a mut BTreeMap<u64, [u8; PAGE_BYTES]>,
    dirty: &'a mut BTreeSet<u64>,
}

impl BlockStore for FsIndexStore<'_> {
    fn page_count(&self) -> u64 {
        self.region.blocks()
    }

    fn read_page(&mut self, page: u64) -> Result<[u8; PAGE_BYTES], IndexError> {
        if let Some(data) = self.cache.get(&page) {
            return Ok(*data);
        }
        let data = self
            .region
            .read_page(self.dev, page)
            .map_err(|e| IndexError::Store {
                reason: e.to_string(),
            })?;
        self.cache.insert(page, data);
        Ok(data)
    }

    fn write_page(&mut self, page: u64, data: &[u8; PAGE_BYTES]) -> Result<(), IndexError> {
        if page >= self.region.blocks() {
            return Err(IndexError::Store {
                reason: format!(
                    "page {page} outside the {}-page index region",
                    self.region.blocks()
                ),
            });
        }
        self.cache.insert(page, *data);
        self.dirty.insert(page);
        Ok(())
    }
}

/// Maps index failures into the file system's error vocabulary: an
/// exhausted index region is a space problem, everything else is a
/// metadata-integrity problem.
fn index_err(e: IndexError) -> FsError {
    match e {
        IndexError::RegionFull {
            needed_pages,
            free_pages,
        } => FsError::NoSpace {
            needed: needed_pages,
            free: free_pages,
        },
        other => FsError::Corrupt {
            reason: format!("metadata index: {other}"),
        },
    }
}

impl SeroFs {
    /// Formats `dev` with a fresh, empty file system.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] for nonsensical configurations; device errors
    /// while writing the initial checkpoint.
    pub fn format(dev: SeroDevice, config: FsConfig) -> Result<SeroFs, FsError> {
        if config.segment_blocks == 0
            || dev.block_count() % config.segment_blocks != 0
            || config.checkpoint_blocks > config.segment_blocks
            || config.checkpoint_blocks == 0
            || config.checkpoint_blocks + config.index_blocks > dev.block_count()
        {
            return Err(FsError::Corrupt {
                reason: "configuration does not tile the device".to_string(),
            });
        }
        if config.index_blocks > 0 {
            // Fail loudly on an unusable geometry before touching the device.
            IndexGeometry::for_pages(config.index_blocks).map_err(|e| FsError::Corrupt {
                reason: format!("index region: {e}"),
            })?;
        }
        let alloc = Allocator::new(
            dev.block_count(),
            config.segment_blocks,
            config.checkpoint_blocks,
            config.index_blocks,
            config.policy,
        );
        let mut fs = SeroFs {
            dev,
            config,
            alloc,
            inodes: BTreeMap::new(),
            inode_loc: BTreeMap::new(),
            indirect_loc: BTreeMap::new(),
            directory: BTreeMap::new(),
            next_ino: 1,
            stats: FsStats::default(),
            scrub_restore: None,
            service_scrub: None,
            index: None,
            index_cache: BTreeMap::new(),
            index_dirty: BTreeSet::new(),
            index_open: None,
        };
        if config.index_blocks > 0 {
            let geom = IndexGeometry::for_pages(config.index_blocks).expect("validated above");
            let region = Self::index_region(&config).expect("index_blocks > 0");
            let mut store = FsIndexStore {
                dev: &mut fs.dev,
                region,
                cache: &mut fs.index_cache,
                dirty: &mut fs.index_dirty,
            };
            fs.index = Some(MetaIndex::format(&mut store, geom).map_err(index_err)?);
        }
        fs.flush_index_pages()?;
        fs.write_checkpoint()?;
        Ok(fs)
    }

    /// Mounts an existing file system, reconstructing all in-memory state
    /// from the checkpoint, the metadata index (or, for unindexed file
    /// systems, the inode blocks), and a physical scan for heated lines.
    ///
    /// An indexed mount never probes per-file device blocks: the
    /// checkpoint carries only superblock-scale state, and the directory
    /// and inode map are hydrated from the index — manifest, a bounded
    /// WAL tail, and the index's own segments.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the checkpoint, the index, or an inode
    /// fails to parse.
    pub fn mount(mut dev: SeroDevice) -> Result<SeroFs, FsError> {
        let (config, mut next_ino, mut inode_loc, mut directory, scrub_state) =
            Self::read_checkpoint(&mut dev)?;
        let mut alloc = Allocator::new(
            dev.block_count(),
            config.segment_blocks,
            config.checkpoint_blocks,
            config.index_blocks,
            config.policy,
        );

        // Physical truth first: rediscover heated lines. The incremental
        // path skips blocks of lines the registry already knows, so a
        // remount of a long-lived device scans only the WMRM remainder.
        dev.refresh_registry()?;
        let records: Vec<_> = dev.heated_lines().cloned().collect();
        for record in &records {
            alloc.pin_line(record.line);
            alloc.set_use(record.line.hash_block(), BlockUse::HashBlock);
        }

        // Restore the persisted scrub bookkeeping (checkpoint v2): the
        // rediscovered lines start with `verified_epoch == 0`, which would
        // force the next incremental scrub into a full pass; the imported
        // state marks everything the last completed pass covered, so a
        // remount resumes with the same delta it had before detach. A
        // record that fails validation (e.g. written by a newer format
        // version) is "no usable state", never a mount failure — the data
        // stays accessible and the next pass simply runs full.
        let scrub_restore = scrub_state.and_then(|state| dev.import_scrub_state(&state).ok());

        let mut inodes = BTreeMap::new();
        let mut indirect_loc = BTreeMap::new();
        let mut index = None;
        let mut index_cache = BTreeMap::new();
        let mut index_dirty = BTreeSet::new();
        let mut index_open = None;

        if config.index_blocks > 0 {
            // Indexed mount: hydrate the namespace from the index —
            // manifest + bounded WAL tail + index segments — and never
            // probe per-file inode blocks on the device.
            let geom = IndexGeometry::for_pages(config.index_blocks).map_err(index_err)?;
            let region = Self::index_region(&config).expect("index_blocks > 0");
            let mut store = FsIndexStore {
                dev: &mut dev,
                region,
                cache: &mut index_cache,
                dirty: &mut index_dirty,
            };
            let (mut idx, report) = MetaIndex::open(&mut store, geom).map_err(index_err)?;
            let entries = idx.scan_all(&mut store).map_err(index_err)?;
            let mut record_chunks: BTreeMap<u64, Vec<(u8, Vec<u8>)>> = BTreeMap::new();
            for (key, value) in entries {
                if let Some(raw_name) = key.strip_prefix(b"d/") {
                    let name =
                        String::from_utf8(raw_name.to_vec()).map_err(|_| FsError::Corrupt {
                            reason: "index directory name is not UTF-8".to_string(),
                        })?;
                    let ino: [u8; 8] =
                        value.as_slice().try_into().map_err(|_| FsError::Corrupt {
                            reason: format!("index directory entry for {name:?} is not a u64"),
                        })?;
                    directory.insert(name, u64::from_le_bytes(ino));
                } else if let Some(rest) = key.strip_prefix(b"i/") {
                    if rest.len() != 9 {
                        return Err(FsError::Corrupt {
                            reason: "malformed inode-record key in index".to_string(),
                        });
                    }
                    let ino = u64::from_be_bytes(rest[..8].try_into().expect("8"));
                    record_chunks.entry(ino).or_default().push((rest[8], value));
                } else {
                    return Err(FsError::Corrupt {
                        reason: "unknown key family in metadata index".to_string(),
                    });
                }
            }
            for (ino, mut parts) in record_chunks {
                parts.sort_by_key(|(chunk, _)| *chunk);
                if parts.iter().enumerate().any(|(i, (c, _))| *c as usize != i) {
                    return Err(FsError::Corrupt {
                        reason: format!("inode {ino} record chunks are not contiguous"),
                    });
                }
                let values: Vec<Vec<u8>> = parts.into_iter().map(|(_, v)| v).collect();
                let record = meta::decode_record(&meta::assemble_record(&values)?)?;
                if record.inode.ino != ino {
                    return Err(FsError::Corrupt {
                        reason: format!("inode record {ino} names ino {}", record.inode.ino),
                    });
                }
                if let Some(loc) = record.inode_loc {
                    alloc.set_use(loc, BlockUse::InodeBlock { ino });
                    inode_loc.insert(ino, loc);
                }
                if let Some(loc) = record.indirect_loc {
                    alloc.set_use(loc, BlockUse::Indirect { ino });
                    indirect_loc.insert(ino, loc);
                }
                for &b in &record.inode.blocks {
                    alloc.set_use(b, BlockUse::Data { ino });
                }
                // The checkpoint can trail the index by one sync; never
                // hand out an ino the index already knows.
                next_ino = next_ino.max(ino + 1);
                inodes.insert(ino, record.inode);
            }
            index = Some(idx);
            index_open = Some(report);
        } else {
            // Legacy mount: load inodes from the checkpoint's inode map
            // and mark their blocks.
            for (&ino, &block) in &inode_loc {
                let sector = dev.probe_mut().mrs(block).map_err(|e| FsError::Corrupt {
                    reason: format!("inode block {block} unreadable: {e}"),
                })?;
                let (mut inode, indirect_ptr) = Inode::decode(&sector.data)?;
                let total = {
                    // decode() returns direct prefix only; recover the count.
                    let declared = inode.blocks.len();
                    if let Some(ptr) = indirect_ptr {
                        // re-read count from size? The encoding stores n_blocks
                        // explicitly; decode kept only the direct prefix, so
                        // fetch the indirect block and extend.
                        let ind = dev.probe_mut().mrs(ptr).map_err(|e| FsError::Corrupt {
                            reason: format!("indirect block {ptr} unreadable: {e}"),
                        })?;
                        let n = (inode.size as usize).div_ceil(SECTOR_DATA_BYTES);
                        inode.attach_indirect(&ind.data, n)?;
                        indirect_loc.insert(ino, ptr);
                        alloc.set_use(ptr, BlockUse::Indirect { ino });
                        n
                    } else {
                        declared
                    }
                };
                debug_assert_eq!(inode.blocks.len(), total.max(inode.blocks.len()));
                alloc.set_use(block, BlockUse::InodeBlock { ino });
                for &b in &inode.blocks {
                    alloc.set_use(b, BlockUse::Data { ino });
                }
                inodes.insert(ino, inode);
            }
        }

        Ok(SeroFs {
            dev,
            config,
            alloc,
            inodes,
            inode_loc,
            indirect_loc,
            directory,
            next_ino,
            stats: FsStats::default(),
            scrub_restore,
            service_scrub: None,
            index,
            index_cache,
            index_dirty,
            index_open,
        })
    }

    // --- accessors --------------------------------------------------------

    /// The underlying SERO device.
    pub fn device(&self) -> &SeroDevice {
        &self.dev
    }

    /// Mutable device access — the §5 threat model's raw interface, for
    /// attack drills and experiments only. Application code should go
    /// through the typed operations or the [`SeroFs::handle`] command
    /// API; mutating the device underneath the file system bypasses
    /// allocator and directory bookkeeping (that being the point, for
    /// attack modelling).
    pub fn device_mut(&mut self) -> &mut SeroDevice {
        &mut self.dev
    }

    /// Consumes the file system, returning the device (for remount tests).
    pub fn into_device(self) -> SeroDevice {
        self.dev
    }

    /// Operation statistics.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> FsConfig {
        self.config
    }

    /// True when this file system carries a metadata index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// What opening the index observed at mount (`None` for an unindexed
    /// file system or a freshly formatted one): WAL records replayed and
    /// whether a torn tail was truncated back to the last durable record.
    pub fn index_open_report(&self) -> Option<OpenReport> {
        self.index_open
    }

    /// Index runtime counters (flushes, compactions, bloom skips), when
    /// an index is present.
    pub fn index_stats(&self) -> Option<IndexStats> {
        self.index.as_ref().map(|i| i.stats())
    }

    /// Resolves `name` through the on-index lookup path — memtable, then
    /// bloom-filtered segments — rather than the in-memory directory.
    /// Returns the inode number, or `None` when the index is absent or
    /// has no such entry. This is the probe `exp_metadata` uses to
    /// assert point-lookup cost.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] for index corruption; device errors.
    pub fn index_lookup(&mut self, name: &str) -> Result<Option<u64>, FsError> {
        let key = meta::dir_key(name);
        let Some((index, mut store)) = self.index_parts() else {
            return Ok(None);
        };
        match index.get(&mut store, &key).map_err(index_err)? {
            None => Ok(None),
            Some(bytes) => {
                let arr: [u8; 8] = bytes.as_slice().try_into().map_err(|_| FsError::Corrupt {
                    reason: format!("index directory entry for {name:?} is not a u64"),
                })?;
                Ok(Some(u64::from_le_bytes(arr)))
            }
        }
    }

    // --- metadata index plumbing -----------------------------------------

    /// The reserved index region, when the configuration has one.
    fn index_region(config: &FsConfig) -> Option<WmrmRegion> {
        (config.index_blocks > 0).then(|| {
            WmrmRegion::new(config.checkpoint_blocks, config.index_blocks)
                .expect("non-empty index region")
        })
    }

    /// Splits the borrow: the index plus a [`BlockStore`] over the
    /// device and the write-back cache.
    fn index_parts(&mut self) -> Option<(&mut MetaIndex, FsIndexStore<'_>)> {
        let region = Self::index_region(&self.config)?;
        let index = self.index.as_mut()?;
        Some((
            index,
            FsIndexStore {
                dev: &mut self.dev,
                region,
                cache: &mut self.index_cache,
                dirty: &mut self.index_dirty,
            },
        ))
    }

    /// Upserts `name → ino` into the index.
    fn index_record_dirent(&mut self, name: &str, ino: u64) -> Result<(), FsError> {
        let key = meta::dir_key(name);
        let Some((index, mut store)) = self.index_parts() else {
            return Ok(());
        };
        index
            .put(&mut store, &key, &ino.to_le_bytes())
            .map_err(index_err)
    }

    /// Upserts `ino`'s chunked inode record into the index. `fresh`
    /// skips the stale-chunk deletes a brand-new record cannot need.
    fn index_record_file(&mut self, ino: u64, fresh: bool) -> Result<(), FsError> {
        if self.index.is_none() {
            return Ok(());
        }
        let chunks = {
            let inode = self.inodes.get(&ino).expect("recorded inode exists");
            meta::chunk_record(&meta::encode_record(
                inode,
                self.inode_loc.get(&ino).copied(),
                self.indirect_loc.get(&ino).copied(),
            ))
        };
        let written = chunks.len() as u8;
        let (index, mut store) = self.index_parts().expect("index present");
        for (i, chunk) in chunks.iter().enumerate() {
            index
                .put(&mut store, &meta::ino_key(ino, i as u8), chunk)
                .map_err(index_err)?;
        }
        if !fresh {
            // A shrunken record must not leave stale continuation chunks
            // behind for mount to assemble.
            for stale in written..meta::MAX_RECORD_CHUNKS {
                index
                    .delete(&mut store, &meta::ino_key(ino, stale))
                    .map_err(index_err)?;
            }
        }
        Ok(())
    }

    /// Drops `name` and `ino`'s record from the index.
    fn index_forget_file(&mut self, ino: u64, name: &str) -> Result<(), FsError> {
        let dkey = meta::dir_key(name);
        let Some((index, mut store)) = self.index_parts() else {
            return Ok(());
        };
        index.delete(&mut store, &dkey).map_err(index_err)?;
        for chunk in 0..meta::MAX_RECORD_CHUNKS {
            index
                .delete(&mut store, &meta::ino_key(ino, chunk))
                .map_err(index_err)?;
        }
        Ok(())
    }

    /// Writes every dirty cached index page to the device — called from
    /// [`SeroFs::sync`], keeping index durability on the same cadence as
    /// the checkpoint.
    fn flush_index_pages(&mut self) -> Result<(), FsError> {
        let Some(region) = Self::index_region(&self.config) else {
            return Ok(());
        };
        let dirty: Vec<u64> = self.index_dirty.iter().copied().collect();
        for page in dirty {
            let data = self.index_cache.get(&page).expect("dirty page is cached");
            region
                .write_page(&mut self.dev, page, data)
                .map_err(|e| match e {
                    JournalError::Device(d) => FsError::Device(d),
                    other => FsError::Corrupt {
                        reason: format!("index flush: {other}"),
                    },
                })?;
        }
        self.index_dirty.clear();
        Ok(())
    }

    /// Free blocks available for new data.
    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }

    /// Names of all files.
    pub fn list(&self) -> Vec<String> {
        self.directory.keys().cloned().collect()
    }

    /// True when `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.directory.contains_key(name)
    }

    /// Per-segment heated fractions — the §4.1 bimodality measurement.
    pub fn segment_heated_fractions(&self) -> Vec<f64> {
        self.alloc
            .segments()
            .iter()
            .map(|s| s.heated_fraction())
            .collect()
    }

    /// Number of segments containing at least one heated block.
    pub fn heat_touched_segments(&self) -> usize {
        self.alloc
            .segments()
            .iter()
            .filter(|s| s.heated > 0)
            .count()
    }

    /// Number of *mixed* segments: segments carrying both heated lines and
    /// live rewritable data. Mixed segments are what defeat the paper's
    /// bimodality — the cleaner must visit them for their live data yet can
    /// never fully reclaim them.
    pub fn mixed_segments(&self) -> usize {
        self.alloc
            .segments()
            .iter()
            .filter(|s| s.heated > 0 && s.live > 0)
            .count()
    }

    /// Bimodality score in [0, 1]: the fraction of heat-touched segments
    /// that are *pure* (no live rewritable data alongside the heat). 1.0
    /// is the paper's ideal — "only mostly heated segments and mostly
    /// unheated segments".
    pub fn bimodality_score(&self) -> f64 {
        let touched = self.heat_touched_segments();
        if touched == 0 {
            return 1.0;
        }
        1.0 - self.mixed_segments() as f64 / touched as f64
    }

    /// Live movable blocks currently sitting in heat-touched segments.
    /// This is exactly the traffic the cleaner will eventually have to
    /// copy *because* heat and live data share segments — the bandwidth
    /// §4.1's bimodality is designed to save.
    pub fn stranded_live_blocks(&self) -> u64 {
        self.alloc
            .segments()
            .iter()
            .filter(|s| s.heated > 0)
            .map(|s| s.live)
            .sum()
    }

    /// Metadata for `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn stat(&self, name: &str) -> Result<FileInfo, FsError> {
        let inode = self.lookup(name)?;
        Ok(FileInfo {
            ino: inode.ino,
            size: inode.size,
            heated: inode.heated,
            blocks: inode.blocks.len(),
            mtime: inode.mtime,
            degraded: self.is_degraded(),
        })
    }

    /// True when the underlying device has quarantined blocks. In
    /// degraded mode the file system keeps serving reads, `stat`, `list`,
    /// `verify`, and scrubs, but refuses mutating operations with
    /// [`FsError::Degraded`] — an archive that can no longer write
    /// trustworthily must stay readable and auditable, never wedge.
    pub fn is_degraded(&self) -> bool {
        self.dev.is_degraded()
    }

    fn check_degraded(&mut self) -> Result<(), FsError> {
        if self.dev.is_degraded() {
            return Err(FsError::Degraded {
                quarantined_blocks: self.dev.quarantined_count(),
            });
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<&Inode, FsError> {
        let ino = self.directory.get(name).ok_or_else(|| FsError::NotFound {
            name: name.to_string(),
        })?;
        self.inodes.get(ino).ok_or_else(|| FsError::Corrupt {
            reason: format!("directory names ino {ino} with no inode"),
        })
    }

    // --- data path ---------------------------------------------------------

    fn alloc_block_or_clean(&mut self, class: WriteClass) -> Result<u64, FsError> {
        if let Some(b) = self.alloc.alloc_block(class) {
            return Ok(b);
        }
        self.run_cleaner(usize::MAX)?;
        self.alloc.alloc_block(class).ok_or(FsError::NoSpace {
            needed: 1,
            free: self.alloc.free_blocks(),
        })
    }

    fn write_data_blocks(
        &mut self,
        data: &[u8],
        class: WriteClass,
        ino: u64,
    ) -> Result<Vec<u64>, FsError> {
        let n = data.len().div_ceil(SECTOR_DATA_BYTES).max(1);
        // Allocate (and claim) all targets first, then push the data
        // through the batch write path: the allocator clusters, so most
        // files land as one or two contiguous extents and pay one seek
        // each. Claiming at allocation time matters — an unclaimed block
        // is still `Free` to the allocator's wrap-around sweep.
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let block = self.alloc_block_or_clean(class)?;
            self.alloc.set_use(block, BlockUse::Data { ino });
            blocks.push(block);
        }
        let mut sectors = Vec::with_capacity(n);
        for chunk_idx in 0..n {
            let mut sector = [0u8; SECTOR_DATA_BYTES];
            let from = chunk_idx * SECTOR_DATA_BYTES;
            let to = ((chunk_idx + 1) * SECTOR_DATA_BYTES).min(data.len());
            if from < data.len() {
                sector[..to - from].copy_from_slice(&data[from..to]);
            }
            sectors.push(sector);
        }
        self.dev.write_blocks(&blocks, &sectors)?;
        self.stats.blocks_written += n as u64;
        Ok(blocks)
    }

    /// Creates `name` with `data`, using `class` as the §4.1 clustering
    /// hint, and returns the inode number.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`], [`FsError::BadName`],
    /// [`FsError::FileTooLarge`], [`FsError::NoSpace`], device errors.
    pub fn create(&mut self, name: &str, data: &[u8], class: WriteClass) -> Result<u64, FsError> {
        self.check_degraded()?;
        if name.is_empty() || name.len() > MAX_NAME_BYTES {
            return Err(FsError::BadName {
                name: name.to_string(),
            });
        }
        if self.directory.contains_key(name) {
            return Err(FsError::Exists {
                name: name.to_string(),
            });
        }
        if data.len() > MAX_FILE_BYTES {
            return Err(FsError::FileTooLarge {
                size: data.len(),
                max: MAX_FILE_BYTES,
            });
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        let blocks = self.write_data_blocks(data, class, ino)?;
        let mut inode = Inode::new(ino, name, FileKind::Regular);
        inode.size = data.len() as u64;
        inode.blocks = blocks;
        self.inodes.insert(ino, inode);
        self.directory.insert(name.to_string(), ino);
        // Record the file in the metadata index; an index that cannot
        // take it (region full) fails the create cleanly — no phantom
        // file survives in the in-memory maps.
        if let Err(e) = self
            .index_record_dirent(name, ino)
            .and_then(|()| self.index_record_file(ino, true))
        {
            self.directory.remove(name);
            if let Some(inode) = self.inodes.remove(&ino) {
                for b in inode.blocks {
                    self.alloc.set_use(b, BlockUse::Dead);
                }
            }
            return Err(e);
        }
        self.stats.files_created += 1;
        Ok(ino)
    }

    /// Reads the full contents of `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`]; device errors (an unreadable block of a
    /// heated file is tamper evidence — surfaced by [`SeroFs::verify`]).
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let (blocks, size) = {
            let inode = self.lookup(name)?;
            (inode.blocks.clone(), inode.size as usize)
        };
        let sectors = self.dev.read_blocks(&blocks)?;
        self.stats.blocks_read += blocks.len() as u64;
        let mut out = Vec::with_capacity(blocks.len() * SECTOR_DATA_BYTES);
        for sector in &sectors {
            out.extend_from_slice(sector);
        }
        out.truncate(size);
        Ok(out)
    }

    /// Overwrites `name` with `data`.
    ///
    /// # Errors
    ///
    /// [`FsError::ReadOnlyFile`] for heated files — "once an area has been
    /// heated, it can no longer be rewritten with impunity" (§8). The
    /// refused line is flagged on the device so the next incremental scrub
    /// re-verifies it: an overwrite attempt on frozen data is exactly the
    /// activity a scrub should chase.
    pub fn write(&mut self, name: &str, data: &[u8], class: WriteClass) -> Result<(), FsError> {
        self.check_degraded()?;
        let ino = {
            let inode = self.lookup(name)?;
            if let Some(line) = inode.heated {
                self.dev.flag_line(line);
                return Err(FsError::ReadOnlyFile {
                    name: name.to_string(),
                    line,
                });
            }
            inode.ino
        };
        if data.len() > MAX_FILE_BYTES {
            return Err(FsError::FileTooLarge {
                size: data.len(),
                max: MAX_FILE_BYTES,
            });
        }
        let new_blocks = self.write_data_blocks(data, class, ino)?;
        let inode = self.inodes.get_mut(&ino).expect("looked up");
        let old_blocks = std::mem::replace(&mut inode.blocks, new_blocks);
        inode.size = data.len() as u64;
        inode.mtime += 1;
        for b in old_blocks {
            self.alloc.set_use(b, BlockUse::Dead);
        }
        self.index_record_file(ino, false)?;
        Ok(())
    }

    /// Removes `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::ReadOnlyFile`] for heated files: §5.2 — `rm` "implies
    /// writing the inode, which will be tamper-evident", so the protocol
    /// refuses outright and flags the line for the next incremental scrub.
    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        self.check_degraded()?;
        let ino = {
            let inode = self.lookup(name)?;
            if let Some(line) = inode.heated {
                self.dev.flag_line(line);
                return Err(FsError::ReadOnlyFile {
                    name: name.to_string(),
                    line,
                });
            }
            inode.ino
        };
        let inode = self.inodes.remove(&ino).expect("looked up");
        for b in inode.blocks {
            self.alloc.set_use(b, BlockUse::Dead);
        }
        if let Some(loc) = self.inode_loc.remove(&ino) {
            self.alloc.set_use(loc, BlockUse::Dead);
        }
        if let Some(loc) = self.indirect_loc.remove(&ino) {
            self.alloc.set_use(loc, BlockUse::Dead);
        }
        self.directory.remove(name);
        self.index_forget_file(ino, name)?;
        self.stats.files_removed += 1;
        Ok(())
    }

    // --- heat & verify ------------------------------------------------------

    /// Heats `name`: relocates the file into a fresh aligned line laid out
    /// as `hash ‖ inode ‖ [indirect] ‖ data`, heats the line, and marks the
    /// file immutable. Returns the line. Idempotent for already-heated
    /// files.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when no aligned line can be found even after
    /// cleaning; device errors from the heat protocol.
    pub fn heat(&mut self, name: &str, metadata: Vec<u8>, timestamp: u64) -> Result<Line, FsError> {
        let ino = {
            let inode = self.lookup(name)?;
            if let Some(line) = inode.heated {
                return Ok(line); // idempotent (and safe while degraded)
            }
            inode.ino
        };
        self.check_degraded()?;
        let (old_blocks, size, needs_indirect) = {
            let inode = &self.inodes[&ino];
            (
                inode.blocks.clone(),
                inode.size,
                inode.blocks.len() > NDIRECT,
            )
        };

        // Line layout: hash + inode + (indirect) + data.
        let total = 2 + needs_indirect as u64 + old_blocks.len() as u64;
        let order = (64 - (total - 1).leading_zeros()).max(1);
        if order > MAX_ORDER {
            return Err(FsError::FileTooLarge {
                size: size as usize,
                max: MAX_FILE_BYTES,
            });
        }
        let line = match self.alloc.alloc_line(order, WriteClass::Archival) {
            Some(l) => l,
            None => {
                self.run_cleaner(usize::MAX)?;
                self.alloc
                    .alloc_line(order, WriteClass::Archival)
                    .ok_or(FsError::NoSpace {
                        needed: 1 << order,
                        free: self.alloc.free_blocks(),
                    })?
            }
        };

        // Copy data into the line: batch-read the scattered source blocks,
        // batch-write the contiguous target extent.
        let inode_block = line.start() + 1;
        let indirect_block = needs_indirect.then_some(line.start() + 2);
        let data_start = line.start() + 2 + needs_indirect as u64;
        let contents = self.dev.read_blocks(&old_blocks)?;
        let new_blocks: Vec<u64> = (0..old_blocks.len() as u64)
            .map(|i| data_start + i)
            .collect();
        self.dev.write_blocks(&new_blocks, &contents)?;
        for &target in &new_blocks {
            self.alloc.set_use(target, BlockUse::Data { ino });
        }

        // Zero-fill the line's slack: the heat operation hashes every
        // block of the line, so all of them must be formatted. Slack
        // blocks are pinned by the heat and never allocatable again.
        let slack: Vec<u64> = (data_start + old_blocks.len() as u64..line.end()).collect();
        self.dev
            .write_blocks(&slack, &vec![[0u8; SECTOR_DATA_BYTES]; slack.len()])?;
        for &block in &slack {
            self.alloc.set_use(block, BlockUse::Dead);
        }

        // Write the updated inode inside the line.
        {
            let inode = self.inodes.get_mut(&ino).expect("looked up");
            inode.blocks = new_blocks;
            inode.heated = Some(line);
        }
        let inode = &self.inodes[&ino];
        let (main, indirect) = inode.encode(indirect_block)?;
        self.dev.write_block(inode_block, &main)?;
        self.alloc
            .set_use(inode_block, BlockUse::InodeBlock { ino });
        if let (Some(ind_data), Some(ind_block)) = (indirect, indirect_block) {
            self.dev.write_block(ind_block, &ind_data)?;
            self.alloc.set_use(ind_block, BlockUse::Indirect { ino });
        }

        // Burn the hash.
        self.dev.heat_line(line, metadata, timestamp)?;
        self.alloc.pin_line(line);
        self.alloc.set_use(line.hash_block(), BlockUse::HashBlock);

        // Retire the old copies and stale locations.
        for b in old_blocks {
            self.alloc.set_use(b, BlockUse::Dead);
        }
        if let Some(loc) = self.inode_loc.insert(ino, inode_block) {
            self.alloc.set_use(loc, BlockUse::Dead);
        }
        if let Some(old) = self.indirect_loc.remove(&ino) {
            self.alloc.set_use(old, BlockUse::Dead);
        }
        if let Some(ind) = indirect_block {
            self.indirect_loc.insert(ino, ind);
        }
        // The record changed shape in every way that matters: heated
        // line, relocated data blocks, in-line inode location.
        self.index_record_file(ino, false)?;
        self.stats.heats += 1;
        Ok(line)
    }

    /// Verifies the heated line protecting `name`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`]; [`FsError::ReadOnlyFile`] is *not* an error
    /// here — unheated files simply return
    /// [`VerifyOutcome::NotHeated`].
    pub fn verify(&mut self, name: &str) -> Result<VerifyOutcome, FsError> {
        let line = match self.lookup(name)?.heated {
            Some(line) => line,
            None => return Ok(VerifyOutcome::NotHeated),
        };
        Ok(self.dev.verify_line(line)?)
    }

    /// Scrubs the whole device: verifies every heated line (files and raw
    /// application lines alike), sharded over parallel workers — the §5.2
    /// fsck argument made routine. Pass a [`ScrubConfig`] in
    /// [`ScrubMode::Incremental`](sero_core::scrub::ScrubMode::Incremental)
    /// to verify only the delta since the last completed pass (lines
    /// heated since then, plus lines flagged by tamper evidence or refused
    /// writes). See [`sero_core::scrub`] for the model and the report
    /// shape.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// report.
    pub fn scrub(&mut self, config: &ScrubConfig) -> Result<ScrubReport, FsError> {
        Ok(scrub_device(&mut self.dev, config)?)
    }

    /// Convenience for routine background verification under live traffic:
    /// an incremental [`SeroFs::scrub`] with the default worker count and
    /// full-pass fallback cadence.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// report.
    pub fn scrub_incremental(&mut self) -> Result<ScrubReport, FsError> {
        self.scrub(&ScrubConfig::incremental(0))
    }

    /// What [`SeroFs::mount`] restored from the checkpoint's persisted
    /// scrub state: `None` for a freshly formatted fs (or a pre-v2
    /// checkpoint), otherwise the restore counts. When lines were
    /// restored, the next [`SeroFs::scrub_incremental`] verifies only the
    /// pre-detach delta instead of falling back to a full pass.
    pub fn scrub_restore(&self) -> Option<ScrubStateRestore> {
        self.scrub_restore
    }

    /// Starts a background scrub pass over the device and returns its
    /// handle. The pass runs *cooperatively*: it makes progress only when
    /// the caller grants it a slice via [`BackgroundScrub::tick`] —
    /// typically between foreground requests — and each slice is bounded
    /// by the [`SchedConfig`] device-time budget, so foreground reads and
    /// writes preempt the scrub at every slice boundary. Pause, resume,
    /// cancel, and progress live on the handle.
    ///
    /// Call [`SeroFs::sync`] after the pass completes to persist the
    /// advanced epochs into the checkpoint; see [`sero_core::sched`] for
    /// the scheduling model.
    #[must_use = "the returned handle owns the pass; dropping it silently abandons the scrub"]
    pub fn scrub_background(&mut self, config: SchedConfig) -> BackgroundScrub {
        BackgroundScrub {
            sched: ScrubScheduler::start(&self.dev, config),
        }
    }

    /// Starts a coordinated background scrub across a *fleet* of mounted
    /// file systems and returns its handle. Passes are staggered (at most
    /// [`FleetConfig::max_concurrent`] at once), share one global
    /// device-time budget re-divided from each device's measured idle
    /// time, and suspicion-first ordering admits file systems whose
    /// devices carry flagged lines before clean peers — see
    /// [`sero_core::fleet`] for the model. `fses` order defines the
    /// member indices; pass the same slice (same order) to every
    /// [`FleetScrub::tick`].
    ///
    /// Call [`SeroFs::sync`] on each file system after its pass
    /// completes to persist the advanced epochs into its checkpoint.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] for degenerate fleet knobs (zero quantum or
    /// zero global budget).
    #[must_use = "the returned handle owns the fleet pass; dropping it silently abandons the scrub"]
    pub fn fleet_scrub(fses: &[SeroFs], config: FleetConfig) -> Result<FleetScrub, FsError> {
        let sched = FleetScheduler::start(fses.iter().map(|f| &f.dev), config).map_err(|e| {
            FsError::Corrupt {
                reason: format!("fleet scrub config rejected: {e}"),
            }
        })?;
        Ok(FleetScrub { sched })
    }

    // --- checkpoint ----------------------------------------------------------

    /// Flushes dirty inodes to the log and writes the checkpoint.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the namespace outgrows the checkpoint
    /// region; device errors.
    pub fn sync(&mut self) -> Result<(), FsError> {
        // Write every unheated inode that has no on-device home (or whose
        // cached home is stale). Heated inodes already live in their lines.
        let inos: Vec<u64> = self.inodes.keys().copied().collect();
        let mut relocated = Vec::new();
        for ino in inos {
            let inode = &self.inodes[&ino];
            if inode.heated.is_some() && self.inode_loc.contains_key(&ino) {
                continue;
            }
            let prev_main = self.inode_loc.get(&ino).copied();
            let prev_ind = self.indirect_loc.get(&ino).copied();
            let needs_indirect = inode.blocks.len() > NDIRECT;
            let ind_block = if needs_indirect {
                Some(match self.indirect_loc.get(&ino) {
                    Some(&b) => b,
                    None => self.alloc_block_or_clean(WriteClass::Normal)?,
                })
            } else {
                None
            };
            let inode = &self.inodes[&ino];
            let (main, indirect) = inode.encode(ind_block)?;
            let main_block = match self.inode_loc.get(&ino) {
                Some(&b) if !self.alloc.is_heated(b) => b,
                _ => self.alloc_block_or_clean(WriteClass::Normal)?,
            };
            self.dev.write_block(main_block, &main)?;
            self.alloc.set_use(main_block, BlockUse::InodeBlock { ino });
            self.inode_loc.insert(ino, main_block);
            if let (Some(data), Some(block)) = (indirect, ind_block) {
                self.dev.write_block(block, &data)?;
                self.alloc.set_use(block, BlockUse::Indirect { ino });
                self.indirect_loc.insert(ino, block);
            }
            if prev_main != Some(main_block) || prev_ind != ind_block {
                relocated.push(ino);
            }
        }
        // Inodes that moved get their index records refreshed so an
        // indexed mount marks the right blocks live — then the dirty
        // index pages hit the device before the checkpoint that a crash
        // would recover through.
        for ino in relocated {
            self.index_record_file(ino, false)?;
        }
        self.flush_index_pages()?;
        self.write_checkpoint()
    }

    fn write_checkpoint(&mut self) -> Result<(), FsError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        let indexed = self.index.is_some();
        // Version 2 carries the whole namespace; version 3 is
        // superblock-scale because the namespace lives in the metadata
        // index — the checkpoint then stays O(1) no matter how many files
        // exist, which is the whole point of indexing.
        buf.push(if indexed { 3u8 } else { 2u8 });
        buf.extend_from_slice(&self.config.segment_blocks.to_le_bytes());
        buf.extend_from_slice(&self.config.checkpoint_blocks.to_le_bytes());
        if indexed {
            buf.extend_from_slice(&self.config.index_blocks.to_le_bytes());
        }
        buf.push(match self.config.policy {
            ClusterPolicy::HeatAffinity => 1,
            ClusterPolicy::Naive => 2,
        });
        buf.extend_from_slice(&self.next_ino.to_le_bytes());
        if !indexed {
            buf.extend_from_slice(&(self.inode_loc.len() as u32).to_le_bytes());
            for (&ino, &block) in &self.inode_loc {
                buf.extend_from_slice(&ino.to_le_bytes());
                buf.extend_from_slice(&block.to_le_bytes());
            }
            buf.extend_from_slice(&(self.directory.len() as u32).to_le_bytes());
            for (name, &ino) in &self.directory {
                buf.extend_from_slice(&ino.to_le_bytes());
                buf.push(name.len() as u8);
                buf.extend_from_slice(name.as_bytes());
            }
        }
        // The device's scrub bookkeeping rides the checkpoint, so a
        // remount resumes incremental scrubbing instead of a full pass.
        // The export is capped to whatever headroom the fixed checkpoint
        // region has left after the namespace — under pressure it drops
        // records (those lines just re-verify next pass) rather than
        // pushing the checkpoint past its region and failing sync.
        let capacity = (self.config.checkpoint_blocks as usize) * SECTOR_DATA_BYTES - 8;
        let scrub_budget = capacity.saturating_sub(buf.len() + 4 + 4);
        let scrub_state = self.dev.export_scrub_state_capped(scrub_budget);
        buf.extend_from_slice(&(scrub_state.len() as u32).to_le_bytes());
        buf.extend_from_slice(&scrub_state);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());

        // A namespace too large for the region is a typed, recoverable
        // error: nothing has been written yet, so the previous checkpoint
        // on the device is still whole and the mountable state is exactly
        // what it was before this sync.
        if buf.len() > capacity {
            return Err(FsError::CheckpointOverflow {
                bytes: buf.len(),
                capacity,
            });
        }

        // Prefix with total length, then chunk into the region.
        let mut framed = Vec::with_capacity(buf.len() + 8);
        framed.extend_from_slice(&(buf.len() as u64).to_le_bytes());
        framed.extend_from_slice(&buf);
        for (i, chunk) in framed.chunks(SECTOR_DATA_BYTES).enumerate() {
            let mut sector = [0u8; SECTOR_DATA_BYTES];
            sector[..chunk.len()].copy_from_slice(chunk);
            self.dev.write_block(i as u64, &sector)?;
        }
        Ok(())
    }

    #[allow(clippy::type_complexity)]
    fn read_checkpoint(
        dev: &mut SeroDevice,
    ) -> Result<
        (
            FsConfig,
            u64,
            BTreeMap<u64, u64>,
            BTreeMap<String, u64>,
            Option<Vec<u8>>,
        ),
        FsError,
    > {
        let first = dev.read_block(0)?;
        let total = u64::from_le_bytes(first[..8].try_into().expect("8")) as usize;
        let mut framed = first[8..].to_vec();
        let mut next_block = 1u64;
        while framed.len() < total {
            framed.extend_from_slice(&dev.read_block(next_block)?);
            next_block += 1;
        }
        framed.truncate(total);
        let buf = framed;
        if buf.len() < 4 + 1 + 8 + 8 + 1 + 8 + 4 + 4 + 4 {
            return Err(FsError::Corrupt {
                reason: "checkpoint too short".to_string(),
            });
        }
        let stored_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4"));
        let body = &buf[..buf.len() - 4];
        if crc32(body) != stored_crc {
            return Err(FsError::Corrupt {
                reason: "checkpoint crc mismatch".to_string(),
            });
        }
        let mut pos = 0usize;
        let magic = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4"));
        pos += 4;
        if magic != CHECKPOINT_MAGIC {
            return Err(FsError::Corrupt {
                reason: "bad checkpoint magic".to_string(),
            });
        }
        let version = body[pos];
        if !(1..=3).contains(&version) {
            return Err(FsError::Corrupt {
                reason: format!("unknown checkpoint version {version}"),
            });
        }
        pos += 1;
        let segment_blocks = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
        pos += 8;
        let checkpoint_blocks = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
        pos += 8;
        // v3 (indexed) records the index region size; v1/v2 predate it.
        let index_blocks = if version >= 3 {
            let v = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
            pos += 8;
            v
        } else {
            0
        };
        let policy = match body[pos] {
            1 => ClusterPolicy::HeatAffinity,
            2 => ClusterPolicy::Naive,
            other => {
                return Err(FsError::Corrupt {
                    reason: format!("unknown policy byte {other}"),
                })
            }
        };
        pos += 1;
        let next_ino = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
        pos += 8;
        let mut inode_loc = BTreeMap::new();
        let mut directory = BTreeMap::new();
        // v3 checkpoints are superblock-scale: the namespace lives in the
        // metadata index, so there are no inode-location or directory
        // sections to parse here.
        if version <= 2 {
            let n_inodes = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
            pos += 4;
            for _ in 0..n_inodes {
                let ino = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
                pos += 8;
                let block = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
                pos += 8;
                inode_loc.insert(ino, block);
            }
            let n_dirents = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
            pos += 4;
            for _ in 0..n_dirents {
                let ino = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
                pos += 8;
                let len = body[pos] as usize;
                pos += 1;
                let name = String::from_utf8(body[pos..pos + len].to_vec()).map_err(|_| {
                    FsError::Corrupt {
                        reason: "directory name not UTF-8".to_string(),
                    }
                })?;
                pos += len;
                directory.insert(name, ino);
            }
        }
        // v1 checkpoints predate persisted scrub state; their remounts
        // simply start unverified (full pass), exactly as before.
        let scrub_state = if version >= 2 {
            if pos + 4 > body.len() {
                return Err(FsError::Corrupt {
                    reason: "checkpoint scrub-state section truncated".to_string(),
                });
            }
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
            pos += 4;
            if pos + len > body.len() {
                return Err(FsError::Corrupt {
                    reason: "checkpoint scrub-state section truncated".to_string(),
                });
            }
            Some(body[pos..pos + len].to_vec())
        } else {
            None
        };
        Ok((
            FsConfig {
                segment_blocks,
                checkpoint_blocks,
                index_blocks,
                policy,
            },
            next_ino,
            inode_loc,
            directory,
            scrub_state,
        ))
    }

    /// Number of data blocks a file of `bytes` occupies (helper for sizing
    /// experiments).
    pub fn blocks_for(bytes: usize) -> usize {
        bytes.div_ceil(SECTOR_DATA_BYTES).clamp(1, MAX_BLOCKS)
    }
}

/// Handle to a background scrub pass started with
/// [`SeroFs::scrub_background`].
///
/// The handle owns the pass; the file system stays fully usable while it
/// is alive. Interleave foreground operations with
/// [`BackgroundScrub::tick`] calls and the pass drains in budget-bounded
/// slices:
///
/// ```
/// use sero_core::device::SeroDevice;
/// use sero_core::sched::SchedConfig;
/// use sero_fs::alloc::WriteClass;
/// use sero_fs::fs::{FsConfig, SeroFs};
///
/// let mut fs = SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default())?;
/// fs.create("ledger.csv", b"assets,1000", WriteClass::Archival)?;
/// fs.heat("ledger.csv", vec![], 0)?;
///
/// let mut scrub = fs.scrub_background(SchedConfig::default());
/// while !scrub.is_complete() {
///     // … serve foreground traffic here …
///     fs.read("ledger.csv")?;
///     scrub.tick(&mut fs)?; // grant the scrub one bounded slice
/// }
/// assert!(scrub.report().summary.is_clean());
/// fs.sync()?; // persist the advanced epochs into the checkpoint
/// # Ok::<(), sero_fs::error::FsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BackgroundScrub {
    sched: ScrubScheduler,
}

impl BackgroundScrub {
    /// Grants the pass one slice of device time on `fs`'s device (a no-op
    /// when paused, throttled, cancelled, or complete). See
    /// [`sero_core::sched::ScrubScheduler::run_slice`].
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// report.
    pub fn tick(&mut self, fs: &mut SeroFs) -> Result<SliceOutcome, FsError> {
        Ok(self.sched.run_slice(&mut fs.dev)?)
    }

    /// Pauses the pass between slices.
    pub fn pause(&mut self) {
        self.sched.pause();
    }

    /// Resumes a paused pass.
    pub fn resume(&mut self) {
        self.sched.resume();
    }

    /// Cancels the pass. The device's completed-pass epoch stays
    /// untouched — the unverified remainder is due in the next pass.
    pub fn cancel(&mut self) {
        self.sched.cancel();
    }

    /// Lifecycle state.
    pub fn state(&self) -> SchedState {
        self.sched.state()
    }

    /// True once the pass completed and the epoch advanced.
    pub fn is_complete(&self) -> bool {
        self.sched.is_complete()
    }

    /// Point-in-time progress counters.
    pub fn progress(&self) -> SchedProgress {
        self.sched.progress()
    }

    /// The scheduler trace: one record per slice run so far.
    pub fn trace(&self) -> &[SliceTrace] {
        self.sched.trace()
    }

    /// The pass outcomes so far as a [`ScrubReport`] (partial until
    /// complete).
    pub fn report(&self) -> ScrubReport {
        self.sched.report()
    }

    /// The underlying scheduler, for scheduling-level introspection.
    pub fn scheduler(&self) -> &ScrubScheduler {
        &self.sched
    }
}

/// Handle to a fleet-wide background scrub started with
/// [`SeroFs::fleet_scrub`].
///
/// The handle owns the fleet pass state; the file systems stay with the
/// caller and remain fully usable. Interleave foreground operations with
/// [`FleetScrub::tick`] (whole fleet, one slice per member in priority
/// order) or [`FleetScrub::tick_member`] (one file system's gap in its
/// own request loop, after a [`FleetScrub::retune`]):
///
/// ```
/// use sero_core::device::SeroDevice;
/// use sero_core::fleet::FleetConfig;
/// use sero_fs::alloc::WriteClass;
/// use sero_fs::fs::{FsConfig, SeroFs};
///
/// let mut fleet: Vec<SeroFs> = (0..2)
///     .map(|i| {
///         let mut fs =
///             SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default()).unwrap();
///         fs.create("ledger.csv", &[i as u8; 2000], WriteClass::Archival)?;
///         fs.heat("ledger.csv", vec![], 0)?;
///         Ok(fs)
///     })
///     .collect::<Result<_, sero_fs::error::FsError>>()?;
///
/// let mut scrub = SeroFs::fleet_scrub(&fleet, FleetConfig::default())?;
/// scrub.run_to_completion(&mut fleet)?;
/// assert!(scrub.is_complete());
/// for fs in &mut fleet {
///     assert_eq!(fs.device().scrub_epoch(), 1);
///     fs.sync()?; // persist the advanced epochs
/// }
/// # Ok::<(), sero_fs::error::FsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetScrub {
    sched: FleetScheduler,
}

impl FleetScrub {
    /// One fleet round over all members: samples every device's load
    /// probe, re-divides the global budget, then grants each member one
    /// slice in priority order. `fses` must be the fleet passed to
    /// [`SeroFs::fleet_scrub`], in the same order.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; tamper findings are data in the
    /// member reports.
    pub fn tick(
        &mut self,
        fses: &mut [SeroFs],
    ) -> Result<Vec<(usize, FleetSliceOutcome)>, FsError> {
        assert_eq!(
            fses.len(),
            self.sched.len(),
            "tick needs the full fleet in start order"
        );
        self.retune(fses);
        let order = self.sched.priority_order().to_vec();
        let mut outcomes = Vec::with_capacity(order.len());
        for i in order {
            outcomes.push((i, self.sched.tick_member(i, &mut fses[i].dev)?));
        }
        Ok(outcomes)
    }

    /// Grants member `idx` one slice on its own file system — the shape a
    /// per-fs request loop wants: retune once per round, then tick each
    /// member in the idle gap of its own traffic.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only.
    pub fn tick_member(
        &mut self,
        idx: usize,
        fs: &mut SeroFs,
    ) -> Result<FleetSliceOutcome, FsError> {
        Ok(self.sched.tick_member(idx, &mut fs.dev)?)
    }

    /// Re-divides the global budget from the fleet's current load probes
    /// (called automatically by [`FleetScrub::tick`]).
    pub fn retune(&mut self, fses: &[SeroFs]) {
        let loads: Vec<LoadProbe> = fses.iter().map(|f| *f.dev.load_probe()).collect();
        self.sched.retune(&loads);
    }

    /// Drives the fleet to completion on otherwise-idle file systems,
    /// idling throttled or starved devices forward on their own clocks.
    ///
    /// # Errors
    ///
    /// Infrastructure failures from any member slice.
    pub fn run_to_completion(&mut self, fses: &mut [SeroFs]) -> Result<(), FsError> {
        let quantum = self.sched.config().quantum_ns;
        let mut guard = 0usize;
        while !self.is_complete() {
            guard += 1;
            assert!(guard < 1_000_000, "fleet scrub failed to converge");
            let mut progressed = false;
            for (i, outcome) in self.tick(fses)? {
                match outcome {
                    FleetSliceOutcome::Ran { .. } => progressed = true,
                    FleetSliceOutcome::Throttled { resume_at_ns } => {
                        let dev = fses[i].device_mut();
                        let now = dev.probe().clock().elapsed_ns();
                        if resume_at_ns > now {
                            dev.probe_mut().advance_clock((resume_at_ns - now) as u64);
                        }
                        progressed = true;
                    }
                    FleetSliceOutcome::Starved => {
                        fses[i].device_mut().probe_mut().advance_clock(quantum);
                        progressed = true;
                    }
                    FleetSliceOutcome::Waiting
                    | FleetSliceOutcome::Paused
                    | FleetSliceOutcome::Idle => {}
                }
            }
            if !progressed {
                return Ok(()); // everything left is paused
            }
        }
        Ok(())
    }

    /// Pauses member `idx` between slices.
    pub fn pause(&mut self, idx: usize) {
        self.sched.pause(idx);
    }

    /// Resumes a paused member.
    pub fn resume(&mut self, idx: usize) {
        self.sched.resume(idx);
    }

    /// Cancels member `idx`'s pass; its device's completed-pass epoch
    /// stays untouched and its slot frees for the next pending member.
    pub fn cancel(&mut self, idx: usize) {
        self.sched.cancel(idx);
    }

    /// True once every member completed or was cancelled.
    pub fn is_complete(&self) -> bool {
        self.sched.is_complete()
    }

    /// Lifecycle state of member `idx`.
    pub fn member_state(&self, idx: usize) -> FleetMemberState {
        self.sched.member_state(idx)
    }

    /// Fleet-wide progress totals.
    pub fn progress(&self) -> FleetProgress {
        self.sched.progress()
    }

    /// The pass report of member `idx` (`None` until admitted).
    pub fn member_report(&self, idx: usize) -> Option<ScrubReport> {
        self.sched.member_report(idx)
    }

    /// Member indices in pass-completion order.
    pub fn completion_order(&self) -> &[usize] {
        self.sched.completion_order()
    }

    /// The underlying fleet scheduler, for scheduling-level
    /// introspection (grants, priority order, peak concurrency).
    pub fn scheduler(&self) -> &FleetScheduler {
        &self.sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_core::scrub::ScrubMode;

    fn populated_fs() -> SeroFs {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::default()).unwrap();
        for i in 0..6 {
            let name = format!("frozen-{i}");
            fs.create(&name, &vec![i as u8; 3000], WriteClass::Archival)
                .unwrap();
            fs.heat(&name, vec![], 100 + i as u64).unwrap();
        }
        for i in 0..3 {
            fs.create(
                &format!("hot-{i}"),
                &vec![0xA0 + i; 2000],
                WriteClass::Normal,
            )
            .unwrap();
        }
        fs
    }

    #[test]
    fn background_scrub_interleaves_with_foreground_traffic() {
        let mut fs = populated_fs();
        let mut scrub = fs.scrub_background(SchedConfig::slice_budget(1_000_000).unwrap());
        let mut foreground_ops = 0;
        while !scrub.is_complete() {
            // Foreground keeps reading and rewriting between slices.
            fs.read("frozen-2").unwrap();
            fs.write(
                "hot-1",
                &vec![foreground_ops as u8; 2000],
                WriteClass::Normal,
            )
            .unwrap();
            foreground_ops += 1;
            scrub.tick(&mut fs).unwrap();
            assert!(foreground_ops < 1000, "scrub never completed");
        }
        let report = scrub.report();
        assert_eq!(report.summary.lines, 6);
        assert!(report.summary.is_clean());
        assert!(
            scrub.trace().len() > 1,
            "budget should force several slices"
        );
        assert_eq!(fs.device().scrub_epoch(), 1);
    }

    #[test]
    fn remount_restores_persisted_epochs_for_incremental_scrub() {
        let mut fs = populated_fs();
        // Complete a pass in the background, then persist via sync.
        let mut scrub = fs.scrub_background(SchedConfig::greedy());
        while !scrub.is_complete() {
            scrub.tick(&mut fs).unwrap();
        }
        // A post-pass delta: one new heated file, one refused write.
        fs.create("late", &[9u8; 3000], WriteClass::Archival)
            .unwrap();
        let late_line = fs.heat("late", vec![], 999).unwrap();
        let frozen_line = fs.stat("frozen-4").unwrap().heated.unwrap();
        assert!(fs
            .write("frozen-4", b"rewrite history", WriteClass::Normal)
            .is_err());
        fs.sync().unwrap();

        // Detach: drop all volatile state, remount from the bare device.
        let mut dev = fs.into_device();
        dev.forget_registry();
        let mut fs = SeroFs::mount(dev).unwrap();
        let restore = fs.scrub_restore().expect("v2 checkpoint carries state");
        // Six verified lines restored (the flagged one among them); the
        // late line's all-default record is not exported at all.
        assert_eq!(restore.restored, 6);
        assert_eq!((restore.stale, restore.unknown), (0, 0));

        // The remounted incremental pass covers exactly the pre-detach
        // delta — no full-pass fallback.
        let report = fs.scrub_incremental().unwrap();
        assert_eq!(report.summary.mode, ScrubMode::Incremental);
        assert_eq!(report.summary.lines, 2);
        assert_eq!(report.summary.skipped, 5);
        let verified: Vec<Line> = report.outcomes.iter().map(|o| o.line).collect();
        assert!(verified.contains(&late_line));
        assert!(verified.contains(&frozen_line));
    }

    #[test]
    fn fleet_scrub_covers_every_member_with_identical_evidence() {
        let mut fleet: Vec<SeroFs> = (0..3).map(|_| populated_fs()).collect();
        // Tamper one device behind the protocol's back; flag it via a
        // refused write so suspicion-first ordering sees it.
        let victim_line = fleet[2].stat("frozen-1").unwrap().heated.unwrap();
        fleet[2]
            .device_mut()
            .probe_mut()
            .mws(victim_line.start() + 2, &[0xEE; 512])
            .unwrap();
        assert!(fleet[2]
            .write("frozen-1", b"rewrite", WriteClass::Normal)
            .is_err());

        let exclusive: Vec<_> = fleet
            .clone()
            .iter_mut()
            .map(|fs| fs.scrub(&ScrubConfig::with_workers(1)).unwrap())
            .collect();

        let config = sero_core::fleet::FleetConfig {
            max_concurrent: 2,
            ..sero_core::fleet::FleetConfig::default()
        };
        let mut scrub = SeroFs::fleet_scrub(&fleet, config).unwrap();
        scrub.run_to_completion(&mut fleet).unwrap();
        assert!(scrub.is_complete());
        assert_eq!(
            scrub.completion_order()[0],
            2,
            "suspicious member's pass finishes first"
        );
        assert!(scrub.scheduler().peak_active() <= 2);
        for (i, expected) in exclusive.iter().enumerate() {
            let report = scrub.member_report(i).unwrap();
            assert_eq!(report.outcomes, expected.outcomes, "member {i}");
            assert_eq!(fleet[i].device().scrub_epoch(), 1);
        }
        assert_eq!(scrub.progress().tampered, 1);

        // Epochs persist per member through the usual sync path.
        for fs in &mut fleet {
            fs.sync().unwrap();
        }
    }

    #[test]
    fn fleet_scrub_rejects_degenerate_config() {
        let fleet = [populated_fs()];
        let bad = sero_core::fleet::FleetConfig {
            quantum_ns: 0,
            ..sero_core::fleet::FleetConfig::default()
        };
        assert!(matches!(
            SeroFs::fleet_scrub(&fleet, bad),
            Err(FsError::Corrupt { .. })
        ));
    }

    #[test]
    fn cancelled_background_pass_keeps_fs_consistent() {
        let mut fs = populated_fs();
        let mut scrub = fs.scrub_background(SchedConfig::slice_budget(1).unwrap());
        scrub.tick(&mut fs).unwrap();
        scrub.cancel();
        assert_eq!(scrub.state(), SchedState::Cancelled);
        assert_eq!(fs.device().scrub_epoch(), 0, "no completed pass");
        // A later exclusive scrub covers everything.
        let report = fs.scrub(&ScrubConfig::default()).unwrap();
        assert_eq!(report.summary.lines, 6);
    }

    #[test]
    fn indexed_format_mount_round_trips_namespace() {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::indexed()).unwrap();
        assert!(fs.has_index());
        for i in 0..8 {
            fs.create(
                &format!("file-{i}"),
                &vec![i as u8; 1500],
                WriteClass::Normal,
            )
            .unwrap();
        }
        fs.write("file-3", &[0x33; 4000], WriteClass::Normal)
            .unwrap();
        fs.heat("file-5", vec![], 77).unwrap();
        fs.remove("file-6").unwrap();
        fs.sync().unwrap();
        let expected: Vec<String> = fs.list().into_iter().collect();
        let heated = fs.stat("file-5").unwrap().heated;
        assert!(heated.is_some());

        let mut fs = SeroFs::mount(fs.into_device()).unwrap();
        assert!(fs.has_index());
        assert!(
            !fs.device().is_degraded(),
            "index reads must never touch virgin sectors (quarantine bait)"
        );
        let report = fs.index_open_report().expect("indexed mount reports");
        assert!(!report.torn_tail, "clean shutdown leaves no torn WAL tail");
        assert_eq!(fs.list().into_iter().collect::<Vec<_>>(), expected);
        assert_eq!(fs.stat("file-5").unwrap().heated, heated);
        assert_eq!(fs.read("file-3").unwrap(), vec![0x33; 4000]);
        assert!(matches!(fs.stat("file-6"), Err(FsError::NotFound { .. })));
        // Point lookups go through the LSM, not the in-memory directory.
        let ino = fs.index_lookup("file-0").unwrap().expect("file-0 indexed");
        assert_eq!(Some(&ino), fs.directory.get("file-0"));
        assert_eq!(fs.index_lookup("no-such-file").unwrap(), None);
    }

    #[test]
    fn indexed_mount_reads_no_inode_blocks() {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::indexed()).unwrap();
        for i in 0..24 {
            fs.create(
                &format!("probe-{i}"),
                &vec![i as u8; 900],
                WriteClass::Normal,
            )
            .unwrap();
        }
        fs.sync().unwrap();
        // Sabotage one synced inode block on the device. A legacy mount
        // would decode it and fail; an indexed mount never reads it.
        let victim = *fs.inode_loc.get(&fs.directory["probe-7"]).unwrap();
        let mut dev = fs.into_device();
        dev.write_block(victim, &[0xFF; SECTOR_DATA_BYTES]).unwrap();

        let before = dev.probe().counters().mrs;
        let fs = SeroFs::mount(dev).unwrap();
        let mount_reads = fs.device().probe().counters().mrs - before;
        let metadata_blocks = fs.config().checkpoint_blocks + fs.config().index_blocks;
        assert!(
            mount_reads <= metadata_blocks,
            "indexed mount read {mount_reads} sectors, more than the \
             {metadata_blocks}-block metadata regions — it probed inode blocks"
        );
        assert_eq!(fs.stat("probe-7").unwrap().size, 900);
        assert_eq!(fs.list().len(), 24);
    }

    #[test]
    fn checkpoint_overflow_is_typed_and_previous_checkpoint_survives() {
        // A deliberately tiny checkpoint region: 2 blocks ≈ 1 KiB.
        let config = FsConfig {
            segment_blocks: 64,
            checkpoint_blocks: 2,
            index_blocks: 0,
            policy: ClusterPolicy::HeatAffinity,
        };
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), config).unwrap();
        for i in 0..3 {
            fs.create(&format!("early-{i}"), &[i as u8; 600], WriteClass::Normal)
                .unwrap();
        }
        fs.sync().unwrap();

        for i in 0..30 {
            fs.create(
                &format!("late-{i:0>40}"),
                &[i as u8; 600],
                WriteClass::Normal,
            )
            .unwrap();
        }
        let err = fs.sync().unwrap_err();
        match err {
            FsError::CheckpointOverflow { bytes, capacity } => {
                assert!(bytes > capacity, "{bytes} vs {capacity}");
                assert_eq!(capacity, 2 * SECTOR_DATA_BYTES - 8);
            }
            other => panic!("expected CheckpointOverflow, got {other:?}"),
        }

        // Nothing was written: the device still mounts to the last
        // successfully synced namespace.
        let fs = SeroFs::mount(fs.into_device()).unwrap();
        let names = fs.list();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| n.starts_with("early-")));

        // The same workload fits trivially under an indexed format: the
        // checkpoint stays superblock-scale no matter the file count.
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::indexed()).unwrap();
        for i in 0..3 {
            fs.create(&format!("early-{i}"), &[i as u8; 600], WriteClass::Normal)
                .unwrap();
        }
        for i in 0..30 {
            fs.create(
                &format!("late-{i:0>40}"),
                &[i as u8; 600],
                WriteClass::Normal,
            )
            .unwrap();
        }
        fs.sync().unwrap();
        let fs2 = SeroFs::mount(fs.into_device()).unwrap();
        assert_eq!(fs2.list().len(), 33);
    }

    #[test]
    fn unindexed_checkpoints_remain_version_2() {
        // The legacy (index-free) configuration must keep writing v2
        // checkpoints byte-compatible with pre-index releases: mount the
        // checkpoint, then re-read it raw and check the version byte.
        let mut fs = SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default()).unwrap();
        fs.create("plain", b"contents", WriteClass::Normal).unwrap();
        fs.sync().unwrap();
        let mut dev = fs.into_device();
        let first = dev.read_block(0).unwrap();
        // Layout: u64 length ‖ u32 magic ‖ version byte.
        assert_eq!(first[12], 2, "unindexed checkpoints stay at version 2");
        let fs = SeroFs::mount(dev).unwrap();
        assert!(!fs.has_index());
        assert_eq!(fs.list(), vec!["plain".to_string()]);
    }
}
