//! The command dispatch: [`SeroFs::handle`] turns a wire
//! [`Request`] into a wire [`Response`].
//!
//! This is the *single* command path — `sero-server` feeds it frames
//! from sockets, in-process callers and tests feed it constructed
//! requests, and both get identical semantics: the same validation, the
//! same error codes, the same tamper-evidence shape. The file system's
//! typed methods ([`SeroFs::create`], [`SeroFs::verify`], …) stay the
//! primary in-process API; `handle` is the boundary form of exactly
//! those methods, not a second implementation.
//!
//! Two behaviours deserve note:
//!
//! * **Tamper evidence is an error code, not a payload.** A verify that
//!   finds evidence answers [`ErrorCode::TamperDetected`] with the full
//!   report text in the detail. Remote auditors see detection fail
//!   loudly; only [`VerifyOutcome::Intact`] and
//!   [`VerifyOutcome::NotHeated`] produce a `Verified` response.
//! * **Scrub-over-the-wire advances the simulated clock on throttle.**
//!   The device clock only moves when operations spend it. A remote
//!   driver granting ticks to a budgeted pass would otherwise spin
//!   forever on [`SliceOutcome::Throttled`]: wall-clock time passes
//!   between its requests, but nothing charges the simulated clock. So
//!   a tick that comes back throttled advances the clock to
//!   `resume_at_ns` — modelling the daemon idling until the next
//!   quantum opens — which keeps wire-driven scrubs deterministic *and*
//!   terminating.
//!
//! Raw writes ([`Request::RawWrite`]) are the §5 threat model's
//! "laptop with the appropriate interface" crossing the wire: they
//! bypass every protocol check on purpose, so tamper-*detection* paths
//! can be exercised end-to-end (tamper drills, the CI smoke test).
//! `handle` always serves them — policy (the daemon's `--allow-raw`
//! flag) lives in `sero-server`, which refuses the request with
//! [`ErrorCode::UnsupportedCommand`] before dispatch unless enabled.

use crate::alloc::WriteClass;
use crate::error::FsError;
use crate::fs::SeroFs;
use sero_core::locks::LineLockTable;
use sero_core::sched::{SchedConfig, SchedState, ScrubScheduler, SliceOutcome};
use sero_core::scrub::{ScrubConfig, ScrubMode};
use sero_core::tamper::VerifyOutcome;
use sero_probe::sector::SECTOR_DATA_BYTES;
use sero_proto::{
    ErrorCode, Request, Response, WireClass, WireError, WireFileInfo, WireMemberStatus,
    WireSchedState, WireScrubStatus, WireSliceOutcome, WireVerdict,
};

impl From<FsError> for WireError {
    fn from(e: FsError) -> WireError {
        let code = match &e {
            FsError::Device(dev) => return WireError::from(dev.clone()),
            FsError::NotFound { .. } => ErrorCode::NotFound,
            FsError::Exists { .. } => ErrorCode::Exists,
            FsError::ReadOnlyFile { .. } => ErrorCode::ReadOnlyFile,
            FsError::NoSpace { .. } => ErrorCode::NoSpace,
            FsError::FileTooLarge { .. } => ErrorCode::FileTooLarge,
            FsError::BadName { .. } => ErrorCode::BadName,
            FsError::Corrupt { .. } => ErrorCode::Corrupt,
            FsError::CheckpointOverflow { .. } => ErrorCode::NoSpace,
            FsError::Degraded { .. } => ErrorCode::Degraded,
        };
        WireError::new(code, e)
    }
}

fn class_of(wire: WireClass) -> WriteClass {
    match wire {
        WireClass::Normal => WriteClass::Normal,
        WireClass::Archival => WriteClass::Archival,
    }
}

/// `u128` device times saturate into `u64` on the wire; at the simulated
/// clock's nanosecond scale a real pass never gets near the boundary.
fn wire_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

fn wire_status(sched: &ScrubScheduler) -> WireScrubStatus {
    let p = sched.progress();
    WireScrubStatus {
        state: match p.state {
            SchedState::Running => WireSchedState::Running,
            SchedState::Paused => WireSchedState::Paused,
            SchedState::Cancelled => WireSchedState::Cancelled,
            SchedState::Complete => WireSchedState::Complete,
        },
        epoch: p.epoch,
        incremental: p.mode == ScrubMode::Incremental,
        verified: p.verified as u64,
        remaining: p.remaining as u64,
        skipped: p.skipped as u64,
        tampered: p.tampered as u64,
        slices: p.slices as u64,
        scrub_device_ns: wire_ns(p.scrub_device_ns),
    }
}

impl SeroFs {
    /// Executes one wire [`Request`] and returns its [`Response`].
    ///
    /// Never fails: every error becomes [`Response::Error`] with a
    /// wire-stable [`ErrorCode`] and the originating error's `Display`
    /// text. See the [module docs](crate::serve) for the semantics that
    /// differ from the typed methods (tamper evidence as an error code,
    /// clock advance on throttled scrub ticks).
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Create { name, data, class } => {
                match self.create(&name, &data, class_of(class)) {
                    Ok(ino) => Response::Created { ino },
                    Err(e) => Response::Error(e.into()),
                }
            }
            Request::Read { name } => match self.read(&name) {
                Ok(bytes) => Response::Data { bytes },
                Err(e) => Response::Error(e.into()),
            },
            Request::Write { name, data, class } => {
                match self.write(&name, &data, class_of(class)) {
                    Ok(()) => Response::Written,
                    Err(e) => Response::Error(e.into()),
                }
            }
            Request::Remove { name } => match self.remove(&name) {
                Ok(()) => Response::Removed,
                Err(e) => Response::Error(e.into()),
            },
            Request::Stat { name } => match self.stat(&name) {
                Ok(info) => Response::Stat(WireFileInfo {
                    ino: info.ino,
                    size: info.size,
                    blocks: info.blocks as u64,
                    mtime: info.mtime,
                    heated: info.heated.map(Into::into),
                    degraded: info.degraded,
                }),
                Err(e) => Response::Error(e.into()),
            },
            Request::List { cursor, limit } => self.handle_list(cursor.as_deref(), limit),
            Request::Heat {
                name,
                metadata,
                timestamp,
            } => match self.heat(&name, metadata, timestamp) {
                Ok(line) => Response::Heated { line: line.into() },
                Err(e) => Response::Error(e.into()),
            },
            Request::Verify { name } => match self.verify(&name) {
                Ok(VerifyOutcome::Intact { payload }) => Response::Verified(WireVerdict::Intact {
                    line: payload.line().into(),
                    digest: payload.digest().as_bytes().to_vec(),
                    timestamp: payload.timestamp(),
                    metadata: payload.metadata().to_vec(),
                }),
                Ok(VerifyOutcome::NotHeated) => Response::Verified(WireVerdict::NotHeated),
                Ok(VerifyOutcome::Tampered(report)) => {
                    Response::Error(WireError::new(ErrorCode::TamperDetected, report))
                }
                Err(e) => Response::Error(e.into()),
            },
            Request::ScrubStart {
                budget_ns,
                quantum_ns,
                incremental,
            } => self.handle_scrub_start(budget_ns, quantum_ns, incremental),
            Request::ScrubTick => self.handle_scrub_tick(),
            Request::ScrubStatus => Response::ScrubState {
                status: self.service_scrub.as_ref().map(wire_status),
            },
            Request::FleetStatus => Response::FleetStatus {
                members: vec![self.member_status(0)],
            },
            Request::RawWrite { pba, data } => {
                let sector: &[u8; SECTOR_DATA_BYTES] = match data.as_slice().try_into() {
                    Ok(s) => s,
                    Err(_) => {
                        return Response::Error(WireError::new(
                            ErrorCode::InvalidArgument,
                            format!(
                                "raw write wants exactly {SECTOR_DATA_BYTES} bytes, got {}",
                                data.len()
                            ),
                        ))
                    }
                };
                match self.device_mut().probe_mut().mws(pba, sector) {
                    Ok(_) => Response::RawWritten,
                    Err(e) => Response::Error(WireError::new(ErrorCode::SectorIo, e)),
                }
            }
        }
    }

    /// One page of the listing: names after `cursor` (exclusive), capped
    /// by `limit` (0 = no caller cap) and by a byte budget of half the
    /// frame payload limit — so the encoded [`Response::Names`] can never
    /// trip the frame encoder no matter how many files exist.
    fn handle_list(&mut self, cursor: Option<&str>, limit: u32) -> Response {
        const PAGE_BYTE_BUDGET: usize = sero_proto::MAX_PAYLOAD_BYTES / 2;
        let all = self.list();
        let start = match cursor {
            // Names are listed in sorted order, so the resume point is a
            // partition, not a scan for an exact match — a name removed
            // between pages does not strand the cursor.
            Some(c) => all.partition_point(|n| n.as_str() <= c),
            None => 0,
        };
        let mut names = Vec::new();
        let mut bytes = 0usize;
        for name in &all[start..] {
            if limit != 0 && names.len() as u32 >= limit {
                break;
            }
            bytes += 4 + name.len();
            if bytes > PAGE_BYTE_BUDGET && !names.is_empty() {
                break;
            }
            names.push(name.clone());
        }
        let next = if start + names.len() < all.len() {
            names.last().cloned()
        } else {
            None
        };
        Response::Names { names, next }
    }

    fn handle_scrub_start(
        &mut self,
        budget_ns: u64,
        quantum_ns: u64,
        incremental: bool,
    ) -> Response {
        if let Some(sched) = &self.service_scrub {
            if !matches!(sched.state(), SchedState::Complete | SchedState::Cancelled) {
                return Response::Error(WireError::new(
                    ErrorCode::ScrubActive,
                    format!(
                        "a scrub pass toward epoch {} is already {:?}",
                        sched.progress().epoch,
                        sched.state()
                    ),
                ));
            }
        }
        let mut config = if budget_ns == 0 && quantum_ns == 0 {
            SchedConfig::greedy()
        } else if quantum_ns == 0 {
            match SchedConfig::slice_budget(budget_ns) {
                Ok(c) => c,
                Err(e) => return Response::Error(e.into()),
            }
        } else {
            match SchedConfig::budgeted(budget_ns, quantum_ns) {
                Ok(c) => c,
                Err(e) => return Response::Error(e.into()),
            }
        };
        config.scrub = ScrubConfig {
            mode: if incremental {
                ScrubMode::Incremental
            } else {
                ScrubMode::Full
            },
            ..config.scrub
        };
        let sched = ScrubScheduler::start(self.device(), config);
        let p = sched.progress();
        let response = Response::ScrubStarted {
            epoch: p.epoch,
            incremental,
            pending: p.remaining as u64,
            skipped: p.skipped as u64,
        };
        self.service_scrub = Some(sched);
        response
    }

    fn handle_scrub_tick(&mut self) -> Response {
        self.scrub_tick_locked(None)
    }

    /// [`handle_scrub_tick`](Self::handle) with an optional line-lock
    /// table: [`ConcurrentFs`](crate::concurrent::ConcurrentFs) passes
    /// its shared table so the slice runs under the reader-writer line
    /// discipline ([`ScrubScheduler::run_slice_locked`]) and defers lines
    /// other holders have pinned instead of blocking on them.
    pub(crate) fn scrub_tick_locked(&mut self, locks: Option<&LineLockTable>) -> Response {
        let mut sched = match self.service_scrub.take() {
            Some(s) => s,
            None => {
                return Response::Error(WireError::new(
                    ErrorCode::NoScrub,
                    "no scrub pass has been started",
                ))
            }
        };
        let slice = match locks {
            Some(table) => sched.run_slice_locked(self.device_mut(), table),
            None => sched.run_slice(self.device_mut()),
        };
        let outcome = match slice {
            Ok(o) => o,
            Err(e) => {
                self.service_scrub = Some(sched);
                return Response::Error(e.into());
            }
        };
        let wire_outcome = match outcome {
            SliceOutcome::Ran { lines, device_ns } => WireSliceOutcome::Ran {
                lines: lines as u64,
                device_ns: wire_ns(device_ns),
            },
            SliceOutcome::Throttled { resume_at_ns } => {
                // Idle until the next quantum opens (see the module docs):
                // without this a remote driver spins on Throttled forever,
                // because nothing else charges the simulated clock.
                let now = self.device().probe().clock().elapsed_ns();
                if resume_at_ns > now {
                    self.device_mut()
                        .probe_mut()
                        .advance_clock(wire_ns(resume_at_ns - now));
                }
                WireSliceOutcome::Throttled {
                    resume_at_ns: wire_ns(resume_at_ns),
                }
            }
            SliceOutcome::Paused => WireSliceOutcome::Paused,
            SliceOutcome::Idle => WireSliceOutcome::Idle,
        };
        let status = wire_status(&sched);
        self.service_scrub = Some(sched);
        Response::ScrubTicked {
            outcome: wire_outcome,
            status,
        }
    }

    fn member_status(&self, member: u32) -> WireMemberStatus {
        let dev = self.device();
        let stats = dev.stats();
        let probe = dev.load_probe();
        let flagged = dev.heated_lines().filter(|r| r.flagged).count() as u64;
        WireMemberStatus {
            member,
            total_blocks: stats.total_blocks,
            read_only_blocks: stats.read_only_blocks,
            wmrm_blocks: stats.wmrm_blocks,
            heated_lines: stats.heated_lines as u64,
            flagged_lines: flagged,
            scrub_epoch: dev.scrub_epoch(),
            arrivals: probe.arrivals(),
            ewma_gap_ns: probe.ewma_gap_ns(),
            ewma_busy_ns: probe.ewma_busy_ns(),
            utilization_ppm: (probe.utilization() * 1_000_000.0) as u32,
            device_clock_ns: wire_ns(dev.probe().clock().elapsed_ns()),
            quarantined_blocks: dev.quarantined_count(),
            degraded: dev.is_degraded(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FsConfig;
    use sero_core::device::SeroDevice;

    fn fresh(blocks: u64) -> SeroFs {
        SeroFs::format(SeroDevice::with_blocks(blocks), FsConfig::default()).unwrap()
    }

    fn create(fs: &mut SeroFs, name: &str, data: &[u8]) {
        let resp = fs.handle(Request::Create {
            name: name.into(),
            data: data.to_vec(),
            class: WireClass::Archival,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }

    #[test]
    fn command_crud_round_trip() {
        let mut fs = fresh(256);
        assert_eq!(fs.handle(Request::Ping), Response::Pong);
        create(&mut fs, "a.txt", b"hello");
        assert_eq!(
            fs.handle(Request::Read {
                name: "a.txt".into()
            }),
            Response::Data {
                bytes: b"hello".to_vec()
            }
        );
        assert_eq!(
            fs.handle(Request::Write {
                name: "a.txt".into(),
                data: b"rewritten".to_vec(),
                class: WireClass::Normal,
            }),
            Response::Written
        );
        match fs.handle(Request::Stat {
            name: "a.txt".into(),
        }) {
            Response::Stat(info) => {
                assert_eq!(info.size, 9);
                assert_eq!(info.heated, None);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            fs.handle(Request::list_all()),
            Response::Names {
                names: vec!["a.txt".into()],
                next: None,
            }
        );
        assert_eq!(
            fs.handle(Request::Remove {
                name: "a.txt".into()
            }),
            Response::Removed
        );
        match fs.handle(Request::Read {
            name: "a.txt".into(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::NotFound),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_wire_codes_and_display_text() {
        let mut fs = fresh(256);
        create(&mut fs, "frozen", &[7u8; 900]);
        match fs.handle(Request::Heat {
            name: "frozen".into(),
            metadata: b"audit".to_vec(),
            timestamp: 11,
        }) {
            Response::Heated { line } => assert!(line.to_line().is_ok()),
            other => panic!("{other:?}"),
        }
        match fs.handle(Request::Write {
            name: "frozen".into(),
            data: b"x".to_vec(),
            class: WireClass::Normal,
        }) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::ReadOnlyFile);
                assert!(e.detail.contains("frozen"), "{}", e.detail);
            }
            other => panic!("{other:?}"),
        }
        match fs.handle(Request::Remove {
            name: "frozen".into(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ReadOnlyFile),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verify_reports_intact_not_heated_and_tampered() {
        let mut fs = fresh(256);
        create(&mut fs, "live", b"mutable");
        create(&mut fs, "vault", &[3u8; 1200]);
        fs.handle(Request::Heat {
            name: "vault".into(),
            metadata: b"case-7".to_vec(),
            timestamp: 99,
        });

        assert_eq!(
            fs.handle(Request::Verify {
                name: "live".into()
            }),
            Response::Verified(WireVerdict::NotHeated)
        );
        match fs.handle(Request::Verify {
            name: "vault".into(),
        }) {
            Response::Verified(WireVerdict::Intact {
                timestamp,
                metadata,
                ..
            }) => {
                assert_eq!(timestamp, 99);
                assert_eq!(metadata, b"case-7");
            }
            other => panic!("{other:?}"),
        }

        // Tamper through the raw interface; detection crosses as an error
        // code carrying the report text, never as a success shape.
        let line = fs.stat("vault").unwrap().heated.unwrap();
        assert_eq!(
            fs.handle(Request::RawWrite {
                pba: line.start() + 2,
                data: vec![0xEE; SECTOR_DATA_BYTES],
            }),
            Response::RawWritten
        );
        match fs.handle(Request::Verify {
            name: "vault".into(),
        }) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::TamperDetected);
                assert!(e.detail.contains("TAMPER EVIDENCE"), "{}", e.detail);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn raw_write_validates_sector_size() {
        let mut fs = fresh(256);
        match fs.handle(Request::RawWrite {
            pba: 40,
            data: vec![1, 2, 3],
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scrub_over_commands_ticks_to_completion() {
        let mut fs = fresh(512);
        for i in 0..4 {
            create(&mut fs, &format!("f{i}"), &[i as u8 + 1; 1100]);
            fs.handle(Request::Heat {
                name: format!("f{i}"),
                metadata: vec![],
                timestamp: i as u64,
            });
        }

        match fs.handle(Request::ScrubTick) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::NoScrub),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            fs.handle(Request::ScrubStatus),
            Response::ScrubState { status: None }
        );

        // A budgeted incremental pass, driven entirely over commands. The
        // tight budget forces Throttled outcomes; the handler's clock
        // advance keeps the loop terminating.
        match fs.handle(Request::ScrubStart {
            budget_ns: 200_000,
            quantum_ns: 1_000_000,
            incremental: true,
        }) {
            Response::ScrubStarted { epoch, pending, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(pending, 4);
            }
            other => panic!("{other:?}"),
        }
        // A second start while running is refused.
        match fs.handle(Request::ScrubStart {
            budget_ns: 0,
            quantum_ns: 0,
            incremental: false,
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ScrubActive),
            other => panic!("{other:?}"),
        }

        let mut throttled = 0;
        for _ in 0..200 {
            match fs.handle(Request::ScrubTick) {
                Response::ScrubTicked { outcome, status } => {
                    if let WireSliceOutcome::Throttled { .. } = outcome {
                        throttled += 1;
                    }
                    if status.state == WireSchedState::Complete {
                        assert_eq!(status.verified, 4);
                        assert_eq!(status.tampered, 0);
                        break;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(throttled > 0, "tight budget should throttle at least once");
        match fs.handle(Request::ScrubStatus) {
            Response::ScrubState { status: Some(s) } => {
                assert_eq!(s.state, WireSchedState::Complete);
                assert_eq!(s.epoch, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(fs.device().scrub_epoch(), 1);

        // A completed pass no longer blocks the next one.
        match fs.handle(Request::ScrubStart {
            budget_ns: 0,
            quantum_ns: 0,
            incremental: true,
        }) {
            Response::ScrubStarted { epoch, .. } => assert_eq!(epoch, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scrub_start_rejects_bad_budgets() {
        let mut fs = fresh(256);
        match fs.handle(Request::ScrubStart {
            budget_ns: 2_000_000,
            quantum_ns: 1_000_000,
            incremental: false,
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BudgetExceedsQuantum),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fleet_status_reports_capacity_and_evidence() {
        let mut fs = fresh(256);
        create(&mut fs, "a", &[1u8; 600]);
        fs.handle(Request::Heat {
            name: "a".into(),
            metadata: vec![],
            timestamp: 0,
        });
        match fs.handle(Request::FleetStatus) {
            Response::FleetStatus { members } => {
                assert_eq!(members.len(), 1);
                let m = &members[0];
                assert_eq!(m.member, 0);
                assert_eq!(m.total_blocks, 256);
                assert_eq!(m.heated_lines, 1);
                assert!(m.read_only_blocks > 0);
                assert_eq!(m.total_blocks, m.read_only_blocks + m.wmrm_blocks);
                assert!(m.device_clock_ns > 0);
            }
            other => panic!("{other:?}"),
        }
    }
}
