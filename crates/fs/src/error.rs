//! File-system error type.

use core::fmt;
use sero_core::device::SeroError;
use sero_core::line::Line;

/// Errors surfaced by the SERO file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// A device-layer failure.
    Device(SeroError),
    /// No such file.
    NotFound {
        /// The missing name.
        name: String,
    },
    /// A file with this name already exists.
    Exists {
        /// The conflicting name.
        name: String,
    },
    /// The file is protected by a heated line; the operation would alter
    /// history.
    ReadOnlyFile {
        /// The file's name.
        name: String,
        /// The protecting line.
        line: Line,
    },
    /// Not enough contiguous free space (after cleaning) for the request.
    NoSpace {
        /// Blocks requested.
        needed: u64,
        /// Free blocks remaining (possibly fragmented).
        free: u64,
    },
    /// File exceeds the maximum supported size.
    FileTooLarge {
        /// Requested size in bytes.
        size: usize,
        /// Maximum supported size in bytes.
        max: usize,
    },
    /// Name rejected (empty or longer than an inode can embed).
    BadName {
        /// The rejected name.
        name: String,
    },
    /// On-disk structure failed to parse during mount or recovery.
    Corrupt {
        /// What failed.
        reason: String,
    },
    /// The checkpoint no longer fits its fixed block region. Nothing was
    /// written — the previous checkpoint on the device stays intact. For
    /// a namespace this large, format with [`crate::fs::FsConfig::indexed`]
    /// (`crate::fs::FsConfig::indexed`) so directory and inode metadata
    /// live in the scalable index instead of the checkpoint.
    CheckpointOverflow {
        /// Bytes the checkpoint needs.
        bytes: usize,
        /// Bytes the region holds.
        capacity: usize,
    },
    /// The file system is in degraded mode — some blocks are quarantined
    /// after persistent device faults — so mutating operations are
    /// refused. Reads, `stat`, `list`, and verification keep working.
    Degraded {
        /// Number of quarantined blocks behind the refusal.
        quarantined_blocks: u64,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Device(e) => write!(f, "device error: {e}"),
            FsError::NotFound { name } => write!(f, "no such file: {name:?}"),
            FsError::Exists { name } => write!(f, "file exists: {name:?}"),
            FsError::ReadOnlyFile { name, line } => {
                write!(
                    f,
                    "file {name:?} is heated ({line}); history cannot be altered"
                )
            }
            FsError::NoSpace { needed, free } => {
                write!(f, "no space: need {needed} contiguous blocks, {free} free")
            }
            FsError::FileTooLarge { size, max } => {
                write!(f, "file of {size} bytes exceeds maximum {max}")
            }
            FsError::BadName { name } => write!(f, "bad file name {name:?}"),
            FsError::Corrupt { reason } => write!(f, "corrupt file system: {reason}"),
            FsError::CheckpointOverflow { bytes, capacity } => {
                write!(
                    f,
                    "checkpoint of {bytes} bytes exceeds its {capacity}-byte region; \
                     the previous checkpoint is untouched — reformat with an indexed \
                     configuration to scale the namespace"
                )
            }
            FsError::Degraded { quarantined_blocks } => {
                write!(
                    f,
                    "degraded mode: {quarantined_blocks} quarantined blocks; writes refused, reads and verify still served"
                )
            }
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeroError> for FsError {
    fn from(e: SeroError) -> FsError {
        FsError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let line = Line::new(0, 1).unwrap();
        let all = [
            FsError::NotFound { name: "x".into() },
            FsError::Exists { name: "x".into() },
            FsError::ReadOnlyFile {
                name: "x".into(),
                line,
            },
            FsError::NoSpace { needed: 8, free: 2 },
            FsError::FileTooLarge { size: 1, max: 0 },
            FsError::BadName {
                name: String::new(),
            },
            FsError::Corrupt { reason: "r".into() },
            FsError::CheckpointOverflow {
                bytes: 9000,
                capacity: 8184,
            },
            FsError::Degraded {
                quarantined_blocks: 1,
            },
        ];
        for e in all {
            assert!(!format!("{e}").is_empty());
        }
    }
}
