//! [`ConcurrentFs`]: the re-entrant, multi-caller command path.
//!
//! [`SeroFs::handle`] is `&mut self` — one caller at a time. This module
//! wraps it in a **flat-combining** front end so any number of threads can
//! call [`ConcurrentFs::handle`] concurrently:
//!
//! 1. A caller stages its request in the shared ingress mailbox and gets a
//!    sequence number.
//! 2. Whichever caller wins the `try_lock` on the file system becomes the
//!    **combiner**: it drains the mailbox, executes *everyone's* requests
//!    (not just its own), publishes the responses, and wakes the waiters.
//!    Losers wait on the publication condvar instead of contending for
//!    the device.
//!
//! The payoff is not just lock-contention hygiene: because the combiner
//! sees a whole queue at once, it feeds runs of read-class requests
//! (`Read`, `Verify`) through the admission scheduler
//! ([`sero_core::admission`]) — per-region staging queues drained in one
//! elevator sweep, coalesced into bulk extent transfers. Queue depth is
//! what finally makes the PR 2–3 one-seek-per-extent machinery pay off
//! under load: eight concurrent readers cost roughly one sled pass, not
//! eight scattered seeks. `exp_concurrency` pins the ratio.
//!
//! # Ordering and equivalence
//!
//! The combiner induces a total order: mailbox arrival order, with runs
//! of consecutive read-class requests executed as one admission batch
//! (whose batch order *is* its serialized schedule — see
//! [`sero_core::admission`]). Every response and every registry side
//! effect is equivalent to executing the induced schedule one request at
//! a time through [`SeroFs::handle`]; the `concurrency_props` proptests
//! assert byte-identical tamper evidence between the two. Requests from
//! different threads carry no cross-thread ordering promises beyond
//! linearizability — the induced schedule is one valid interleaving.
//!
//! # Scrub and the line-lock discipline
//!
//! Scrub ticks arriving through `handle` run
//! [`ScrubScheduler::run_slice_locked`] against the shared
//! [`LineLockTable`] (see [`ConcurrentFs::line_locks`]): every line the
//! slice verifies is `try_read`-locked for the duration, and a line some
//! other holder has pinned is deferred to a later slice — never waited
//! on, because the combiner already holds the device and the ordering
//! discipline ([`sero_core::locks`]) forbids blocking upward. External
//! holders (an auditor pinning a line mid-verification, a future async
//! reactor mutating one) take locks through [`ConcurrentFs::line_locks`]
//! *without* holding the device, so they may block freely.
//!
//! [`ScrubScheduler::run_slice_locked`]: sero_core::sched::ScrubScheduler::run_slice_locked
//!
//! # Examples
//!
//! ```
//! use sero_fs::concurrent::ConcurrentFs;
//! use sero_fs::fs::{FsConfig, SeroFs};
//! use sero_core::device::SeroDevice;
//! use sero_proto::{Request, Response, WireClass};
//! use std::thread;
//!
//! let fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default())?;
//! let cfs = ConcurrentFs::new(fs);
//! cfs.handle(Request::Create {
//!     name: "shared.dat".into(),
//!     data: vec![7; 1500],
//!     class: WireClass::Archival,
//! });
//!
//! // Any number of threads share one ConcurrentFs by cloning it.
//! let readers: Vec<_> = (0..4)
//!     .map(|_| {
//!         let cfs = cfs.clone();
//!         thread::spawn(move || {
//!             cfs.handle(Request::Read { name: "shared.dat".into() })
//!         })
//!     })
//!     .collect();
//! for reader in readers {
//!     assert!(matches!(reader.join().unwrap(), Response::Data { bytes } if bytes.len() == 1500));
//! }
//! # Ok::<(), sero_fs::error::FsError>(())
//! ```

use crate::error::FsError;
use crate::fs::SeroFs;
use sero_core::admission::{AdmissionQueues, AdmissionStats, FgOp, FgResult, Ticket};
use sero_core::locks::LineLockTable;
use sero_core::tamper::VerifyOutcome;
use sero_proto::{ErrorCode, Request, Response, WireError, WireVerdict};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::time::Duration;

/// Sequence number of a staged request in the ingress mailbox.
type Seq = u64;

/// How long a losing caller waits on the publication condvar before
/// re-checking the combiner lock. Purely a liveness backstop against a
/// missed wakeup; the condvar fires on every publication.
const WAIT_SLICE: Duration = Duration::from_millis(2);

/// The region count for the admission queues: enough shards that an
/// elevator sweep over a loaded queue approximates an ascending pass.
const ADMISSION_REGIONS: u32 = 8;

/// The combiner-protected state: the file system plus its admission
/// queues (only ever touched while holding the same lock).
struct Core {
    fs: SeroFs,
    admission: AdmissionQueues,
}

struct Ingress {
    next_seq: Seq,
    staged: VecDeque<(Seq, Request)>,
}

struct Shared {
    core: Mutex<Core>,
    ingress: Mutex<Ingress>,
    done: Mutex<HashMap<Seq, Response>>,
    published: Condvar,
    locks: LineLockTable,
}

/// A cloneable, thread-safe handle to one [`SeroFs`]. See the
/// [module docs](self) for the combining model.
#[derive(Clone)]
pub struct ConcurrentFs {
    shared: Arc<Shared>,
}

fn lock_ignoring_poison<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A poisoning panic happened mid-request on some other thread. The
    // evidence machinery lives on the device and every registry update is
    // applied atomically under this lock, so keep serving rather than
    // going dark — the same call the daemon made on its old global mutex.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ConcurrentFs {
    /// Wraps `fs` for concurrent callers.
    pub fn new(fs: SeroFs) -> ConcurrentFs {
        let blocks = fs.device().block_count();
        ConcurrentFs {
            shared: Arc::new(Shared {
                core: Mutex::new(Core {
                    fs,
                    admission: AdmissionQueues::new(blocks, ADMISSION_REGIONS),
                }),
                ingress: Mutex::new(Ingress {
                    next_seq: 0,
                    staged: VecDeque::new(),
                }),
                done: Mutex::new(HashMap::new()),
                published: Condvar::new(),
                locks: LineLockTable::new(),
            }),
        }
    }

    /// The shared line-lock table. External verification pins (and the
    /// future async reactor) acquire here *without* holding the device;
    /// scrub slices inside the combiner `try_read` against it and defer
    /// contended lines.
    pub fn line_locks(&self) -> &LineLockTable {
        &self.shared.locks
    }

    /// Admission merge counters so far (blocks deduplicated, ops merged,
    /// fallbacks) — the observable proof that queue depth turned into
    /// bulk transfers.
    pub fn admission_stats(&self) -> AdmissionStats {
        lock_ignoring_poison(&self.shared.core).admission.stats()
    }

    /// Runs `f` with exclusive access to the underlying [`SeroFs`] — the
    /// maintenance hatch for embedders (mount-time checks, tests,
    /// benchmarks). Blocks until in-flight combining finishes; staged
    /// requests stay staged and are served by the next combiner.
    pub fn with_fs<R>(&self, f: impl FnOnce(&mut SeroFs) -> R) -> R {
        f(&mut lock_ignoring_poison(&self.shared.core).fs)
    }

    /// Unwraps the inner [`SeroFs`] when this is the last clone, handing
    /// `self` back otherwise.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` while other clones (other worker threads) are
    /// still alive.
    pub fn try_into_fs(self) -> Result<SeroFs, ConcurrentFs> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared
                .core
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .fs),
            Err(shared) => Err(ConcurrentFs { shared }),
        }
    }

    /// Executes one wire [`Request`] and returns its [`Response`] — the
    /// re-entrant form of [`SeroFs::handle`], safe to call from any
    /// number of threads on clones of one `ConcurrentFs`. Semantics are
    /// identical to `SeroFs::handle` (same validation, same error codes,
    /// same tamper-evidence shape); see the [module docs](self) for the
    /// induced ordering.
    pub fn handle(&self, request: Request) -> Response {
        let seq = {
            let mut ingress = lock_ignoring_poison(&self.shared.ingress);
            let seq = ingress.next_seq;
            ingress.next_seq += 1;
            ingress.staged.push_back((seq, request));
            seq
        };
        loop {
            if let Some(response) = lock_ignoring_poison(&self.shared.done).remove(&seq) {
                return response;
            }
            match self.shared.core.try_lock() {
                Ok(mut core) => self.combine(&mut core),
                Err(TryLockError::Poisoned(poisoned)) => self.combine(&mut poisoned.into_inner()),
                Err(TryLockError::WouldBlock) => {
                    // Someone else is combining. Wait for a publication;
                    // the timeout only guards the race where it published
                    // before this thread started waiting.
                    let done = lock_ignoring_poison(&self.shared.done);
                    if !done.contains_key(&seq) {
                        let _ = self
                            .shared
                            .published
                            .wait_timeout(done, WAIT_SLICE)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                }
            }
        }
    }

    /// Enqueues several requests, then combines until all of them have
    /// responses — `handle` at a controlled queue depth from one thread.
    /// This is how the deterministic benches and proptests model `n`
    /// clients arriving within one combining window.
    pub fn handle_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let seqs: Vec<Seq> = {
            let mut ingress = lock_ignoring_poison(&self.shared.ingress);
            requests
                .into_iter()
                .map(|request| {
                    let seq = ingress.next_seq;
                    ingress.next_seq += 1;
                    ingress.staged.push_back((seq, request));
                    seq
                })
                .collect()
        };
        self.combine(&mut lock_ignoring_poison(&self.shared.core));
        let mut done = lock_ignoring_poison(&self.shared.done);
        seqs.iter()
            .map(|seq| {
                done.remove(seq)
                    .expect("combiner resolved every staged seq")
            })
            .collect()
    }

    /// The combiner: drains the mailbox and executes everything staged,
    /// repeatedly, until an empty sweep; publishes responses after each
    /// sweep. Runs of consecutive read-class requests go through the
    /// admission scheduler as one batch; everything else executes through
    /// [`SeroFs::handle`] in arrival order.
    fn combine(&self, core: &mut Core) {
        loop {
            let arrivals: Vec<(Seq, Request)> = {
                let mut ingress = lock_ignoring_poison(&self.shared.ingress);
                ingress.staged.drain(..).collect()
            };
            if arrivals.is_empty() {
                return;
            }
            let mut results: Vec<(Seq, Response)> = Vec::with_capacity(arrivals.len());
            let mut run: Vec<(Seq, Request)> = Vec::new();
            for (seq, request) in arrivals {
                if mergeable(&request) {
                    run.push((seq, request));
                    continue;
                }
                self.flush_read_run(core, &mut run, &mut results);
                let response = match request {
                    Request::ScrubTick => core.fs.scrub_tick_locked(Some(&self.shared.locks)),
                    other => core.fs.handle(other),
                };
                results.push((seq, response));
            }
            self.flush_read_run(core, &mut run, &mut results);
            {
                let mut done = lock_ignoring_poison(&self.shared.done);
                done.extend(results);
            }
            self.shared.published.notify_all();
        }
    }

    /// Translates a run of read-class requests into admission ops, drains
    /// them as one elevator batch, and maps the results back to wire
    /// responses.
    fn flush_read_run(
        &self,
        core: &mut Core,
        run: &mut Vec<(Seq, Request)>,
        results: &mut Vec<(Seq, Response)>,
    ) {
        enum Plan {
            /// Waiting on an admission result; for reads, the file size to
            /// truncate the concatenated sectors to.
            Admitted(Ticket, Option<usize>),
            /// Resolved at translation time (lookup failures, unheated
            /// verifies).
            Now(Response),
        }

        let run = std::mem::take(run);
        if run.is_empty() {
            return;
        }
        let mut plans: Vec<(Seq, Plan)> = Vec::with_capacity(run.len());
        for (seq, request) in run {
            let plan = match request {
                Request::Read { name } => match lookup(&core.fs, &name) {
                    Ok(inode) => {
                        let pbas = inode.blocks.clone();
                        let size = inode.size as usize;
                        core.fs.stats.blocks_read += pbas.len() as u64;
                        Plan::Admitted(core.admission.submit(FgOp::Read { pbas }), Some(size))
                    }
                    Err(e) => Plan::Now(Response::Error(e.into())),
                },
                Request::Verify { name } => match lookup(&core.fs, &name) {
                    Ok(inode) => match inode.heated {
                        Some(line) => {
                            Plan::Admitted(core.admission.submit(FgOp::Verify { line }), None)
                        }
                        None => Plan::Now(Response::Verified(WireVerdict::NotHeated)),
                    },
                    Err(e) => Plan::Now(Response::Error(e.into())),
                },
                other => unreachable!("only read-class requests are staged: {other:?}"),
            };
            plans.push((seq, plan));
        }

        let sled = core
            .admission
            .region_map()
            .region_of(core.fs.dev.probe().position_block());
        let batch = core.admission.take_batch(sled);
        let mut outcomes: HashMap<Ticket, FgResult> = core
            .admission
            .execute_batch(&mut core.fs.dev, batch)
            .into_iter()
            .collect();

        for (seq, plan) in plans {
            let response = match plan {
                Plan::Now(response) => response,
                Plan::Admitted(ticket, size) => {
                    let outcome = outcomes
                        .remove(&ticket)
                        .expect("execute_batch resolves every staged ticket");
                    admitted_response(outcome, size)
                }
            };
            results.push((seq, response));
        }
    }
}

fn mergeable(request: &Request) -> bool {
    matches!(request, Request::Read { .. } | Request::Verify { .. })
}

fn lookup<'a>(fs: &'a SeroFs, name: &str) -> Result<&'a crate::inode::Inode, FsError> {
    let ino = fs.directory.get(name).ok_or_else(|| FsError::NotFound {
        name: name.to_string(),
    })?;
    fs.inodes.get(ino).ok_or_else(|| FsError::Corrupt {
        reason: format!("directory names ino {ino} with no inode"),
    })
}

/// Maps an admission outcome to the wire response [`SeroFs::handle`]
/// would have produced for the same operation.
fn admitted_response(outcome: FgResult, size: Option<usize>) -> Response {
    match outcome {
        FgResult::Data(sectors) => {
            let size = size.expect("reads carry their size");
            let mut bytes =
                Vec::with_capacity(sectors.len() * sectors.first().map_or(0, |s| s.len()));
            for sector in &sectors {
                bytes.extend_from_slice(sector);
            }
            bytes.truncate(size);
            Response::Data { bytes }
        }
        FgResult::Verified(VerifyOutcome::Intact { payload }) => {
            Response::Verified(WireVerdict::Intact {
                line: payload.line().into(),
                digest: payload.digest().as_bytes().to_vec(),
                timestamp: payload.timestamp(),
                metadata: payload.metadata().to_vec(),
            })
        }
        FgResult::Verified(VerifyOutcome::NotHeated) => Response::Verified(WireVerdict::NotHeated),
        FgResult::Verified(VerifyOutcome::Tampered(report)) => {
            Response::Error(WireError::new(ErrorCode::TamperDetected, report))
        }
        FgResult::Failed(e) => Response::Error(WireError::from(e)),
        FgResult::Written | FgResult::Heated(_) => {
            unreachable!("the combiner only admits reads and verifies")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FsConfig;
    use sero_core::device::SeroDevice;
    use sero_probe::sector::SECTOR_DATA_BYTES;
    use sero_proto::{WireClass, WireSchedState, WireSliceOutcome};
    use std::thread;

    fn fresh(blocks: u64) -> ConcurrentFs {
        ConcurrentFs::new(
            SeroFs::format(SeroDevice::with_blocks(blocks), FsConfig::default()).unwrap(),
        )
    }

    fn create(cfs: &ConcurrentFs, name: &str, data: &[u8]) {
        let resp = cfs.handle(Request::Create {
            name: name.into(),
            data: data.to_vec(),
            class: WireClass::Archival,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }

    #[test]
    fn single_caller_matches_serofs_semantics() {
        let cfs = fresh(256);
        assert_eq!(cfs.handle(Request::Ping), Response::Pong);
        create(&cfs, "a", b"payload");
        assert_eq!(
            cfs.handle(Request::Read { name: "a".into() }),
            Response::Data {
                bytes: b"payload".to_vec()
            }
        );
        match cfs.handle(Request::Read {
            name: "nope".into(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::NotFound),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            cfs.handle(Request::Verify { name: "a".into() }),
            Response::Verified(WireVerdict::NotHeated)
        );
    }

    #[test]
    fn staged_batch_merges_reads_and_matches_serial_responses() {
        let cfs = fresh(512);
        for i in 0..6 {
            create(&cfs, &format!("f{i}"), &[i as u8; 1200]);
        }
        let requests: Vec<Request> = (0..6)
            .map(|i| Request::Read {
                name: format!("f{i}"),
            })
            .collect();
        let batched = cfs.handle_batch(requests.clone());

        let serial = fresh(512);
        for i in 0..6 {
            create(&serial, &format!("f{i}"), &[i as u8; 1200]);
        }
        let one_by_one: Vec<Response> = requests.into_iter().map(|r| serial.handle(r)).collect();
        assert_eq!(batched, one_by_one);
        assert!(
            cfs.admission_stats().reads_merged >= 6,
            "{:?}",
            cfs.admission_stats()
        );
    }

    #[test]
    fn concurrent_swarm_serves_every_thread() {
        let cfs = fresh(1024);
        for i in 0..8 {
            create(&cfs, &format!("f{i}"), &[i as u8; 900]);
        }
        let workers: Vec<_> = (0..8)
            .map(|i| {
                let cfs = cfs.clone();
                thread::spawn(move || {
                    for round in 0..30 {
                        let name = format!("f{}", (i + round) % 8);
                        match cfs.handle(Request::Read { name: name.clone() }) {
                            Response::Data { bytes } => {
                                assert_eq!(bytes, vec![name.as_bytes()[1] - b'0'; 900]);
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
    }

    #[test]
    fn scrub_ticks_interleave_with_concurrent_reads() {
        let cfs = fresh(1024);
        for i in 0..6 {
            create(&cfs, &format!("f{i}"), &[i as u8 + 1; 1100]);
            cfs.handle(Request::Heat {
                name: format!("f{i}"),
                metadata: vec![],
                timestamp: i,
            });
        }
        match cfs.handle(Request::ScrubStart {
            budget_ns: 500_000,
            quantum_ns: 1_000_000,
            incremental: true,
        }) {
            Response::ScrubStarted { pending, .. } => assert_eq!(pending, 6),
            other => panic!("{other:?}"),
        }

        let reader = {
            let cfs = cfs.clone();
            thread::spawn(move || {
                for round in 0..40 {
                    let name = format!("f{}", round % 6);
                    assert!(matches!(
                        cfs.handle(Request::Read { name }),
                        Response::Data { .. }
                    ));
                }
            })
        };
        let mut complete = false;
        for _ in 0..400 {
            match cfs.handle(Request::ScrubTick) {
                Response::ScrubTicked { status, .. } => {
                    if status.state == WireSchedState::Complete {
                        assert_eq!(status.verified, 6);
                        assert_eq!(status.tampered, 0);
                        complete = true;
                        break;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        reader.join().unwrap();
        assert!(complete, "budgeted pass must finish under reader traffic");
    }

    #[test]
    fn pinned_line_defers_scrub_then_completes() {
        let cfs = fresh(512);
        create(&cfs, "pinned", &[9u8; 1100]);
        let line = match cfs.handle(Request::Heat {
            name: "pinned".into(),
            metadata: vec![],
            timestamp: 1,
        }) {
            Response::Heated { line } => line.to_line().unwrap(),
            other => panic!("{other:?}"),
        };
        cfs.handle(Request::ScrubStart {
            budget_ns: 0,
            quantum_ns: 0,
            incremental: false,
        });

        // An auditor pins the line (no device held → may block-lock);
        // scrub ticks must defer it rather than deadlock.
        let guard = cfs.line_locks().write(line.start());
        match cfs.handle(Request::ScrubTick) {
            Response::ScrubTicked { outcome, status } => {
                assert_eq!(
                    outcome,
                    WireSliceOutcome::Ran {
                        lines: 0,
                        device_ns: 0
                    }
                );
                assert_eq!(status.state, WireSchedState::Running);
            }
            other => panic!("{other:?}"),
        }
        drop(guard);
        match cfs.handle(Request::ScrubTick) {
            Response::ScrubTicked { status, .. } => {
                assert_eq!(status.state, WireSchedState::Complete);
                assert_eq!(status.verified, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tamper_evidence_crosses_the_concurrent_path() {
        let cfs = fresh(512);
        create(&cfs, "vault", &[3u8; 1200]);
        let line = match cfs.handle(Request::Heat {
            name: "vault".into(),
            metadata: b"case".to_vec(),
            timestamp: 9,
        }) {
            Response::Heated { line } => line.to_line().unwrap(),
            other => panic!("{other:?}"),
        };
        assert_eq!(
            cfs.handle(Request::RawWrite {
                pba: line.start() + 1,
                data: vec![0xEE; SECTOR_DATA_BYTES],
            }),
            Response::RawWritten
        );
        match cfs.handle(Request::Verify {
            name: "vault".into(),
        }) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::TamperDetected);
                assert!(e.detail.contains("TAMPER EVIDENCE"), "{}", e.detail);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn try_into_fs_round_trips() {
        let cfs = fresh(256);
        create(&cfs, "a", b"x");
        let clone = cfs.clone();
        let cfs = match cfs.try_into_fs() {
            Err(still_shared) => still_shared,
            Ok(_) => panic!("a live clone must block the unwrap"),
        };
        drop(clone);
        let fs = cfs.try_into_fs().ok().expect("last clone unwraps");
        assert!(fs.exists("a"));
    }
}
