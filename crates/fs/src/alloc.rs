//! Block map, segment table and the clustering allocation policy.
//!
//! §4.1 of the paper: the file system should "cluster lines into segments
//! that are likely to be heated at the same time", producing "a bimodal
//! distribution of heated segments; that is we have only mostly heated
//! segments and mostly unheated segments". The allocator implements that
//! policy — and its strawman — directly:
//!
//! * [`ClusterPolicy::HeatAffinity`] — ordinary data grows from the low
//!   end of the device; heat-candidate (archival) data grows from the high
//!   end. Heated lines therefore concentrate in a few segments.
//! * [`ClusterPolicy::Naive`] — one log for everything; heated lines end
//!   up sprinkled across the whole device. Experiment EXP-FS measures the
//!   difference.
//!
//! # Examples
//!
//! ```
//! use sero_fs::alloc::{Allocator, BlockUse, ClusterPolicy, WriteClass};
//!
//! let mut alloc = Allocator::new(256, 64, 8, 0, ClusterPolicy::HeatAffinity);
//! let normal = alloc.alloc_block(WriteClass::Normal).unwrap();
//! let archival = alloc.alloc_block(WriteClass::Archival).unwrap();
//! assert!(normal < archival); // opposite ends of the device
//! alloc.set_use(normal, BlockUse::Data { ino: 1 });
//! ```

use core::fmt;
use sero_core::line::Line;

/// How the file system intends to use a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteClass {
    /// Ordinary read-write data.
    Normal,
    /// Data expected to be heated soon (snapshots, audit logs, …).
    Archival,
}

/// Allocation policy, per §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterPolicy {
    /// Route archival writes to their own region for bimodal segments.
    HeatAffinity,
    /// Ignore hints; one log for everything (the paper's implicit
    /// baseline).
    Naive,
}

/// What a block currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockUse {
    /// Unused and writable.
    Free,
    /// Live file data.
    Data {
        /// Owning inode.
        ino: u64,
    },
    /// An inode's main block.
    InodeBlock {
        /// The inode stored here.
        ino: u64,
    },
    /// An inode's indirect pointer block.
    Indirect {
        /// Owning inode.
        ino: u64,
    },
    /// The heated hash block of a line.
    HashBlock,
    /// Checkpoint region (never allocated, never cleaned).
    Checkpoint,
    /// Metadata-index region (never allocated, never cleaned). The index
    /// runs its own log-structured compaction *inside* this region; the
    /// fs cleaner must never relocate its pages.
    IndexRegion,
    /// Dead data awaiting the cleaner.
    Dead,
}

impl BlockUse {
    /// True for block states the cleaner may relocate (when unheated).
    pub fn is_movable_live(&self) -> bool {
        matches!(
            self,
            BlockUse::Data { .. } | BlockUse::InodeBlock { .. } | BlockUse::Indirect { .. }
        )
    }
}

/// Per-segment usage summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Free (writable) blocks.
    pub free: u64,
    /// Live blocks (data, inode, indirect) outside heated lines.
    pub live: u64,
    /// Dead blocks awaiting cleaning.
    pub dead: u64,
    /// Blocks pinned by heated lines (hash blocks and heated live data).
    pub heated: u64,
    /// Reserved blocks (checkpoint and metadata-index regions).
    pub reserved: u64,
}

impl SegmentInfo {
    /// Fraction of the segment pinned by heated lines.
    pub fn heated_fraction(&self) -> f64 {
        let total = self.free + self.live + self.dead + self.heated + self.reserved;
        if total == 0 {
            0.0
        } else {
            self.heated as f64 / total as f64
        }
    }
}

/// The block map and allocation state.
#[derive(Debug, Clone)]
pub struct Allocator {
    uses: Vec<BlockUse>,
    heated: Vec<bool>,
    segment_blocks: u64,
    policy: ClusterPolicy,
    normal_cursor: u64,
    archival_cursor: u64,
}

impl fmt::Display for Allocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocator[{} blocks, {} free]",
            self.uses.len(),
            self.free_blocks()
        )
    }
}

impl Allocator {
    /// Creates an allocator over `total_blocks`, with `segment_blocks` per
    /// segment, the first `checkpoint_blocks` reserved for the checkpoint,
    /// and the `index_blocks` after them reserved for the metadata index
    /// (pass 0 for an unindexed file system).
    ///
    /// # Panics
    ///
    /// Panics unless `segment_blocks` divides `total_blocks`, the
    /// checkpoint fits in the first segment, and both reserved regions
    /// fit the device.
    pub fn new(
        total_blocks: u64,
        segment_blocks: u64,
        checkpoint_blocks: u64,
        index_blocks: u64,
        policy: ClusterPolicy,
    ) -> Allocator {
        assert!(
            segment_blocks > 0 && total_blocks % segment_blocks == 0,
            "segments must tile the device"
        );
        assert!(
            checkpoint_blocks <= segment_blocks,
            "checkpoint must fit the first segment"
        );
        assert!(
            checkpoint_blocks + index_blocks <= total_blocks,
            "reserved regions must fit the device"
        );
        let mut uses = vec![BlockUse::Free; total_blocks as usize];
        for u in uses.iter_mut().take(checkpoint_blocks as usize) {
            *u = BlockUse::Checkpoint;
        }
        for u in uses
            .iter_mut()
            .skip(checkpoint_blocks as usize)
            .take(index_blocks as usize)
        {
            *u = BlockUse::IndexRegion;
        }
        Allocator {
            heated: vec![false; total_blocks as usize],
            uses,
            segment_blocks,
            policy,
            normal_cursor: checkpoint_blocks + index_blocks,
            archival_cursor: total_blocks,
        }
    }

    /// Total blocks managed.
    pub fn total_blocks(&self) -> u64 {
        self.uses.len() as u64
    }

    /// Blocks per segment.
    pub fn segment_blocks(&self) -> u64 {
        self.segment_blocks
    }

    /// Number of segments.
    pub fn segment_count(&self) -> u64 {
        self.total_blocks() / self.segment_blocks
    }

    /// The clustering policy in force.
    pub fn policy(&self) -> ClusterPolicy {
        self.policy
    }

    /// Current use of `block`.
    pub fn block_use(&self, block: u64) -> BlockUse {
        self.uses[block as usize]
    }

    /// Records what `block` now holds.
    pub fn set_use(&mut self, block: u64, new_use: BlockUse) {
        self.uses[block as usize] = new_use;
    }

    /// Marks every block of `line` as pinned by heat.
    pub fn pin_line(&mut self, line: Line) {
        for b in line.blocks() {
            self.heated[b as usize] = true;
        }
    }

    /// True when `block` lies inside a heated line.
    pub fn is_heated(&self, block: u64) -> bool {
        self.heated[block as usize]
    }

    /// Count of free blocks device-wide.
    pub fn free_blocks(&self) -> u64 {
        self.uses.iter().filter(|u| **u == BlockUse::Free).count() as u64
    }

    /// Count of dead blocks device-wide.
    pub fn dead_blocks(&self) -> u64 {
        self.uses.iter().filter(|u| **u == BlockUse::Dead).count() as u64
    }

    /// Allocates one block for `class`, without marking it used (callers
    /// call [`Allocator::set_use`] after the write lands).
    ///
    /// Under [`ClusterPolicy::HeatAffinity`], normal writes sweep up from
    /// the low end and archival writes sweep down from the high end. Under
    /// [`ClusterPolicy::Naive`] both classes share the normal sweep.
    /// Returns `None` when the sweep finds no free block — time to clean.
    pub fn alloc_block(&mut self, class: WriteClass) -> Option<u64> {
        let archival = self.policy == ClusterPolicy::HeatAffinity && class == WriteClass::Archival;
        if archival {
            // Sweep downwards.
            let mut cursor = self.archival_cursor;
            while cursor > 0 {
                cursor -= 1;
                if self.uses[cursor as usize] == BlockUse::Free {
                    self.archival_cursor = cursor;
                    return Some(cursor);
                }
            }
            None
        } else {
            let mut cursor = self.normal_cursor;
            while cursor < self.total_blocks() {
                if self.uses[cursor as usize] == BlockUse::Free {
                    self.normal_cursor = cursor + 1;
                    return Some(cursor);
                }
                cursor += 1;
            }
            // Wrap once: cleaned space may lie behind the cursor.
            let mut cursor = 0;
            while cursor < self.normal_cursor {
                if self.uses[cursor as usize] == BlockUse::Free {
                    self.normal_cursor = cursor + 1;
                    return Some(cursor);
                }
                cursor += 1;
            }
            None
        }
    }

    /// Finds a free, aligned line of 2^`order` blocks for heating. Archival
    /// affinity searches from the high end of the device.
    pub fn alloc_line(&mut self, order: u32, class: WriteClass) -> Option<Line> {
        let len = 1u64 << order;
        let slots = self.total_blocks() / len;
        let archival = self.policy == ClusterPolicy::HeatAffinity && class == WriteClass::Archival;
        let candidates: Box<dyn Iterator<Item = u64>> = if archival {
            Box::new((0..slots).rev())
        } else {
            Box::new(0..slots)
        };
        for slot in candidates {
            let start = slot * len;
            let all_free = (start..start + len).all(|b| self.uses[b as usize] == BlockUse::Free);
            if all_free {
                return Some(Line::new(start, order).expect("aligned by construction"));
            }
        }
        None
    }

    /// Per-segment usage summaries.
    pub fn segments(&self) -> Vec<SegmentInfo> {
        let mut out = vec![SegmentInfo::default(); self.segment_count() as usize];
        for (i, u) in self.uses.iter().enumerate() {
            let seg = &mut out[i / self.segment_blocks as usize];
            if self.heated[i] {
                seg.heated += 1;
                continue;
            }
            match u {
                BlockUse::Free => seg.free += 1,
                BlockUse::Dead => seg.dead += 1,
                BlockUse::Checkpoint | BlockUse::IndexRegion => seg.reserved += 1,
                _ => seg.live += 1,
            }
        }
        out
    }

    /// Blocks of `segment` in ascending order.
    pub fn segment_range(&self, segment: u64) -> core::ops::Range<u64> {
        let start = segment * self.segment_blocks;
        start..start + self.segment_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(policy: ClusterPolicy) -> Allocator {
        Allocator::new(256, 64, 8, 0, policy)
    }

    #[test]
    fn checkpoint_reserved() {
        let a = alloc(ClusterPolicy::Naive);
        for b in 0..8 {
            assert_eq!(a.block_use(b), BlockUse::Checkpoint);
        }
        assert_eq!(a.free_blocks(), 248);
    }

    #[test]
    fn affinity_separates_classes() {
        let mut a = alloc(ClusterPolicy::HeatAffinity);
        let n1 = a.alloc_block(WriteClass::Normal).unwrap();
        let n2 = a.alloc_block(WriteClass::Normal).unwrap();
        let r1 = a.alloc_block(WriteClass::Archival).unwrap();
        let r2 = a.alloc_block(WriteClass::Archival).unwrap();
        assert_eq!((n1, n2), (8, 9));
        assert_eq!((r1, r2), (255, 254));
    }

    #[test]
    fn naive_mixes_classes() {
        let mut a = alloc(ClusterPolicy::Naive);
        let n = a.alloc_block(WriteClass::Normal).unwrap();
        let r = a.alloc_block(WriteClass::Archival).unwrap();
        assert_eq!((n, r), (8, 9), "naive interleaves both classes in one log");
    }

    #[test]
    fn alloc_skips_used_blocks() {
        let mut a = alloc(ClusterPolicy::Naive);
        let b1 = a.alloc_block(WriteClass::Normal).unwrap();
        a.set_use(b1, BlockUse::Data { ino: 1 });
        let b2 = a.alloc_block(WriteClass::Normal).unwrap();
        assert_ne!(b1, b2);
    }

    #[test]
    fn alloc_wraps_to_cleaned_space() {
        let mut a = Allocator::new(64, 64, 0, 0, ClusterPolicy::Naive);
        // Fill everything.
        let mut got = Vec::new();
        while let Some(b) = a.alloc_block(WriteClass::Normal) {
            a.set_use(b, BlockUse::Data { ino: 1 });
            got.push(b);
        }
        assert_eq!(got.len(), 64);
        // Free an early block; the allocator must find it again.
        a.set_use(5, BlockUse::Free);
        assert_eq!(a.alloc_block(WriteClass::Normal), Some(5));
    }

    #[test]
    fn line_allocation_is_aligned_and_directional() {
        let mut a = alloc(ClusterPolicy::HeatAffinity);
        let archival = a.alloc_line(3, WriteClass::Archival).unwrap();
        assert_eq!(archival.start(), 248, "archival lines from the top");
        let normal = a.alloc_line(3, WriteClass::Normal).unwrap();
        assert_eq!(normal.start(), 8, "block 0..8 are checkpoint; 8 is aligned");
        assert_eq!(normal.start() % normal.len(), 0);
    }

    #[test]
    fn line_allocation_avoids_used_space() {
        let mut a = Allocator::new(64, 64, 0, 0, ClusterPolicy::Naive);
        a.set_use(2, BlockUse::Data { ino: 9 });
        let line = a.alloc_line(2, WriteClass::Archival).unwrap();
        assert_eq!(line.start(), 4, "slot 0..4 is blocked by block 2");
    }

    #[test]
    fn line_allocation_fails_when_fragmented() {
        let mut a = Allocator::new(16, 16, 0, 0, ClusterPolicy::Naive);
        // Poison one block in every 4-aligned slot.
        for s in [0u64, 4, 8, 12] {
            a.set_use(s + 1, BlockUse::Dead);
        }
        assert!(a.alloc_line(2, WriteClass::Archival).is_none());
        assert!(a.alloc_line(1, WriteClass::Archival).is_some());
    }

    #[test]
    fn segment_accounting() {
        let mut a = alloc(ClusterPolicy::Naive);
        for b in 8..20 {
            a.set_use(b, BlockUse::Data { ino: 1 });
        }
        for b in 20..24 {
            a.set_use(b, BlockUse::Dead);
        }
        let line = Line::new(32, 3).unwrap();
        a.pin_line(line);
        let segs = a.segments();
        assert_eq!(segs[0].reserved, 8);
        assert_eq!(segs[0].live, 12);
        assert_eq!(segs[0].dead, 4);
        assert_eq!(segs[0].heated, 8);
        assert_eq!(segs[0].free, 64 - 8 - 12 - 4 - 8);
        assert!((segs[0].heated_fraction() - 8.0 / 64.0).abs() < 1e-12);
        assert_eq!(segs[1].free, 64);
    }

    #[test]
    fn heated_pinning_tracked() {
        let mut a = alloc(ClusterPolicy::Naive);
        let line = Line::new(64, 2).unwrap();
        a.pin_line(line);
        for b in line.blocks() {
            assert!(a.is_heated(b));
        }
        assert!(!a.is_heated(63));
        assert!(!a.is_heated(68));
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn untiled_segments_panic() {
        Allocator::new(100, 64, 0, 0, ClusterPolicy::Naive);
    }

    #[test]
    fn index_region_reserved_and_never_allocated() {
        let mut a = Allocator::new(256, 64, 8, 56, ClusterPolicy::HeatAffinity);
        for b in 8..64 {
            assert_eq!(a.block_use(b), BlockUse::IndexRegion);
        }
        assert_eq!(a.free_blocks(), 192);
        assert_eq!(a.alloc_block(WriteClass::Normal), Some(64));
        let line = a.alloc_line(3, WriteClass::Normal).unwrap();
        assert!(line.start() >= 64, "lines must skip the index region");
        assert!(!BlockUse::IndexRegion.is_movable_live());
        assert_eq!(a.segments()[0].reserved, 64);
    }
}
