//! The segment cleaner — §4.1's heated-line-aware garbage collector.
//!
//! The paper: "once a line has been heated it cannot be copied by the
//! garbage collector, since a heated line leaves no reusable space behind.
//! Copying a heated line just decreases the free space … Therefore …
//! heated lines should also be clustered" and "the garbage collector skips
//! over heated segments, avoiding reading and writing them repeatedly,
//! thus saving on disk bandwidth."
//!
//! The cleaner is greedy on dead-block count: it reclaims segments with
//! the most garbage first, relocating live movable blocks to the current
//! log head. Blocks pinned by heated lines are never touched; a segment
//! whose only non-free content is heated is skipped outright, and that
//! skip is counted so EXP-FS can show the bandwidth saved by bimodality.

use crate::alloc::{BlockUse, WriteClass};
use crate::error::FsError;
use crate::fs::SeroFs;

/// Outcome of one cleaner invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Segments inspected.
    pub segments_examined: u64,
    /// Segments from which blocks were reclaimed.
    pub segments_cleaned: u64,
    /// Live blocks copied to the log head.
    pub blocks_copied: u64,
    /// Dead blocks returned to the free pool.
    pub blocks_reclaimed: u64,
    /// Segments skipped because heat pinned them and nothing was dead.
    pub segments_skipped_heated: u64,
}

impl CleanStats {
    /// Write amplification: blocks copied per block reclaimed.
    pub fn write_amplification(&self) -> f64 {
        if self.blocks_reclaimed == 0 {
            0.0
        } else {
            self.blocks_copied as f64 / self.blocks_reclaimed as f64
        }
    }
}

impl SeroFs {
    /// Runs the cleaner over at most `max_segments` victim segments,
    /// greediest (most dead blocks) first.
    ///
    /// # Errors
    ///
    /// Device errors while relocating live data. Running out of space for
    /// relocation aborts the current segment gracefully rather than
    /// erroring: the dead blocks already reclaimed remain reclaimed.
    pub fn run_cleaner(&mut self, max_segments: usize) -> Result<CleanStats, FsError> {
        let mut stats = CleanStats::default();
        self.stats.cleaner_runs += 1;

        // Victim selection: order by dead blocks, descending.
        let segments = self.alloc.segments();
        let mut victims: Vec<(u64, u64, u64)> = segments
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.dead, s.heated))
            .collect();
        victims.sort_by_key(|&(_, dead, _)| std::cmp::Reverse(dead));

        let mut cleaned = 0usize;
        // `cleaned` counts only segments that actually had garbage, so it
        // cannot be replaced by `enumerate()`/`take()` over the loop.
        #[allow(clippy::explicit_counter_loop)]
        for (seg, dead, heated) in victims {
            if cleaned >= max_segments {
                break;
            }
            stats.segments_examined += 1;
            if dead == 0 {
                if heated > 0 {
                    stats.segments_skipped_heated += 1;
                    self.stats.cleaner_skipped_heated += 1;
                }
                // Sorted descending: nothing further has garbage.
                break;
            }
            cleaned += 1;

            // Phase 1: reclaim dead blocks (always safe).
            for block in self.alloc.segment_range(seg) {
                if self.alloc.block_use(block) == BlockUse::Dead && !self.alloc.is_heated(block) {
                    self.alloc.set_use(block, BlockUse::Free);
                    stats.blocks_reclaimed += 1;
                    self.stats.cleaner_reclaimed += 1;
                }
            }

            // Phase 2: compact — move live movable blocks out so the
            // segment can become clean. Heated blocks stay forever.
            //
            // The moves are planned first (allocation only), then executed
            // as one batch read of the victim segment's live blocks and one
            // batch write to the log head: the sources are contiguous-ish
            // within the segment and the targets cluster at the head, so
            // both sides collapse into a few extent transfers.
            let mut moves: Vec<(u64, u64, BlockUse)> = Vec::new();
            for block in self.alloc.segment_range(seg) {
                let block_use = self.alloc.block_use(block);
                if self.alloc.is_heated(block) || !block_use.is_movable_live() {
                    continue;
                }
                // A Data block not (yet) listed in its owning inode belongs
                // to an in-flight create() or write() — this cleaner run
                // was triggered from its allocation loop. The block may not
                // be written yet, and the writer holds its address in a
                // local list nothing here could repoint. Leave it alone.
                if let BlockUse::Data { ino } = block_use {
                    let owned = self
                        .inodes
                        .get(&ino)
                        .is_some_and(|inode| inode.blocks.contains(&block));
                    if !owned {
                        continue;
                    }
                }
                let target = match self.alloc.alloc_block(WriteClass::Normal) {
                    Some(t) => t,
                    None => break, // device too full to compact further
                };
                if target == block || self.alloc.segment_range(seg).contains(&target) {
                    // Refusing to shuffle within the victim segment; put the
                    // cursor block back and stop compacting this segment.
                    self.alloc.set_use(target, BlockUse::Free);
                    break;
                }
                // Claim the target immediately: an unclaimed block is still
                // `Free` to the allocator's wrap-around sweep, which would
                // hand it out again for the next planned move.
                self.alloc.set_use(target, block_use);
                moves.push((block, target, block_use));
            }

            if !moves.is_empty() {
                let sources: Vec<u64> = moves.iter().map(|&(block, _, _)| block).collect();
                let targets: Vec<u64> = moves.iter().map(|&(_, target, _)| target).collect();
                // If the copy fails (damaged source, degraded target), the
                // sources are still authoritative and no metadata points at
                // the targets — release the claims so the failed plan does
                // not leak phantom live blocks, then surface the error.
                let copied = self
                    .dev
                    .read_blocks(&sources)
                    .and_then(|contents| self.dev.write_blocks(&targets, &contents));
                if let Err(e) = copied {
                    for &target in &targets {
                        self.alloc.set_use(target, BlockUse::Free);
                    }
                    return Err(e.into());
                }
                stats.blocks_copied += moves.len() as u64;
                self.stats.cleaner_copied += moves.len() as u64;

                for (block, target, block_use) in moves {
                    // The target already carries `block_use` from the
                    // planning loop; only owner metadata needs fixing up.
                    match block_use {
                        BlockUse::Data { ino } => {
                            if let Some(inode) = self.inodes.get_mut(&ino) {
                                for b in inode.blocks.iter_mut() {
                                    if *b == block {
                                        *b = target;
                                    }
                                }
                            }
                        }
                        BlockUse::InodeBlock { ino } => {
                            self.inode_loc.insert(ino, target);
                            // The moved copy embeds stale pointers; rewrite it
                            // freshly at the new home so mount stays coherent.
                            self.rewrite_inode_at(ino, target)?;
                        }
                        BlockUse::Indirect { ino } => {
                            self.indirect_loc.insert(ino, target);
                            self.rewrite_indirect_at(ino, target)?;
                        }
                        _ => unreachable!("filtered by is_movable_live"),
                    }
                    self.alloc.set_use(block, BlockUse::Free);
                }
            }
            stats.segments_cleaned += 1;
        }
        Ok(stats)
    }

    fn rewrite_inode_at(&mut self, ino: u64, block: u64) -> Result<(), FsError> {
        let indirect = self.indirect_loc.get(&ino).copied();
        if let Some(inode) = self.inodes.get(&ino) {
            let (main, _) = inode.encode(indirect)?;
            self.dev.write_block(block, &main)?;
        }
        Ok(())
    }

    fn rewrite_indirect_at(&mut self, ino: u64, block: u64) -> Result<(), FsError> {
        if let Some(inode) = self.inodes.get(&ino) {
            let (_, indirect) = inode.encode(Some(block))?;
            if let Some(data) = indirect {
                self.dev.write_block(block, &data)?;
            }
        }
        Ok(())
    }
}
