//! Venti-style content-addressed archival storage on a SERO device.
//!
//! §4.2 of the paper: "Venti uses a secure hash as the address of a node …
//! Venti builds a hierarchy of nodes from the leaves upwards by storing the
//! hashes of the children of a node in the parent. The hash of the root
//! node represents the entire hierarchy. As long as the hash of the root
//! is stored securely, tampering can be detected. … A SERO device would be
//! appropriate to keep the hash of a node secure. The most relevant node
//! to be heated is the root node, because this protects the entire
//! hierarchy."
//!
//! This crate implements that design:
//!
//! * [`Venti::write_chunk`] — content-addressed 512-byte chunks; reads
//!   re-hash and compare, so any medium corruption is self-detected.
//! * [`Venti::store_object`] — leaves-up hash trees over arbitrary data;
//!   identical content deduplicates automatically.
//! * [`Venti::seal`] — burn a root digest into a heated line, making the
//!   whole hierarchy tamper-evident; [`Venti::verify_seal`] walks the tree
//!   and checks every node against its address.
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_venti::Venti;
//!
//! let mut venti = Venti::new(SeroDevice::with_blocks(128));
//! let snapshot = b"monday's database pages ...".repeat(40);
//! let object = venti.store_object(&snapshot)?;
//! let line = venti.seal(&object, b"monday".to_vec(), 0)?;
//! assert_eq!(venti.load_object(&object)?, snapshot);
//! assert!(venti.verify_seal(line)?.is_intact);
//! # Ok::<(), sero_venti::VentiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use sero_core::device::{SeroDevice, SeroError};
use sero_core::line::Line;
use sero_crypto::{sha256, Digest, Sha256};
use std::collections::HashMap;

/// Chunk payload size (one device block).
pub const CHUNK_BYTES: usize = 512;

/// Digests per pointer block: 2-byte magic + 1-byte count + 15 × 32 ≤ 512.
pub const FANOUT: usize = 15;

/// Pointer-block magic.
const POINTER_MAGIC: [u8; 2] = *b"VP";

/// Seal-record magic.
const SEAL_MAGIC: [u8; 4] = *b"VSEA";

/// Errors from the Venti store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VentiError {
    /// The store ran out of blocks.
    NoSpace,
    /// No chunk with this address is known.
    NotFound {
        /// The missing address.
        digest: Digest,
    },
    /// A chunk read back does not hash to its address — medium corruption
    /// or tampering, self-detected by content addressing.
    HashMismatch {
        /// The address requested.
        expected: Digest,
        /// What the stored bytes hash to now.
        actual: Digest,
        /// Device block holding the chunk.
        pba: u64,
    },
    /// A pointer block or seal record failed to parse.
    Malformed {
        /// What failed.
        reason: String,
    },
    /// Device-level failure.
    Device(SeroError),
}

impl fmt::Display for VentiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VentiError::NoSpace => f.write_str("venti store is full"),
            VentiError::NotFound { digest } => write!(f, "no chunk addressed {digest}"),
            VentiError::HashMismatch {
                expected,
                actual,
                pba,
            } => {
                write!(
                    f,
                    "chunk at block {pba} hashes to {actual}, address says {expected}"
                )
            }
            VentiError::Malformed { reason } => write!(f, "malformed venti structure: {reason}"),
            VentiError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for VentiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VentiError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeroError> for VentiError {
    fn from(e: SeroError) -> VentiError {
        VentiError::Device(e)
    }
}

/// Handle to a stored object: its root address, byte length and tree depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRef {
    /// Root digest (a chunk for depth 0, a pointer block otherwise).
    pub root: Digest,
    /// Object length in bytes.
    pub size: u64,
    /// Tree depth: 0 = root is a data chunk.
    pub depth: u8,
}

/// Result of verifying a sealed hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealVerdict {
    /// Whether the heated line *and* the full tree verified.
    pub is_intact: bool,
    /// Findings, empty when intact.
    pub findings: Vec<String>,
    /// The object reference recovered from the seal record.
    pub object: Option<ObjectRef>,
}

/// A content-addressed archival store over a SERO device.
#[derive(Debug, Clone)]
pub struct Venti {
    dev: SeroDevice,
    index: HashMap<Digest, u64>,
    cursor: u64,
}

impl Venti {
    /// Wraps `dev` as an empty store.
    pub fn new(dev: SeroDevice) -> Venti {
        Venti {
            dev,
            index: HashMap::new(),
            cursor: 0,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &SeroDevice {
        &self.dev
    }

    /// Mutable device access (attack surface for the security analysis).
    pub fn device_mut(&mut self) -> &mut SeroDevice {
        &mut self.dev
    }

    /// Number of distinct chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    fn alloc(&mut self) -> Result<u64, VentiError> {
        while self.cursor < self.dev.block_count() {
            let pba = self.cursor;
            self.cursor += 1;
            if !self.dev.is_read_only(pba) {
                return Ok(pba);
            }
        }
        Err(VentiError::NoSpace)
    }

    /// Stores up to 512 bytes as one chunk and returns its address.
    /// Identical content is written once ("write coalescing").
    ///
    /// # Errors
    ///
    /// [`VentiError::NoSpace`]; device errors.
    ///
    /// # Panics
    ///
    /// Panics when `data` exceeds [`CHUNK_BYTES`].
    pub fn write_chunk(&mut self, data: &[u8]) -> Result<Digest, VentiError> {
        assert!(data.len() <= CHUNK_BYTES, "chunk larger than a block");
        let mut padded = [0u8; CHUNK_BYTES];
        padded[..data.len()].copy_from_slice(data);
        let digest = sha256(&padded);
        if self.index.contains_key(&digest) {
            return Ok(digest); // dedup
        }
        let pba = self.alloc()?;
        self.dev.write_block(pba, &padded)?;
        self.index.insert(digest, pba);
        Ok(digest)
    }

    /// Reads the chunk addressed by `digest`, re-hashing to check it.
    ///
    /// # Errors
    ///
    /// [`VentiError::NotFound`]; [`VentiError::HashMismatch`] when the
    /// stored bytes no longer match their address — "a computed hash that
    /// does not match the address of the node presents evidence of
    /// tampering".
    pub fn read_chunk(&mut self, digest: &Digest) -> Result<[u8; CHUNK_BYTES], VentiError> {
        let &pba = self
            .index
            .get(digest)
            .ok_or(VentiError::NotFound { digest: *digest })?;
        let data = self.dev.read_block(pba)?;
        let actual = sha256(&data);
        if actual != *digest {
            return Err(VentiError::HashMismatch {
                expected: *digest,
                actual,
                pba,
            });
        }
        Ok(data)
    }

    /// Stores `data` as a leaves-up hash tree, returning its root handle.
    ///
    /// # Errors
    ///
    /// [`VentiError::NoSpace`]; device errors.
    pub fn store_object(&mut self, data: &[u8]) -> Result<ObjectRef, VentiError> {
        // Leaves.
        let mut level: Vec<Digest> = Vec::new();
        if data.is_empty() {
            level.push(self.write_chunk(&[])?);
        }
        for chunk in data.chunks(CHUNK_BYTES) {
            level.push(self.write_chunk(chunk)?);
        }

        // Build upwards until a single root remains.
        let mut depth = 0u8;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
            for group in level.chunks(FANOUT) {
                let block = encode_pointer_block(group);
                next.push(self.write_chunk(&block)?);
            }
            level = next;
            depth += 1;
        }
        Ok(ObjectRef {
            root: level[0],
            size: data.len() as u64,
            depth,
        })
    }

    /// Loads and verifies the object behind `object`.
    ///
    /// # Errors
    ///
    /// Any hash mismatch anywhere in the tree.
    pub fn load_object(&mut self, object: &ObjectRef) -> Result<Vec<u8>, VentiError> {
        let mut out = Vec::with_capacity(object.size as usize);
        self.load_rec(&object.root, object.depth, &mut out)?;
        out.truncate(object.size as usize);
        Ok(out)
    }

    fn load_rec(
        &mut self,
        digest: &Digest,
        depth: u8,
        out: &mut Vec<u8>,
    ) -> Result<(), VentiError> {
        let block = self.read_chunk(digest)?;
        if depth == 0 {
            out.extend_from_slice(&block);
            return Ok(());
        }
        for child in decode_pointer_block(&block)? {
            self.load_rec(&child, depth - 1, out)?;
        }
        Ok(())
    }

    /// Seals `object` by heating a line whose data block carries the seal
    /// record — the paper's "heating the line that represents a node …
    /// the most relevant node to be heated is the root node".
    ///
    /// # Errors
    ///
    /// [`VentiError::NoSpace`] when no aligned pair of blocks remains;
    /// device errors from the heat protocol.
    pub fn seal(
        &mut self,
        object: &ObjectRef,
        label: Vec<u8>,
        timestamp: u64,
    ) -> Result<Line, VentiError> {
        // Find a free aligned order-1 line at or after the cursor.
        let mut start = self.cursor.div_ceil(2) * 2;
        let line = loop {
            if start + 2 > self.dev.block_count() {
                return Err(VentiError::NoSpace);
            }
            if !self.dev.is_read_only(start) && !self.dev.is_read_only(start + 1) {
                break Line::new(start, 1).expect("aligned");
            }
            start += 2;
        };
        self.cursor = self.cursor.max(line.end());

        let mut record = [0u8; CHUNK_BYTES];
        record[..4].copy_from_slice(&SEAL_MAGIC);
        record[4..36].copy_from_slice(object.root.as_bytes());
        record[36..44].copy_from_slice(&object.size.to_le_bytes());
        record[44] = object.depth;
        let label_len = label.len().min(200);
        record[45] = label_len as u8;
        record[46..46 + label_len].copy_from_slice(&label[..label_len]);
        self.dev.write_block(line.start() + 1, &record)?;
        self.dev.heat_line(line, label, timestamp)?;
        Ok(line)
    }

    /// Verifies a sealed hierarchy end to end: the heated line, the seal
    /// record, and every node of the tree.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only; all findings are data.
    pub fn verify_seal(&mut self, line: Line) -> Result<SealVerdict, VentiError> {
        let mut findings = Vec::new();

        // 1. The heated line itself.
        match self.dev.verify_line(line)? {
            sero_core::tamper::VerifyOutcome::Intact { .. } => {}
            sero_core::tamper::VerifyOutcome::NotHeated => {
                findings.push("seal line is not heated".to_string());
                return Ok(SealVerdict {
                    is_intact: false,
                    findings,
                    object: None,
                });
            }
            sero_core::tamper::VerifyOutcome::Tampered(report) => {
                findings.push(format!("seal line tampered: {report}"));
                return Ok(SealVerdict {
                    is_intact: false,
                    findings,
                    object: None,
                });
            }
        }

        // 2. The seal record.
        let record = self.dev.read_block(line.start() + 1)?;
        if record[..4] != SEAL_MAGIC {
            findings.push("seal record magic missing".to_string());
            return Ok(SealVerdict {
                is_intact: false,
                findings,
                object: None,
            });
        }
        let mut root = [0u8; 32];
        root.copy_from_slice(&record[4..36]);
        let object = ObjectRef {
            root: Digest::from_bytes(root),
            size: u64::from_le_bytes(record[36..44].try_into().expect("8")),
            depth: record[44],
        };

        // 3. The whole hierarchy.
        match self.load_object(&object) {
            Ok(_) => Ok(SealVerdict {
                is_intact: true,
                findings,
                object: Some(object),
            }),
            Err(e) => {
                findings.push(format!("hierarchy verification failed: {e}"));
                Ok(SealVerdict {
                    is_intact: false,
                    findings,
                    object: Some(object),
                })
            }
        }
    }

    /// Rebuilds the chunk index by re-hashing every block — the recovery
    /// path after restart (content addressing makes the index soft state).
    ///
    /// # Errors
    ///
    /// Device errors while scanning.
    pub fn rebuild_index(&mut self) -> Result<usize, VentiError> {
        self.index.clear();
        let mut found = 0;
        for pba in 0..self.dev.block_count() {
            if self.dev.is_read_only(pba) {
                continue;
            }
            if let Ok(data) = self.dev.read_block(pba) {
                self.index.insert(sha256(&data), pba);
                found += 1;
            }
        }
        Ok(found)
    }
}

fn encode_pointer_block(children: &[Digest]) -> Vec<u8> {
    debug_assert!(children.len() <= FANOUT);
    let mut out = Vec::with_capacity(CHUNK_BYTES);
    out.extend_from_slice(&POINTER_MAGIC);
    out.push(children.len() as u8);
    for d in children {
        out.extend_from_slice(d.as_bytes());
    }
    out
}

fn decode_pointer_block(block: &[u8; CHUNK_BYTES]) -> Result<Vec<Digest>, VentiError> {
    if block[..2] != POINTER_MAGIC {
        return Err(VentiError::Malformed {
            reason: "pointer block magic missing".to_string(),
        });
    }
    let count = block[2] as usize;
    if count == 0 || count > FANOUT {
        return Err(VentiError::Malformed {
            reason: format!("pointer block fanout {count}"),
        });
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut d = [0u8; 32];
        d.copy_from_slice(&block[3 + i * 32..3 + (i + 1) * 32]);
        out.push(Digest::from_bytes(d));
    }
    Ok(out)
}

/// A convenience hasher for building snapshot labels.
pub fn label_for(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(blocks: u64) -> Venti {
        Venti::new(SeroDevice::with_blocks(blocks))
    }

    #[test]
    fn chunk_round_trip_and_dedup() {
        let mut v = store(64);
        let a = v.write_chunk(b"hello").unwrap();
        let b = v.write_chunk(b"hello").unwrap();
        assert_eq!(a, b);
        assert_eq!(v.chunk_count(), 1);
        let back = v.read_chunk(&a).unwrap();
        assert_eq!(&back[..5], b"hello");
    }

    #[test]
    fn object_round_trip_multilevel() {
        let mut v = store(512);
        // 40 chunks -> 3 pointer blocks -> 1 root: depth 2.
        let data: Vec<u8> = (0..40 * 512).map(|i| (i % 251) as u8).collect();
        let obj = v.store_object(&data).unwrap();
        assert_eq!(obj.depth, 2);
        assert_eq!(v.load_object(&obj).unwrap(), data);
    }

    #[test]
    fn small_and_empty_objects() {
        let mut v = store(64);
        let empty = v.store_object(b"").unwrap();
        assert_eq!(empty.depth, 0);
        assert_eq!(v.load_object(&empty).unwrap(), Vec::<u8>::new());
        let one = v.store_object(b"x").unwrap();
        assert_eq!(v.load_object(&one).unwrap(), b"x");
    }

    #[test]
    fn snapshots_share_chunks() {
        // Venti's daily-snapshot story: day 2 shares unchanged chunks.
        let mut v = store(512);
        let day1: Vec<u8> = vec![1u8; 20 * 512];
        let mut day2 = day1.clone();
        day2[0] = 99; // one page changed
        v.store_object(&day1).unwrap();
        let before = v.chunk_count();
        v.store_object(&day2).unwrap();
        let added = v.chunk_count() - before;
        assert!(added <= 3, "one data chunk + pointer path, got {added}");
    }

    #[test]
    fn corruption_detected_by_address() {
        let mut v = store(128);
        let digest = v.write_chunk(b"ledger row").unwrap();
        let pba = v.index[&digest];
        v.device_mut().probe_mut().mws(pba, &[0xAA; 512]).unwrap();
        match v.read_chunk(&digest) {
            Err(VentiError::HashMismatch {
                expected, pba: p, ..
            }) => {
                assert_eq!(expected, digest);
                assert_eq!(p, pba);
            }
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn seal_and_verify_intact() {
        let mut v = store(256);
        let data = vec![7u8; 10 * 512];
        let obj = v.store_object(&data).unwrap();
        let line = v.seal(&obj, b"friday".to_vec(), 42).unwrap();
        let verdict = v.verify_seal(line).unwrap();
        assert!(verdict.is_intact, "{:?}", verdict.findings);
        assert_eq!(verdict.object, Some(obj));
    }

    #[test]
    fn seal_protects_entire_hierarchy() {
        // Tamper with a *leaf* chunk: the sealed root must catch it.
        let mut v = store(256);
        let data: Vec<u8> = (0..8 * 512).map(|i| (i % 7) as u8).collect();
        let obj = v.store_object(&data).unwrap();
        let line = v.seal(&obj, vec![], 0).unwrap();

        let leaf = sha256(&{
            let mut c = [0u8; 512];
            c.copy_from_slice(&data[..512]);
            c
        });
        let pba = v.index[&leaf];
        v.device_mut().probe_mut().mws(pba, &[0xEE; 512]).unwrap();

        let verdict = v.verify_seal(line).unwrap();
        assert!(!verdict.is_intact);
        assert!(verdict.findings[0].contains("hierarchy"));
    }

    #[test]
    fn sealed_record_rewrite_detected() {
        let mut v = store(256);
        let obj = v.store_object(&[1u8; 1024]).unwrap();
        let line = v.seal(&obj, vec![], 0).unwrap();
        // Attacker rewrites the seal record block itself.
        v.device_mut()
            .probe_mut()
            .mws(line.start() + 1, &[0u8; 512])
            .unwrap();
        let verdict = v.verify_seal(line).unwrap();
        assert!(!verdict.is_intact);
        assert!(verdict.findings[0].contains("tampered"));
    }

    #[test]
    fn index_rebuild_preserves_access() {
        let mut v = store(128);
        let data = vec![3u8; 5 * 512];
        let obj = v.store_object(&data).unwrap();
        v.index.clear();
        v.rebuild_index().unwrap();
        assert_eq!(v.load_object(&obj).unwrap(), data);
    }

    #[test]
    fn store_fills_and_errors() {
        let mut v = store(8);
        // Distinct chunks so deduplication cannot save the day.
        let data: Vec<u8> = (0..16 * 512)
            .map(|i| (i / 512) as u8 ^ (i % 256) as u8)
            .collect();
        let r = v.store_object(&data);
        assert!(matches!(r, Err(VentiError::NoSpace)));
    }

    #[test]
    fn missing_chunk_reported() {
        let mut v = store(16);
        let ghost = sha256(b"never stored");
        assert!(matches!(
            v.read_chunk(&ghost),
            Err(VentiError::NotFound { .. })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            VentiError::NoSpace,
            VentiError::NotFound {
                digest: Digest::ZERO,
            },
            VentiError::Malformed { reason: "x".into() },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
