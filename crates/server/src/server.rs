//! The TCP daemon: accept loop, per-connection frame loop, lifecycle.

use crate::pool::{NaiveThreadPool, SharedQueueThreadPool, ThreadPool};
use sero_fs::concurrent::ConcurrentFs;
use sero_fs::SeroFs;
use sero_proto::frame::{read_frame, write_frame, FrameError};
use sero_proto::{ErrorCode, FrameKind, Request, Response, WireError};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How long the accept loop sleeps between polls of a quiet listener;
/// also the bound on how stale a shutdown check can get.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How the daemon multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// One readiness-driven event loop owning every socket (the
    /// default): all requests readable in a sweep dispatch as a single
    /// [`ConcurrentFs`] combining window. See [`crate::reactor`].
    Reactor,
    /// The blocking thread-per-connection path, kept as the dispatch
    /// baseline `exp_server`/`exp_reactor` benchmark against.
    Pool,
}

/// Which connection-handling pool the daemon uses (pool mode only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Thread-per-connection (the baseline `exp_server` benchmarks
    /// against).
    Naive,
    /// A fixed worker set draining one shared queue (the default).
    SharedQueue,
}

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection multiplexing strategy.
    pub mode: ServerMode,
    /// Connection-handling pool (pool mode only).
    pub pool: PoolKind,
    /// Worker threads (shared-queue pool only).
    pub threads: u32,
    /// Serve [`Request::RawWrite`] — the §5 attacker interface, for
    /// tamper drills and smoke tests. Off by default: a production
    /// daemon refuses raw writes with
    /// [`ErrorCode::UnsupportedCommand`].
    pub allow_raw: bool,
    /// Per-connection read deadline. A peer that goes quiet mid-frame
    /// (or idles between frames) past this is reaped — its worker goes
    /// back to the pool instead of blocking forever. `None` disables.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline. A peer that stops draining
    /// responses cannot pin a worker in `write_all`. `None` disables.
    pub write_timeout: Option<Duration>,
    /// Connection cap: past this many live connections a newcomer is
    /// answered with a typed [`ErrorCode::ServerBusy`] refusal frame and
    /// closed, instead of growing the accept queue silently.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            mode: ServerMode::Reactor,
            pool: PoolKind::SharedQueue,
            threads: 4,
            allow_raw: false,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_connections: 1024,
        }
    }
}

enum Pool {
    Naive(NaiveThreadPool),
    Shared(SharedQueueThreadPool),
}

impl Pool {
    fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        match self {
            Pool::Naive(p) => p.spawn(job),
            Pool::Shared(p) => p.spawn(job),
        }
    }
}

/// A bound, not-yet-running daemon serving one [`SeroFs`] through a
/// [`ConcurrentFs`]: workers call `handle` re-entrantly and the combiner
/// merges queued reads into bulk sweeps, instead of every worker
/// serializing on one global file-system mutex.
pub struct SeroServer {
    listener: TcpListener,
    fs: ConcurrentFs,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl SeroServer {
    /// Binds to `addr` (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// Socket errors from the bind.
    pub fn bind(
        addr: impl ToSocketAddrs,
        fs: SeroFs,
        config: ServerConfig,
    ) -> io::Result<SeroServer> {
        SeroServer::bind_shared(addr, ConcurrentFs::new(fs), config)
    }

    /// Binds sharing an already-wrapped [`ConcurrentFs`]: the caller
    /// keeps a clone and can observe the store (e.g. the simulated
    /// device clock, for benchmarks) while the daemon serves it.
    ///
    /// # Errors
    ///
    /// Socket errors from the bind.
    pub fn bind_shared(
        addr: impl ToSocketAddrs,
        fs: ConcurrentFs,
        config: ServerConfig,
    ) -> io::Result<SeroServer> {
        Ok(SeroServer {
            listener: TcpListener::bind(addr)?,
            fs,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the real port after binding port 0).
    ///
    /// # Errors
    ///
    /// Socket errors from the address query.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon on the calling thread until
    /// [`ServerHandle::shutdown`] trips the stop flag: the readiness
    /// reactor in [`ServerMode::Reactor`] (the default), the blocking
    /// accept loop + pool in [`ServerMode::Pool`].
    ///
    /// # Errors
    ///
    /// Fatal accept-loop errors; per-connection errors are contained to
    /// their connection.
    pub fn run(self) -> io::Result<()> {
        match self.config.mode {
            ServerMode::Reactor => {
                crate::reactor::run_reactor(self.listener, &self.fs, &self.config, &self.stop)
            }
            ServerMode::Pool => self.run_pool(),
        }
    }

    /// The blocking accept loop: thread-per-connection via the
    /// configured pool, with the connection cap enforced at accept time.
    fn run_pool(self) -> io::Result<()> {
        let pool = match self.config.pool {
            PoolKind::Naive => Pool::Naive(NaiveThreadPool::new(self.config.threads)),
            PoolKind::SharedQueue => Pool::Shared(SharedQueueThreadPool::new(self.config.threads)),
        };
        // Track a clone of every served stream so shutdown can sever
        // them: a worker blocked in read_frame on an idle connection
        // would otherwise pin the pool's drop-join forever.
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        // Live connections, for the --max-connections refusal.
        let live: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
        // A non-blocking listener bounds the shutdown check: a quiet
        // listener polls every ACCEPT_POLL instead of parking in accept
        // until a connection (possibly never) arrives.
        self.listener.set_nonblocking(true)?;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(_) => continue, // transient accept failure
            };
            // Accepted sockets may inherit the listener's non-blocking
            // mode on some platforms; the frame loop wants deadlines,
            // not busy-waiting.
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(self.config.read_timeout);
            let _ = stream.set_write_timeout(self.config.write_timeout);
            if live.load(Ordering::SeqCst) >= self.config.max_connections {
                refuse_connection(stream, self.config.max_connections);
                continue;
            }
            live.fetch_add(1, Ordering::SeqCst);
            if let (Ok(clone), Ok(mut held)) = (stream.try_clone(), conns.lock()) {
                held.push(clone);
            }
            let fs = self.fs.clone();
            let allow_raw = self.config.allow_raw;
            let live = Arc::clone(&live);
            pool.spawn(move || {
                serve_connection(stream, &fs, allow_raw);
                live.fetch_sub(1, Ordering::SeqCst);
            });
        }
        if let Ok(held) = conns.lock() {
            for conn in held.iter() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // Dropping the pool joins its workers; the severed connections
        // guarantee each one drains promptly.
        drop(pool);
        Ok(())
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// that can stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle { addr, stop, thread })
    }
}

/// Handle to a daemon running via [`SeroServer::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the daemon thread. Connections
    /// already being served finish their current request.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // The polling accept loop notices the flag within ACCEPT_POLL on
        // its own; a throwaway connection just wakes it immediately.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// Answers a connection over the cap with a typed
/// [`ErrorCode::ServerBusy`] refusal frame and closes it — the peer gets
/// a machine-readable reason instead of a silent queue or a bare reset.
fn refuse_connection(mut stream: TcpStream, cap: usize) {
    let resp = Response::Error(WireError::new(
        ErrorCode::ServerBusy,
        format!("connection refused: server is at --max-connections {cap}"),
    ));
    let _ = write_frame(&mut stream, FrameKind::Response, &resp.encode());
    let _ = stream.shutdown(Shutdown::Write);
}

/// Serves one connection: a loop of read-frame → dispatch → write-frame.
/// Frame-level failures answer a best-effort error response and close;
/// command-level failures answer [`Response::Error`] and keep going. A
/// read deadline expiring is the idle/stalled-peer reap: the connection
/// closes silently and the worker returns to the pool.
fn serve_connection(stream: TcpStream, fs: &ConcurrentFs, allow_raw: bool) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let (kind, payload) = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,                 // clean EOF between frames
            Err(e) if e.is_timeout() => return, // idle/stalled peer: reap
            Err(e) => {
                let resp = Response::Error(WireError::from(e));
                let _ = write_frame(&mut writer, FrameKind::Response, &resp.encode());
                return;
            }
        };
        if kind != FrameKind::Request {
            let resp = Response::Error(WireError::new(
                ErrorCode::BadFrame,
                "expected a request frame",
            ));
            let _ = write_frame(&mut writer, FrameKind::Response, &resp.encode());
            return;
        }
        let response = match Request::decode(&payload) {
            Ok(Request::RawWrite { .. }) if !allow_raw => Response::Error(WireError::new(
                ErrorCode::UnsupportedCommand,
                "raw writes are disabled; restart the daemon with --allow-raw for tamper drills",
            )),
            Ok(request) => fs.handle(request),
            Err(e @ FrameError::Malformed { .. }) => {
                // The frame itself was sound (magic, CRC); only the
                // payload was unintelligible. Answer and keep the
                // connection.
                Response::Error(WireError::from(e))
            }
            Err(e) => {
                let resp = Response::Error(WireError::from(e));
                let _ = write_frame(&mut writer, FrameKind::Response, &resp.encode());
                return;
            }
        };
        match write_frame(&mut writer, FrameKind::Response, &response.encode()) {
            Ok(()) => {}
            Err(FrameError::Oversize { len }) => {
                // Too big for one frame: answer a typed refusal instead
                // of dying. The substitute is short and always encodes.
                let refusal = Response::Error(WireError::new(
                    ErrorCode::OversizeResponse,
                    format!("response of {len} bytes exceeds the frame limit"),
                ));
                if write_frame(&mut writer, FrameKind::Response, &refusal.encode()).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
