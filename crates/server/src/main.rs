//! `sero-server` — serve a freshly formatted SERO device over TCP.
//!
//! ```text
//! sero-server [--addr HOST:PORT] [--blocks N] [--mode reactor|pool]
//!             [--pool naive|shared] [--threads N] [--allow-raw]
//!             [--max-connections N]
//!             [--read-timeout-ms N] [--write-timeout-ms N]
//! ```
//!
//! `--mode reactor` (the default) serves every connection from one
//! readiness-driven event loop; `--mode pool` keeps the blocking
//! thread-per-connection baseline (`--pool`/`--threads` apply there).
//!
//! `--max-connections` caps live connections: a newcomer past the cap is
//! answered with a typed `server-busy` refusal frame and closed instead
//! of silently queueing.
//!
//! `--read-timeout-ms` / `--write-timeout-ms` set the per-connection
//! deadlines (0 disables); an idle or stalled peer past its read
//! deadline is reaped rather than pinning a worker or an event-loop
//! slot.
//!
//! `--allow-raw` additionally serves the raw-write attack surface, for
//! tamper drills (the CI smoke test heats a file, raw-writes into its
//! line, and expects the next verify to answer TAMPER-DETECTED).

use sero_core::device::SeroDevice;
use sero_fs::fs::{FsConfig, SeroFs};
use sero_server::{PoolKind, SeroServer, ServerConfig, ServerMode};
use std::process::ExitCode;

struct Args {
    addr: String,
    blocks: u64,
    config: ServerConfig,
}

fn parse_timeout_ms(s: &str) -> Result<Option<std::time::Duration>, String> {
    let ms: u64 = s.parse().map_err(|e| format!("{e}"))?;
    Ok((ms > 0).then(|| std::time::Duration::from_millis(ms)))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4150".to_string(),
        blocks: 4096,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} wants a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--blocks" => {
                args.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?;
            }
            "--mode" => {
                args.config.mode = match value("--mode")?.as_str() {
                    "reactor" => ServerMode::Reactor,
                    "pool" => ServerMode::Pool,
                    other => return Err(format!("--mode wants reactor|pool, got {other}")),
                };
            }
            "--pool" => {
                args.config.pool = match value("--pool")?.as_str() {
                    "naive" => PoolKind::Naive,
                    "shared" => PoolKind::SharedQueue,
                    other => return Err(format!("--pool wants naive|shared, got {other}")),
                };
            }
            "--max-connections" => {
                args.config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--threads" => {
                args.config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--allow-raw" => args.config.allow_raw = true,
            "--read-timeout-ms" => {
                args.config.read_timeout = parse_timeout_ms(&value("--read-timeout-ms")?)
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
            }
            "--write-timeout-ms" => {
                args.config.write_timeout = parse_timeout_ms(&value("--write-timeout-ms")?)
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: sero-server [--addr HOST:PORT] [--blocks N] \
                     [--mode reactor|pool] [--pool naive|shared] [--threads N] \
                     [--allow-raw] [--max-connections N] \
                     [--read-timeout-ms N] [--write-timeout-ms N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let fs = match SeroFs::format(SeroDevice::with_blocks(args.blocks), FsConfig::default()) {
        Ok(fs) => fs,
        Err(e) => {
            eprintln!("format failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match SeroServer::bind(&args.addr, fs, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("local_addr failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("server failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
