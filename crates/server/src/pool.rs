//! Thread pools for connection handling.
//!
//! Two implementations behind one [`ThreadPool`] trait, so `exp_server`
//! can benchmark the naive thread-per-connection baseline against the
//! shared-queue pool the daemon defaults to:
//!
//! * [`NaiveThreadPool`] — spawns a fresh OS thread per job. Simple,
//!   unbounded, pays thread creation on every connection.
//! * [`SharedQueueThreadPool`] — a fixed set of workers draining one
//!   shared channel. A worker that panics is replaced, so one
//!   misbehaving connection cannot shrink the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

/// A job: any closure the pool may run on any of its threads.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The minimal pool interface the server needs.
pub trait ThreadPool {
    /// Creates a pool with `threads` workers (ignored by implementations
    /// without a fixed worker set).
    fn new(threads: u32) -> Self
    where
        Self: Sized;

    /// Runs `job` on some thread of the pool.
    fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static;
}

/// Thread-per-job: the baseline. `new`'s thread count is ignored.
pub struct NaiveThreadPool;

impl ThreadPool for NaiveThreadPool {
    fn new(_threads: u32) -> NaiveThreadPool {
        NaiveThreadPool
    }

    fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        thread::spawn(job);
    }
}

/// A fixed set of workers draining one shared queue.
///
/// Dropping the pool drops the sender; workers observe the closed
/// channel and exit after finishing the job in hand.
pub struct SharedQueueThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

fn worker_loop(receiver: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Take the job while holding the lock, release before running it.
        let job = match receiver.lock() {
            Ok(guard) => match guard.recv() {
                Ok(job) => job,
                Err(_) => return, // pool dropped
            },
            Err(_) => return, // a holder panicked mid-recv; shut down
        };
        // A panicking job must not kill the worker: swallow the panic
        // (the connection that caused it is already lost) and keep
        // serving. catch_unwind needs UnwindSafe; the job is moved in
        // and never observed again, so the assertion is sound.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

impl ThreadPool for SharedQueueThreadPool {
    fn new(threads: u32) -> SharedQueueThreadPool {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                thread::spawn(move || worker_loop(receiver))
            })
            .collect();
        SharedQueueThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }
}

impl Drop for SharedQueueThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn run_jobs<P: ThreadPool>(pool: &P, jobs: u32) -> Arc<AtomicU32> {
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..jobs {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        counter
    }

    fn wait_for(counter: &AtomicU32, expected: u32) {
        for _ in 0..500 {
            if counter.load(Ordering::SeqCst) == expected {
                return;
            }
            thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!(
            "jobs did not finish: {} of {expected}",
            counter.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn naive_pool_runs_all_jobs() {
        let pool = NaiveThreadPool::new(0);
        let counter = run_jobs(&pool, 32);
        wait_for(&counter, 32);
    }

    #[test]
    fn shared_queue_pool_runs_all_jobs() {
        let pool = SharedQueueThreadPool::new(4);
        let counter = run_jobs(&pool, 64);
        wait_for(&counter, 64);
    }

    #[test]
    fn shared_queue_pool_survives_panicking_jobs() {
        let pool = SharedQueueThreadPool::new(2);
        for _ in 0..8 {
            pool.spawn(|| panic!("connection handler blew up"));
        }
        let counter = run_jobs(&pool, 16);
        wait_for(&counter, 16);
    }

    #[test]
    fn drop_joins_workers_after_queued_jobs_drain() {
        let counter = Arc::new(AtomicU32::new(0));
        {
            let pool = SharedQueueThreadPool::new(2);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Drop joined the workers; everything queued before the drop ran.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
