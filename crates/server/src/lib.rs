//! **sero-server** — a blocking TCP daemon serving one SERO file system
//! over the `sero-proto` wire format.
//!
//! The daemon owns a [`SeroFs`](sero_fs::SeroFs) behind a mutex and
//! serves the full command set through the one dispatch path,
//! `SeroFs::handle` — a remote `verify` means exactly what an
//! in-process `verify` means, tamper evidence included. Connections are
//! handled by a configurable [`pool`]: thread-per-connection
//! ([`pool::NaiveThreadPool`]) or a fixed shared-queue worker set
//! ([`pool::SharedQueueThreadPool`], the default), which `exp_server`
//! benchmarks against each other.
//!
//! Serialising every command through one mutex is deliberate for this
//! iteration: the file system is single-device and the simulated device
//! clock is shared state, so a coarse lock is both correct and honest
//! about where the concurrency limit sits (see ROADMAP for the
//! concurrent-foreground follow-up). The pool still matters: framing,
//! decoding, and socket I/O all happen outside the lock.
//!
//! # Example
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_fs::fs::{FsConfig, SeroFs};
//! use sero_server::{SeroServer, ServerConfig};
//! use sero_proto::frame::{read_frame, write_frame};
//! use sero_proto::{FrameKind, Request, Response};
//! use std::net::TcpStream;
//!
//! let fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default())?;
//! let server = SeroServer::bind("127.0.0.1:0", fs, ServerConfig::default())?;
//! let handle = server.spawn()?;
//!
//! let mut conn = TcpStream::connect(handle.addr())?;
//! write_frame(&mut conn, FrameKind::Request, &Request::Ping.encode())?;
//! let (_, payload) = read_frame(&mut conn)?.expect("response");
//! assert_eq!(Response::decode(&payload)?, Response::Pong);
//!
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod server;

pub use server::{PoolKind, SeroServer, ServerConfig, ServerHandle};
