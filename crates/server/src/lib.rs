//! **sero-server** — the TCP daemon serving one SERO file system over
//! the `sero-proto` wire format.
//!
//! The daemon owns a [`SeroFs`](sero_fs::SeroFs) wrapped in a
//! [`ConcurrentFs`](sero_fs::concurrent::ConcurrentFs) and serves the
//! full command set through the one dispatch path — a remote `verify`
//! means exactly what an in-process `verify` means, tamper evidence
//! included. Two multiplexing strategies
//! ([`ServerMode`]):
//!
//! * **[`reactor`]** (the default) — one readiness-driven event loop
//!   owning every socket in non-blocking mode, with per-connection
//!   incremental frame reassembly and backpressured write buffers.
//!   Every request readable in a sweep dispatches as a *single*
//!   `ConcurrentFs::handle_batch` combining window, so n concurrent
//!   clients form the depth-n admission batches the flat combiner and
//!   the admission scheduler are built for. Deadlines, idle reap, and
//!   the `--max-connections` refusal are reactor timers.
//! * **[`pool`]** — the blocking thread-per-connection baseline
//!   (naive or shared-queue workers), kept as the dispatch baseline
//!   `exp_server` and `exp_reactor` benchmark against.
//!
//! Either way the wire surface is identical: same frames, same typed
//! errors, same tamper evidence, byte for byte.
//!
//! # Example
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_fs::fs::{FsConfig, SeroFs};
//! use sero_server::{SeroServer, ServerConfig};
//! use sero_proto::frame::{read_frame, write_frame};
//! use sero_proto::{FrameKind, Request, Response};
//! use std::net::TcpStream;
//!
//! let fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default())?;
//! let server = SeroServer::bind("127.0.0.1:0", fs, ServerConfig::default())?;
//! let handle = server.spawn()?;
//!
//! let mut conn = TcpStream::connect(handle.addr())?;
//! write_frame(&mut conn, FrameKind::Request, &Request::Ping.encode())?;
//! let (_, payload) = read_frame(&mut conn)?.expect("response");
//! assert_eq!(Response::decode(&payload)?, Response::Pong);
//!
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod reactor;
pub mod server;

pub use server::{PoolKind, SeroServer, ServerConfig, ServerHandle, ServerMode};
