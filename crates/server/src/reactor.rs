//! The readiness-driven reactor: one event loop, many connections, one
//! combining window.
//!
//! The blocking daemon hands each connection to a thread and pays a
//! wake/handoff per request; under a client swarm the handoff — not the
//! device — becomes the bottleneck, and worse, requests dribble into the
//! [`ConcurrentFs`] combiner one at a time, so the flat combiner never
//! sees the deep batches the admission scheduler is built for. The
//! reactor inverts this: a single thread owns every socket in
//! non-blocking mode and sweeps them poll(2)-style, so *all* requests
//! readable in one sweep are decoded together and dispatched as **one**
//! [`ConcurrentFs::handle_batch`] call — readiness batching *is* the
//! combining window, and n concurrent clients naturally form depth-n
//! admission batches.
//!
//! # Event-loop phases (one sweep)
//!
//! 1. **shutdown** — the stop flag severs every connection and returns;
//!    bounded by the sweep cadence, no connection can delay it.
//! 2. **accept** — drain the listener. At `max_connections` the new
//!    socket is not silently parked in the backlog: it gets a typed
//!    [`ErrorCode::ServerBusy`] refusal frame and a graceful close.
//! 3. **read** — each open connection is read until `WouldBlock` (with
//!    a per-sweep fairness cap) into its [`FrameAssembler`]; complete
//!    frames decode to requests. Frame-level garbage answers a
//!    best-effort error and moves the connection to draining;
//!    `Malformed` payloads answer an error and keep the connection.
//! 4. **dispatch** — every request decoded this sweep, across all
//!    connections, goes into a single `handle_batch` combining window.
//!    Responses come back in order and are appended to each
//!    connection's outbox.
//! 5. **write** — flush outboxes until `WouldBlock`. A connection whose
//!    outbox exceeds the backpressure bound is not read (phase 3) until
//!    it drains — a slow reader throttles itself, not the reactor.
//! 6. **reap** — PR 8's socket deadlines re-expressed as reactor
//!    timers: a peer silent past the read deadline with nothing owed is
//!    reaped; a peer that stops draining its outbox past the write
//!    deadline is reaped; a flushed draining connection lingers briefly
//!    (so the refusal/error frame is delivered before the close) and is
//!    then removed.
//!
//! An entirely idle sweep sleeps `IDLE_SWEEP_SLEEP` (500 µs); that pause doubles
//! as a natural batching dwell — after a round of responses, the whole
//! closed-loop client population becomes readable again within it.
//!
//! # Connection state machine
//!
//! ```text
//!            accept (under cap)            accept (at cap)
//!                  │                             │
//!                  ▼                             ▼
//!               OPEN ──frame error/EOF──▶ DRAINING (refusal/error queued)
//!                 │                            │ outbox flushed
//!                 │ read deadline              ▼
//!                 │ (nothing owed)        LINGER (write side shut)
//!                 ▼                            │ peer EOF / linger timer
//!               reaped ◀───write deadline──────┘
//! ```

use sero_fs::concurrent::ConcurrentFs;
use sero_proto::frame::{encode_response, FrameAssembler, FrameError, FrameKind};
use sero_proto::{ErrorCode, Request, Response, WireError, MAX_PAYLOAD_BYTES};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::server::ServerConfig;

/// Sleep after a sweep that accepted nothing, read nothing, and wrote
/// nothing. Bounds idle CPU; also the dwell within which a closed-loop
/// client population re-arms into the next combining window.
const IDLE_SWEEP_SLEEP: Duration = Duration::from_micros(500);

/// Per-read chunk size, and (times [`MAX_READS_PER_SWEEP`]) the fairness
/// cap on how much one firehose connection can consume per sweep.
const READ_CHUNK: usize = 64 * 1024;

/// Reads per connection per sweep before yielding to the next socket.
const MAX_READS_PER_SWEEP: usize = 4;

/// Stop reading a connection whose outbox holds more than this — the
/// backpressure bound (two maximum frames of headroom).
const MAX_OUTBOX_BYTES: usize = 2 * (MAX_PAYLOAD_BYTES + 64);

/// How long a flushed draining connection may linger for the peer to
/// read its final frame before the socket is removed outright.
const DRAIN_LINGER: Duration = Duration::from_millis(500);

/// Per-connection state owned by the reactor.
struct Conn {
    stream: TcpStream,
    /// Incremental reassembly of whatever byte chunks the socket yields.
    assembler: FrameAssembler,
    /// Encoded response frames waiting for the socket to accept them.
    outbox: Vec<u8>,
    /// Bytes of `outbox` already written.
    out_pos: usize,
    /// Last time the peer delivered bytes (arms the read-deadline reap).
    last_read: Instant,
    /// Last time the outbox made progress (arms the write-deadline reap).
    last_write: Instant,
    /// Close once the outbox flushes; no further requests are served.
    draining: bool,
    /// The peer half-closed; never read again.
    peer_eof: bool,
    /// When a draining connection finished flushing (starts the linger).
    flushed_at: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            assembler: FrameAssembler::new(),
            outbox: Vec::new(),
            out_pos: 0,
            last_read: now,
            last_write: now,
            draining: false,
            peer_eof: false,
            flushed_at: None,
        }
    }

    fn queue_response(&mut self, resp: &Response) {
        match encode_response(resp) {
            Ok(frame) => self.outbox.extend_from_slice(&frame),
            Err(e) => {
                // An answer too large for one frame becomes a typed
                // refusal instead of killing the connection. The
                // substitute is a short error payload, so its own encode
                // cannot overflow.
                let refusal = Response::Error(WireError::new(ErrorCode::OversizeResponse, e));
                let frame = encode_response(&refusal)
                    .expect("a short error response always fits one frame");
                self.outbox.extend_from_slice(&frame);
            }
        }
    }

    fn outbox_pending(&self) -> usize {
        self.outbox.len() - self.out_pos
    }
}

/// One decoded item from the read phase, in per-connection arrival
/// order: either a response already decided locally (gating, payload
/// errors) or a request bound for the combining window.
enum Decoded {
    Ready(Response),
    Dispatch(Request),
}

/// Runs the reactor on the calling thread until `stop` trips.
///
/// # Errors
///
/// Fatal listener errors only; per-connection errors are contained to
/// their connection.
pub(crate) fn run_reactor(
    listener: TcpListener,
    fs: &ConcurrentFs,
    config: &ServerConfig,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            for conn in conns.values() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            return Ok(());
        }
        let now = Instant::now();
        let mut did_work = false;

        // --- accept ---------------------------------------------------
        loop {
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient accept failure; retry next sweep
            };
            did_work = true;
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let mut conn = Conn::new(stream, now);
            if conns.len() >= config.max_connections {
                conn.queue_response(&Response::Error(WireError::new(
                    ErrorCode::ServerBusy,
                    format!(
                        "connection refused: server is at --max-connections {}",
                        config.max_connections
                    ),
                )));
                conn.draining = true;
            }
            conns.insert(next_id, conn);
            next_id += 1;
        }

        // --- read + decode --------------------------------------------
        let mut ids: Vec<u64> = conns.keys().copied().collect();
        ids.sort_unstable(); // deterministic service order across sweeps
        let mut window: Vec<(u64, Decoded)> = Vec::new();
        let mut dead: Vec<u64> = Vec::new();
        let mut chunk = vec![0u8; READ_CHUNK];
        for &id in &ids {
            let conn = conns.get_mut(&id).expect("id collected from live map");
            if conn.peer_eof || conn.outbox_pending() > MAX_OUTBOX_BYTES {
                continue;
            }
            let mut reads = 0;
            while reads < MAX_READS_PER_SWEEP {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        did_work = true;
                        conn.last_read = now;
                        if !conn.draining {
                            conn.assembler.push(&chunk[..n]);
                        }
                        reads += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead.push(id);
                        break;
                    }
                }
            }
            if dead.last() == Some(&id) {
                continue;
            }
            while !conn.draining {
                match conn.assembler.next_frame() {
                    Ok(Some((FrameKind::Request, payload))) => {
                        window.push((id, decode_request(&payload, config.allow_raw)));
                    }
                    Ok(Some((kind, _))) => {
                        conn.queue_response(&Response::Error(WireError::new(
                            ErrorCode::BadFrame,
                            format!("expected a request frame, got {kind:?}"),
                        )));
                        conn.draining = true;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Unframeable bytes: answer best-effort, then
                        // drain and close — mirrors the blocking daemon.
                        conn.queue_response(&Response::Error(WireError::from(e)));
                        conn.draining = true;
                    }
                }
            }
            if conn.peer_eof && conn.outbox_pending() == 0 {
                dead.push(id);
            }
        }
        for id in dead.drain(..) {
            conns.remove(&id);
        }

        // --- dispatch: one combining window per sweep -------------------
        if !window.is_empty() {
            did_work = true;
            let batch: Vec<Request> = window
                .iter()
                .filter_map(|(_, d)| match d {
                    Decoded::Dispatch(req) => Some(req.clone()),
                    Decoded::Ready(_) => None,
                })
                .collect();
            let mut responses = fs.handle_batch(batch).into_iter();
            for (id, decoded) in window {
                let response = match decoded {
                    Decoded::Ready(resp) => resp,
                    Decoded::Dispatch(_) => match responses.next() {
                        Some(resp) => resp,
                        None => Response::Error(WireError::new(
                            ErrorCode::BadFrame,
                            "combining window answered short",
                        )),
                    },
                };
                // The connection may have died (EOF) after its request
                // was read; its response has nowhere to go.
                if let Some(conn) = conns.get_mut(&id) {
                    conn.queue_response(&response);
                }
            }
        }

        // --- write ----------------------------------------------------
        for &id in &ids {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            while conn.outbox_pending() > 0 {
                match conn.stream.write(&conn.outbox[conn.out_pos..]) {
                    Ok(0) => {
                        dead.push(id);
                        break;
                    }
                    Ok(n) => {
                        did_work = true;
                        conn.out_pos += n;
                        conn.last_write = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead.push(id);
                        break;
                    }
                }
            }
            if dead.last() == Some(&id) {
                continue;
            }
            if conn.outbox_pending() == 0 {
                conn.outbox.clear();
                conn.out_pos = 0;
                if conn.draining && conn.flushed_at.is_none() {
                    // Final frame handed to the kernel: half-close so the
                    // peer sees EOF after reading it, then linger.
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    conn.flushed_at = Some(now);
                }
            }
        }
        for id in dead.drain(..) {
            conns.remove(&id);
        }

        // --- reap: deadlines as reactor timers --------------------------
        conns.retain(|_, conn| {
            if let Some(flushed) = conn.flushed_at {
                // Flushed draining connection: gone once the peer
                // half-closes back or the linger expires.
                return !conn.peer_eof && now.duration_since(flushed) < DRAIN_LINGER;
            }
            if let Some(read_deadline) = config.read_timeout {
                // Idle or stalled-mid-frame peer with nothing owed.
                if conn.outbox_pending() == 0 && now.duration_since(conn.last_read) >= read_deadline
                {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return false;
                }
            }
            if let Some(write_deadline) = config.write_timeout {
                // Peer that stopped draining its responses.
                if conn.outbox_pending() > 0
                    && now.duration_since(conn.last_write) >= write_deadline
                {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return false;
                }
            }
            true
        });

        if !did_work {
            thread::sleep(IDLE_SWEEP_SLEEP);
        }
    }
}

/// Decodes one request payload, applying the same gating as the blocking
/// daemon: raw writes without `--allow-raw` answer
/// [`ErrorCode::UnsupportedCommand`], a sound frame with an
/// unintelligible payload answers `Malformed` and keeps the connection.
fn decode_request(payload: &[u8], allow_raw: bool) -> Decoded {
    match Request::decode(payload) {
        Ok(Request::RawWrite { .. }) if !allow_raw => {
            Decoded::Ready(Response::Error(WireError::new(
                ErrorCode::UnsupportedCommand,
                "raw writes are disabled; restart the daemon with --allow-raw for tamper drills",
            )))
        }
        Ok(request) => Decoded::Dispatch(request),
        Err(e @ FrameError::Malformed { .. }) => {
            Decoded::Ready(Response::Error(WireError::from(e)))
        }
        Err(e) => Decoded::Ready(Response::Error(WireError::from(e))),
    }
}

#[cfg(test)]
mod tests {
    use crate::server::{SeroServer, ServerConfig, ServerMode};
    use sero_core::device::SeroDevice;
    use sero_fs::fs::{FsConfig, SeroFs};
    use sero_proto::frame::{encode_request, read_frame, write_frame, FrameKind};
    use sero_proto::{ErrorCode, Request, Response};
    use std::io::Write;
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    fn reactor_server(config: ServerConfig) -> (crate::server::ServerHandle, SocketAddr) {
        let fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default()).unwrap();
        let handle = SeroServer::bind("127.0.0.1:0", fs, config)
            .unwrap()
            .spawn()
            .unwrap();
        let addr = handle.addr();
        (handle, addr)
    }

    fn blocking_conn(addr: SocketAddr) -> TcpStream {
        let conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn
    }

    fn ping(conn: &mut TcpStream) -> Response {
        write_frame(conn, FrameKind::Request, &Request::Ping.encode()).unwrap();
        let (_, payload) = read_frame(conn).unwrap().expect("response frame");
        Response::decode(&payload).unwrap()
    }

    #[test]
    fn cap_refuses_with_server_busy_and_readmits_after_reap() {
        let (handle, addr) = reactor_server(ServerConfig {
            mode: ServerMode::Reactor,
            max_connections: 2,
            read_timeout: Some(Duration::from_secs(30)),
            ..ServerConfig::default()
        });

        let mut a = blocking_conn(addr);
        let mut b = blocking_conn(addr);
        assert_eq!(ping(&mut a), Response::Pong);
        assert_eq!(ping(&mut b), Response::Pong);

        // Third connection: typed refusal, then EOF — never silent.
        let mut c = blocking_conn(addr);
        let (_, payload) = read_frame(&mut c).unwrap().expect("refusal frame");
        match Response::decode(&payload).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ServerBusy),
            other => panic!("expected ServerBusy refusal, got {other:?}"),
        }
        assert!(read_frame(&mut c).unwrap().is_none(), "refused then closed");
        drop(c);

        // Close one admitted connection; its slot readmits a newcomer.
        drop(a);
        let mut d = None;
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(10));
            let mut candidate = blocking_conn(addr);
            write_frame(&mut candidate, FrameKind::Request, &Request::Ping.encode()).unwrap();
            let (_, payload) = read_frame(&mut candidate).unwrap().expect("response");
            match Response::decode(&payload).unwrap() {
                Response::Pong => {
                    d = Some(candidate);
                    break;
                }
                Response::Error(e) if e.code == ErrorCode::ServerBusy => continue,
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(d.is_some(), "slot never readmitted after close");

        assert_eq!(ping(&mut b), Response::Pong, "survivor still served");
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order_from_one_window() {
        let (handle, addr) = reactor_server(ServerConfig {
            mode: ServerMode::Reactor,
            ..ServerConfig::default()
        });
        let mut conn = blocking_conn(addr);
        // Three requests in a single write: the reactor decodes all of
        // them from one readable sweep and answers in order.
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_request(&Request::Ping).unwrap());
        wire.extend_from_slice(&encode_request(&Request::list_all()).unwrap());
        wire.extend_from_slice(&encode_request(&Request::Ping).unwrap());
        conn.write_all(&wire).unwrap();
        let expect = [
            Response::Pong,
            Response::Names {
                names: Vec::new(),
                next: None,
            },
            Response::Pong,
        ];
        for want in expect {
            let (_, payload) = read_frame(&mut conn).unwrap().expect("response");
            assert_eq!(Response::decode(&payload).unwrap(), want);
        }
        handle.shutdown();
    }

    #[test]
    fn stalled_mid_frame_peer_is_reaped_by_the_reactor_timer() {
        let (handle, addr) = reactor_server(ServerConfig {
            mode: ServerMode::Reactor,
            read_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        });
        let mut staller = blocking_conn(addr);
        staller.write_all(&[0x53, 0x45, 0x52, 0x57]).unwrap(); // four header bytes, then silence
        let mut victim = blocking_conn(addr);
        assert_eq!(ping(&mut victim), Response::Pong);
        // The reap closes the staller's socket: its next read sees EOF
        // (or a reset), never a hang.
        staller
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let reaped = matches!(read_frame(&mut staller), Ok(None) | Err(_));
        assert!(reaped, "staller socket still open after the deadline");
        // The victim idled past the same deadline while we watched the
        // staller — that reap is correct too. A fresh connection shows
        // the loop is still serving.
        let mut after = blocking_conn(addr);
        assert_eq!(ping(&mut after), Response::Pong, "reactor still serving");
        handle.shutdown();
    }
}
