//! Fault tolerance above the injection layer: retry policy and the
//! quarantine discipline.
//!
//! The fault *injection* machinery lives in [`sero_probe::faults`] — at
//! the sector choke points, below every protocol check — and is
//! re-exported here so SERO-level code can arm a [`FaultPlan`] without
//! reaching into the probe crate. What this module adds is the *survival*
//! side of the contract:
//!
//! * [`RetryPolicy`] — how many bounded attempts [`crate::SeroDevice`]
//!   gives a faulting sector before declaring it persistently bad.
//! * The quarantine discipline (implemented on
//!   [`crate::SeroDevice`]): a block that exhausts its retries is added
//!   to the quarantine set and, if it lies inside a registered line, the
//!   line is flagged — feeding the incremental-scrub delta the same way
//!   refused protocol accesses do. The device keeps serving everything
//!   else; "tamper evidence, never silence" extends to "typed errors,
//!   never a wedge".
//!
//! The invariant the fault proptests pin (`tests/fault_props.rs`): under
//! an arbitrary seeded [`FaultPlan`], every operation either returns the
//! correct result or a typed error, and tamper evidence plus the final
//! registry match a fault-free twin — modulo quarantined lines, which
//! must always be flagged.

pub use sero_probe::faults::{FaultPlan, FaultStats, PPM};

/// Bounded-retry policy for transient sector faults.
///
/// `max_attempts` counts the *total* tries, first included: `1` disables
/// retry entirely, the default `3` gives two re-reads/re-writes — enough
/// for the depth-1 transient faults channel noise produces, while a
/// persistently dead block still fails in bounded time and moves to
/// quarantine instead of wedging the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per sector operation (≥ 1).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3 }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the pre-fault-layer behaviour,
    /// useful for tests pinning first-failure semantics.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1 }
    }

    /// A policy with `max_attempts` total tries (clamped to ≥ 1).
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_clamps_to_at_least_one_attempt() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 3);
    }
}
