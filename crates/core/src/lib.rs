//! SERO core — the primary contribution of *Towards Tamper-evident Storage
//! on Patterned Media* (FAST 2008) as a library.
//!
//! A **SERO** (Selectively Eventually Read-Only) device "begins life as a
//! Write Many Read Many device, selected parts of which are subjected to
//! Write Once operations, and which ends life as a Read-only device". This
//! crate implements that device on top of the simulated probe-storage
//! substrate:
//!
//! * [`mod@line`] — 2^N-aligned lines, the unit of the heat operation.
//! * [`layout`] — the Figure 3 hash-block record: Manchester-encoded
//!   SHA-256 plus self-describing metadata in block 0's electrical area.
//! * [`device`] — [`device::SeroDevice`]: protocol-checked block I/O,
//!   `heat_line`, `verify_line`, and registry recovery by medium scan.
//! * [`tamper`] — evidence-carrying verification verdicts for §5's attack
//!   analysis.
//! * [`badblock`] — classification that never mistakes a heated block for
//!   a bad one (§3's addressing discussion).
//! * [`faults`] — bounded-retry policy over the seeded fault-injection
//!   plans of [`sero_probe::faults`]; persistently failing blocks move to
//!   quarantine (suspect + flagged) instead of wedging the device.
//! * [`scrub`] — whole-device verification of every heated line, sharded
//!   over parallel workers (the §5.2 fsck argument made routine).
//! * [`sched`] — background scrub scheduling under live foreground
//!   traffic: budget-bounded slices, pause/resume/cancel, quantum duty
//!   cycling.
//! * [`fleet`] — scrub orchestration across many devices: staggered
//!   passes, one adaptively re-divided global budget, suspicion-first
//!   ordering minimising detection latency.
//!
//! # Examples
//!
//! ```
//! use sero_core::prelude::*;
//!
//! // A database snapshot: write, freeze, verify.
//! let mut dev = SeroDevice::with_blocks(32);
//! let line = Line::new(16, 3)?; // 8 blocks: 1 hash + 7 data
//! for pba in line.data_blocks() {
//!     dev.write_block(pba, &[0xdb; 512])?;
//! }
//! dev.heat_line(line, b"snapshot 2008-01-01".to_vec(), 1_199_145_600)?;
//!
//! // Any later rewrite of the frozen data is detected.
//! dev.probe_mut().mws(17, &[0x00; 512])?; // attacker bypasses the protocol
//! assert!(dev.verify_line(line)?.is_tampered());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod badblock;
pub mod device;
pub mod faults;
pub mod fleet;
pub mod journal;
pub mod layout;
pub mod line;
pub mod locks;
pub mod sched;
pub mod scrub;
pub mod tamper;

pub use admission::{AdmissionQueues, AdmissionStats, FgOp, FgResult, RegionMap, Ticket};
pub use device::{LoadProbe, SeroDevice, SeroError};
pub use faults::{FaultPlan, FaultStats, RetryPolicy};
pub use fleet::{AdaptiveBudget, FleetConfig, FleetScheduler, FleetSliceOutcome};
pub use line::Line;
pub use locks::{LineLockTable, LineReadGuard, LineWriteGuard};
pub use sched::{
    SchedConfig, SchedConfigError, SchedProgress, SchedState, ScrubScheduler, SliceOutcome,
};
pub use scrub::{scrub_device, ScrubConfig, ScrubReport, ScrubSummary};
pub use tamper::{Evidence, TamperReport, VerifyOutcome};

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::admission::{
        execute_serial, AdmissionQueues, AdmissionStats, FgOp, FgResult, RegionMap, Ticket,
    };
    pub use crate::badblock::{classify_block, BlockClass};
    pub use crate::device::{LineRecord, LoadProbe, SeroDevice, SeroError, SeroStats};
    pub use crate::faults::{FaultPlan, FaultStats, RetryPolicy};
    pub use crate::fleet::{
        AdaptiveBudget, FleetConfig, FleetMemberState, FleetOrdering, FleetProgress,
        FleetScheduler, FleetSliceOutcome,
    };
    pub use crate::layout::HashBlockPayload;
    pub use crate::line::Line;
    pub use crate::locks::{LineLockTable, LineReadGuard, LineWriteGuard};
    pub use crate::sched::{
        SchedConfig, SchedConfigError, SchedProgress, SchedState, ScrubScheduler, SliceOutcome,
    };
    pub use crate::scrub::{scrub_device, ScrubConfig, ScrubReport, ScrubSummary};
    pub use crate::tamper::{Evidence, TamperReport, VerifyOutcome};
}

#[cfg(test)]
mod proptests {
    use crate::device::SeroDevice;
    use crate::line::Line;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// heat → verify is intact for any line and any data.
        #[test]
        fn heat_verify_round_trip(order in 1u32..4, start_slot in 0u64..4, fill in any::<u8>()) {
            let blocks = 64u64;
            let len = 1u64 << order;
            let start = (start_slot * len) % blocks;
            let line = Line::new(start, order).unwrap();
            let mut dev = SeroDevice::with_blocks(blocks);
            for pba in line.data_blocks() {
                dev.write_block(pba, &[fill; 512]).unwrap();
            }
            dev.heat_line(line, vec![], 0).unwrap();
            prop_assert!(dev.verify_line(line).unwrap().is_intact());
        }

        /// Any single-byte change to any data block of a heated line is
        /// detected by verify.
        #[test]
        fn any_byte_change_detected(byte_index in 0usize..512, xor in 1u8..=255, victim in 0u64..3) {
            let line = Line::new(0, 2).unwrap();
            let mut dev = SeroDevice::with_blocks(4);
            for pba in line.data_blocks() {
                dev.write_block(pba, &[0x11; 512]).unwrap();
            }
            dev.heat_line(line, vec![], 0).unwrap();

            let target = 1 + victim; // a data block
            let mut data = [0x11u8; 512];
            data[byte_index] ^= xor;
            dev.probe_mut().mws(target, &data).unwrap();

            let outcome = dev.verify_line(line).unwrap();
            prop_assert!(outcome.is_tampered(), "change escaped verification");
        }
    }
}
