//! Reader–writer line locking — the concurrency-control primitive of the
//! foreground core.
//!
//! A [`LineLockTable`] guards heated lines (keyed by start address) so
//! budgeted scrub slices and foreground mutations can interleave without
//! one global handle. The table is deliberately small: per-line
//! reader/writer state in one map, condition-variable wakeups, RAII
//! guards. What makes it safe is not the table but the **lock-ordering
//! discipline** every caller follows (documented in
//! `docs/ARCHITECTURE.md` and enforced by the APIs here):
//!
//! 1. **Line locks are ranked by start address.** A caller that needs
//!    several line locks acquires them in ascending order —
//!    [`LineLockTable::write_many`] sorts for you, so there is no way to
//!    express an out-of-order multi-acquisition.
//! 2. **Line locks before the device.** A thread may block on a line lock
//!    only while it does *not* hold the device (the `SeroFs` combiner
//!    mutex). Anything already holding the device must use the `try_*`
//!    variants and treat contention as "defer" — never as "wait".
//!    [`crate::sched::ScrubScheduler::run_slice_locked`] is the canonical
//!    example: it try-reads each candidate line and leaves contended lines
//!    queued for a later slice.
//!
//! Together the two rules make the system deadlock-free by construction:
//! all blocking acquisitions happen along a single global order
//! (ascending lines, then the device), and every cycle-closing edge is a
//! try-lock that backs off instead of waiting.
//!
//! # Examples
//!
//! ```
//! use sero_core::locks::LineLockTable;
//!
//! let table = LineLockTable::new();
//! let audit = table.read(16); // e.g. an auditor pinning line 16
//! assert!(table.try_read(16).is_some(), "readers share");
//! assert!(table.try_write(16).is_none(), "writers must defer");
//! drop(audit);
//! assert!(table.try_write(16).is_some());
//! ```

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};

#[derive(Debug, Default)]
struct LockState {
    readers: usize,
    writer: bool,
}

/// A table of per-line reader–writer locks keyed by line start address.
///
/// Many readers or one writer per line; uncontended lines carry no state.
/// See the [module docs](self) for the ordering discipline that keeps the
/// table deadlock-free.
#[derive(Debug, Default)]
pub struct LineLockTable {
    lines: Mutex<HashMap<u64, LockState>>,
    released: Condvar,
}

impl LineLockTable {
    /// An empty table.
    pub fn new() -> LineLockTable {
        LineLockTable::default()
    }

    /// A poisoned map only means some thread panicked while *touching
    /// bookkeeping*; the reader/writer counts themselves are updated
    /// atomically under the map lock, so the state is still consistent.
    fn map(&self) -> MutexGuard<'_, HashMap<u64, LockState>> {
        self.lines
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Takes a shared (read) lock on `line`, blocking while a writer holds
    /// it. Callers must not hold the device — see the ordering rules.
    pub fn read(&self, line: u64) -> LineReadGuard<'_> {
        let mut map = self.map();
        loop {
            let state = map.entry(line).or_default();
            if !state.writer {
                state.readers += 1;
                return LineReadGuard { table: self, line };
            }
            map = self
                .released
                .wait(map)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Takes a shared (read) lock on `line` without blocking; `None` when
    /// a writer holds it. Safe while holding the device.
    pub fn try_read(&self, line: u64) -> Option<LineReadGuard<'_>> {
        let mut map = self.map();
        let state = map.entry(line).or_default();
        if state.writer {
            None
        } else {
            state.readers += 1;
            Some(LineReadGuard { table: self, line })
        }
    }

    /// Takes the exclusive (write) lock on `line`, blocking while readers
    /// or a writer hold it. Callers must not hold the device.
    pub fn write(&self, line: u64) -> LineWriteGuard<'_> {
        let mut map = self.map();
        loop {
            let state = map.entry(line).or_default();
            if !state.writer && state.readers == 0 {
                state.writer = true;
                return LineWriteGuard { table: self, line };
            }
            map = self
                .released
                .wait(map)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Takes the exclusive (write) lock on `line` without blocking; `None`
    /// when any holder exists. Safe while holding the device.
    pub fn try_write(&self, line: u64) -> Option<LineWriteGuard<'_>> {
        let mut map = self.map();
        let state = map.entry(line).or_default();
        if state.writer || state.readers > 0 {
            None
        } else {
            state.writer = true;
            Some(LineWriteGuard { table: self, line })
        }
    }

    /// Takes exclusive locks on every line in `lines`, acquiring in
    /// ascending address order (duplicates collapse) — the only
    /// multi-acquisition the discipline permits. Callers must not hold the
    /// device.
    pub fn write_many(&self, lines: &[u64]) -> Vec<LineWriteGuard<'_>> {
        let mut sorted: Vec<u64> = lines.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.into_iter().map(|line| self.write(line)).collect()
    }

    /// Whether any lock (shared or exclusive) is currently held on `line`.
    pub fn is_locked(&self, line: u64) -> bool {
        self.map()
            .get(&line)
            .is_some_and(|s| s.writer || s.readers > 0)
    }

    fn release_read(&self, line: u64) {
        let mut map = self.map();
        if let Some(state) = map.get_mut(&line) {
            state.readers = state.readers.saturating_sub(1);
            if state.readers == 0 && !state.writer {
                map.remove(&line);
            }
        }
        drop(map);
        self.released.notify_all();
    }

    fn release_write(&self, line: u64) {
        let mut map = self.map();
        if let Some(state) = map.get_mut(&line) {
            state.writer = false;
            if state.readers == 0 {
                map.remove(&line);
            }
        }
        drop(map);
        self.released.notify_all();
    }
}

/// RAII shared lock on one line; released (with a wakeup) on drop.
#[derive(Debug)]
pub struct LineReadGuard<'a> {
    table: &'a LineLockTable,
    line: u64,
}

impl LineReadGuard<'_> {
    /// The locked line's start address.
    pub fn line(&self) -> u64 {
        self.line
    }
}

impl Drop for LineReadGuard<'_> {
    fn drop(&mut self) {
        self.table.release_read(self.line);
    }
}

/// RAII exclusive lock on one line; released (with a wakeup) on drop.
#[derive(Debug)]
pub struct LineWriteGuard<'a> {
    table: &'a LineLockTable,
    line: u64,
}

impl LineWriteGuard<'_> {
    /// The locked line's start address.
    pub fn line(&self) -> u64 {
        self.line
    }
}

impl Drop for LineWriteGuard<'_> {
    fn drop(&mut self) {
        self.table.release_write(self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn readers_share_writers_exclude() {
        let t = LineLockTable::new();
        let r1 = t.read(8);
        let r2 = t.try_read(8).expect("readers share");
        assert!(t.try_write(8).is_none(), "writer must wait for readers");
        drop(r1);
        assert!(t.try_write(8).is_none(), "one reader still holds");
        drop(r2);
        let w = t.try_write(8).expect("free line");
        assert!(t.try_read(8).is_none(), "readers must wait for the writer");
        assert!(t.try_write(8).is_none(), "writers are exclusive");
        drop(w);
        assert!(!t.is_locked(8), "idle lines carry no state");
    }

    #[test]
    fn locks_are_per_line() {
        let t = LineLockTable::new();
        let _w = t.write(0);
        assert!(t.try_write(16).is_some(), "other lines are independent");
    }

    #[test]
    fn write_many_sorts_and_dedups() {
        let t = LineLockTable::new();
        let guards = t.write_many(&[24, 8, 24, 0]);
        assert_eq!(
            guards.iter().map(|g| g.line()).collect::<Vec<_>>(),
            vec![0, 8, 24],
            "ascending acquisition order, duplicates collapsed"
        );
        assert!(t.try_read(8).is_none());
    }

    #[test]
    fn blocking_read_waits_for_writer() {
        let t = Arc::new(LineLockTable::new());
        let w = t.write(4);
        let t2 = Arc::clone(&t);
        let reader = thread::spawn(move || {
            let _r = t2.read(4); // blocks until the writer drops
        });
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(!reader.is_finished(), "reader must wait for the writer");
        drop(w);
        reader.join().unwrap();
    }

    #[test]
    fn contended_multi_writer_stress_terminates() {
        let t = Arc::new(LineLockTable::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                for round in 0..200u64 {
                    // Overlapping multi-line sets in thread-varying orders:
                    // write_many's ascending acquisition is what keeps this
                    // from deadlocking.
                    let lines = [(i + round) % 4 * 8, (i + 2 * round) % 4 * 8];
                    let _guards = t.write_many(&lines);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for line in [0, 8, 16, 24] {
            assert!(!t.is_locked(line));
        }
    }
}
